#!/usr/bin/env python3
"""A morning in the life of the LDR controller (paper §5, Figure 11).

Simulates the full centralized loop minute by minute on the GTS-like
network: ingress routers report each minute's 100 ms samples, the
controller predicts the next minute (Algorithm 1), optimizes with the
multiplexing checks, installs the placement — and then the *next* minute's
real traffic flows over it.  Each row below scores an installed placement
against the traffic that actually arrived.
"""

import numpy as np

from repro.core.ldr import LdrConfig
from repro.net.zoo import gts_like
from repro.sim import TimelineSimulation
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)
from repro.traces import SyntheticTraceConfig, synthesize_trace

MINUTES = 8


def main() -> None:
    network = gts_like()
    rng = np.random.default_rng(3)
    tm = gravity_traffic_matrix(network, rng)
    tm = apply_locality(network, tm, locality=1.0)
    tm = scale_to_growth_headroom(network, tm, growth_factor=1.65)

    traces = {}
    for agg in tm.aggregates():
        config = SyntheticTraceConfig(
            mean_bps=agg.demand_bps,
            minutes=MINUTES,
            sample_ms=100,
            mean_drift=0.03,
            burst_sigma_fraction=float(rng.uniform(0.08, 0.2)),
        )
        traces[agg.pair] = synthesize_trace(config, rng)

    simulation = TimelineSimulation(network, traces, LdrConfig(max_rounds=20))
    print(f"{network.name}: {len(traces)} aggregates, "
          f"{MINUTES} minutes of traffic, re-optimizing every minute\n")
    print(f"{'minute':>6s} {'rounds':>7s} {'converged':>10s} "
          f"{'stretch':>8s} {'util(real)':>11s} {'max queue':>10s} "
          f"{'over budget':>12s}")
    for report in simulation.run():
        print(
            f"{report.minute:>6d} {report.ldr_rounds:>7d} "
            f"{'yes' if report.converged else 'NO':>10s} "
            f"{report.latency_stretch:>8.4f} "
            f"{report.actual_max_utilization:>11.3f} "
            f"{report.max_queue_delay_s * 1000:>8.2f}ms "
            f"{report.links_over_budget:>12d}"
        )
    print(
        "\nEvery row is a placement computed from minute m's measurements "
        "and judged against minute m+1's actual traffic.  The 10% hedge "
        "plus per-aggregate multiplexing headroom keep real queueing at "
        "(or near) zero while the stretch stays a few percent above the "
        "shortest-path floor."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare all five routing schemes on one high-LLPD network.

Reproduces the qualitative content of the paper's Figure 4 on a single
topology: the latency-optimal LP fits everything cheaply, B4 pays latency
(or congests), MinMax never congests but detours traffic, MinMax K=10
sits in between, and the link-based LP matches the path-based optimum at
far higher cost.
"""

import time

import numpy as np

from repro.net.paths import KspCache
from repro.net.zoo import cogent_like, gts_like
from repro.routing import (
    B4Routing,
    EcmpRouting,
    LatencyOptimalRouting,
    LinkBasedOptimalRouting,
    MinMaxRouting,
    MplsTeRouting,
    ShortestPathRouting,
)
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)


def run_on(network) -> None:
    print(f"\n=== {network.name}: {network.num_nodes} PoPs, "
          f"{len(network.duplex_pairs())} physical links ===")
    rng = np.random.default_rng(42)
    tm = gravity_traffic_matrix(network, rng)
    tm = apply_locality(network, tm, locality=1.0)
    tm = scale_to_growth_headroom(network, tm, growth_factor=1.3)

    cache = KspCache(network)
    schemes = [
        ShortestPathRouting(cache),
        EcmpRouting(cache),
        MplsTeRouting(cache=cache),
        B4Routing(cache=cache),
        B4Routing(headroom=0.10, cache=cache),
        MinMaxRouting(cache=cache),
        MinMaxRouting(k=10, cache=cache),
        LatencyOptimalRouting(cache=cache),
        LatencyOptimalRouting(headroom=0.10, cache=cache),
        LinkBasedOptimalRouting(),
    ]
    header = (
        f"{'scheme':>18s} {'time':>8s} {'congested':>10s} "
        f"{'stretch':>8s} {'max-path':>9s} {'max-util':>9s} {'fits':>5s}"
    )
    print(header)
    for scheme in schemes:
        start = time.perf_counter()
        placement = scheme.place(network, tm)
        elapsed = time.perf_counter() - start
        print(
            f"{scheme.name:>18s} {elapsed:7.2f}s "
            f"{placement.congested_pair_fraction():>9.1%} "
            f"{placement.total_latency_stretch():>8.4f} "
            f"{placement.max_path_stretch():>9.2f} "
            f"{placement.max_utilization():>9.3f} "
            f"{'yes' if placement.fits_all_traffic else 'NO':>5s}"
        )


def main() -> None:
    run_on(gts_like())
    run_on(cogent_like())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Figures 5 and 6: why greedy routing fails on path-diverse
networks.

Figure 5 (congestion trap): node V has exactly two exits.  Many blue
aggregates fill link 1 eastbound — green's shortest path — while many red
aggregates fill link 2 westbound — green's only alternative.  Greedy B4,
allocating everyone in parallel, leaves green stranded; the optimal
placement moves red onto a fractionally longer path through G and fits
everyone.

Figure 6 (needless detour): two aggregates share a bottleneck; when it
fills, B4 spills *both* onto their next-shortest paths even though one of
them faces a far longer detour.  The optimum detours only the cheap-to-
move aggregate.
"""

import sys
from pathlib import Path

# The pathology topologies are shared with the test suite.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests.test_b4_pathologies import (  # noqa: E402
    build_congestion_trap,
    build_unequal_detours,
    trap_traffic_matrix,
)

from repro.net.units import Gbps  # noqa: E402
from repro.routing import B4Routing, LatencyOptimalRouting  # noqa: E402
from repro.tm import TrafficMatrix  # noqa: E402


def show(placement, label):
    print(f"  {label}:")
    print(f"    fits all traffic: {placement.fits_all_traffic}")
    print(f"    congested pairs:  {placement.congested_pair_fraction():.1%}")
    print(f"    latency stretch:  {placement.total_latency_stretch():.4f}")


def figure5() -> None:
    print("=== Figure 5: the congestion trap ===")
    net = build_congestion_trap()
    tm = trap_traffic_matrix()
    b4 = B4Routing().place(net, tm)
    optimal = LatencyOptimalRouting().place(net, tm)
    show(b4, "B4 (greedy)")
    green = next(a for a in b4.aggregates if a.pair == ("v", "g"))
    stranded = b4.unplaced_bps.get(green, 0.0)
    print(f"    green (v->g) traffic stranded: {stranded / 1e9:.2f} Gb/s")
    show(optimal, "latency-optimal LP")
    red_via_g = sum(
        alloc.fraction
        for agg in optimal.aggregates
        if agg.src.startswith("r")
        for alloc in optimal.paths_for(agg)
        if "g" in alloc.path
    )
    print(f"    red aggregate-fractions detoured through G: {red_via_g:.2f}")


def figure6() -> None:
    print("\n=== Figure 6: the needless detour ===")
    net = build_unequal_detours()
    tm = TrafficMatrix({("s1", "t"): Gbps(8), ("s2", "t"): Gbps(8)})
    b4 = B4Routing().place(net, tm)
    optimal = LatencyOptimalRouting().place(net, tm)

    def blue_off_shortest(placement):
        blue = next(a for a in placement.aggregates if a.pair == ("s2", "t"))
        return sum(
            alloc.fraction
            for alloc in placement.paths_for(blue)
            if alloc.path != ("s2", "m", "t")
        )

    show(b4, "B4 (greedy)")
    print(f"    blue traffic forced off its shortest path: "
          f"{blue_off_shortest(b4):.0%}")
    show(optimal, "latency-optimal LP")
    print(f"    blue traffic forced off its shortest path: "
          f"{blue_off_shortest(optimal):.0%}  "
          f"(red, whose detour costs only +1 ms, moves instead)")


def main() -> None:
    figure5()
    figure6()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Survey the synthetic topology zoo through the APA/LLPD lens (§2).

Prints, per network: size, diameter, LLPD, and a compact APA CDF — the
data behind the paper's Figures 1 and 2.  Finishes with a closer look at
the named replicas (GTS-like grid, Cogent-like two-continent network,
Globalcenter-like clique overlay, Google-SNet-like enterprise WAN).
"""

import numpy as np

from repro.core.metrics import ApaParameters, apa_all_pairs, apa_cdf, llpd_from_apa
from repro.net.units import to_ms
from repro.net.zoo import (
    cogent_like,
    generate_zoo,
    globalcenter_like,
    google_like,
    gts_like,
    network_diameter_s,
)


def sparkline(values: np.ndarray, bins: int = 10) -> str:
    """A ten-character histogram of APA values in [0, 1]."""
    blocks = " .:-=+*#%@"
    histogram, _ = np.histogram(values, bins=bins, range=(0.0, 1.0))
    peak = histogram.max() if histogram.max() > 0 else 1
    return "".join(blocks[int(9 * count / peak)] for count in histogram)


def describe(network, params) -> tuple:
    apa = apa_all_pairs(network, params)
    cdf = apa_cdf(apa)
    return llpd_from_apa(apa), cdf


def main() -> None:
    params = ApaParameters()
    print(f"{'network':>32s} {'PoPs':>5s} {'diam':>7s} {'LLPD':>6s}  "
          f"APA histogram (0 -> 1)")
    rows = []
    for network in generate_zoo(16, seed=1, include_named=False):
        value, cdf = describe(network, params)
        rows.append((value, network, cdf))
    for value, network, cdf in sorted(rows, key=lambda row: row[0]):
        diameter_ms = to_ms(network_diameter_s(network))
        print(
            f"{network.name:>32s} {network.num_nodes:>5d} "
            f"{diameter_ms:>5.1f}ms {value:>6.3f}  [{sparkline(cdf)}]"
        )

    print("\nNamed replicas (the paper's reference points):")
    for network in (gts_like(), cogent_like(), globalcenter_like(), google_like()):
        value, cdf = describe(network, params)
        print(
            f"{network.name:>32s} {network.num_nodes:>5d} "
            f"{to_ms(network_diameter_s(network)):>5.1f}ms {value:>6.3f}  "
            f"[{sparkline(cdf)}]"
        )
    print(
        "\nReading the histograms: mass at the right edge means most PoP "
        "pairs can route around most of their shortest-path links within "
        "a 1.4x stretch — the topology is low-latency-capable.  Tree-like "
        "networks pile up at the left edge; rings sit in the middle; the "
        "Google-like WAN is almost entirely at the right."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The headroom dial and the full LDR control loop (§4-§5).

Part 1 sweeps static headroom on the latency-optimal LP, showing the
paper's Figure 8 trade-off: moderate headroom costs almost no latency;
only approaching the MinMax end does stretch climb.

Part 2 runs the complete LDR controller — Algorithm 1 rate prediction,
the iterative LP, the temporal-correlation queue test and the
FFT-convolution multiplexing test — on synthetic per-aggregate traces,
showing how it automatically finds per-aggregate headroom.
"""

import numpy as np

from repro.core.headroom import minmax_equivalent_headroom
from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController
from repro.net.zoo import gts_like
from repro.routing import LatencyOptimalRouting, MinMaxRouting
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)
from repro.traces import SyntheticTraceConfig, minute_means, synthesize_trace


def static_headroom_sweep(network, tm) -> None:
    print("=== Part 1: the headroom dial (static) ===")
    dial_end = minmax_equivalent_headroom(network, tm)
    print(f"MinMax-equivalent headroom for this load: {dial_end:.1%}\n")
    print(f"{'headroom':>9s} {'stretch':>9s} {'max-util':>9s}")
    for headroom in (0.0, 0.11, 0.23, min(0.40, dial_end)):
        placement = LatencyOptimalRouting(headroom=headroom).place(network, tm)
        print(
            f"{headroom:>8.0%} {placement.total_latency_stretch():>9.4f} "
            f"{placement.max_utilization():>9.3f}"
        )
    minmax = MinMaxRouting().place(network, tm)
    print(
        f"{'MinMax':>9s} {minmax.total_latency_stretch():>9.4f} "
        f"{minmax.max_utilization():>9.3f}   <- the far end of the dial"
    )


def ldr_control_loop(network, tm) -> None:
    print("\n=== Part 2: LDR's automatic headroom (dynamic) ===")
    rng = np.random.default_rng(7)
    traffic = []
    for agg in tm.aggregates():
        config = SyntheticTraceConfig(
            mean_bps=agg.demand_bps,
            minutes=3,
            sample_ms=100,
            burst_sigma_fraction=float(rng.uniform(0.05, 0.25)),
        )
        trace = synthesize_trace(config, rng)
        traffic.append(
            AggregateTraffic(
                agg.src, agg.dst, trace[-600:], minute_means(trace, 600)
            )
        )
    controller = LdrController(network, LdrConfig(max_rounds=20))
    result = controller.route(traffic)
    peak_means = {a.pair: max(a.minute_means_bps) for a in traffic}
    scaled = [
        pair
        for pair, demand in result.demands_bps.items()
        if demand > 1.1 * peak_means[pair] * 1.001
    ]
    print(f"converged: {result.converged} in {result.rounds} round(s)")
    print(f"failing links per round: "
          f"{[len(x) for x in result.failed_links_history]}")
    print(f"aggregates that needed extra headroom: {len(scaled)} "
          f"of {len(traffic)}")
    print(f"final latency stretch (on predicted demands): "
          f"{result.placement.total_latency_stretch():.4f}")
    checks = result.link_checks
    if checks:
        worst = max(checks.values(), key=lambda c: c.exceed_probability)
        print(f"links needing a full multiplexing check: {len(checks)}; "
              f"worst exceedance probability {worst.exceed_probability:.2e}")


def main() -> None:
    network = gts_like()
    rng = np.random.default_rng(0)
    tm = gravity_traffic_matrix(network, rng)
    tm = apply_locality(network, tm, locality=1.0)
    # Figure 8's lighter load: min-cut at 60%.
    tm = scale_to_growth_headroom(network, tm, growth_factor=1.65)
    static_headroom_sweep(network, tm)
    ldr_control_loop(network, tm)


if __name__ == "__main__":
    main()

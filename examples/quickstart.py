#!/usr/bin/env python3
"""Quickstart: measure a topology, load it, route it.

Builds the GTS-Central-Europe-like grid (the paper's running example),
measures its low-latency path diversity (LLPD), synthesizes a paper-style
traffic matrix (gravity + locality + min-cut scaling), and compares
shortest-path routing with the paper's latency-optimal LP.
"""

import numpy as np

from repro.core.metrics import ApaParameters, apa_all_pairs, llpd_from_apa
from repro.net.units import to_gbps
from repro.net.zoo import gts_like
from repro.routing import LatencyOptimalRouting, ShortestPathRouting
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)


def main() -> None:
    network = gts_like()
    print(f"network: {network.name}, {network.num_nodes} PoPs, "
          f"{len(network.duplex_pairs())} physical links")

    # 1. How much low-latency path diversity does this topology offer?
    apa = apa_all_pairs(network, ApaParameters())
    value = llpd_from_apa(apa)
    print(f"LLPD = {value:.3f}  "
          f"(fraction of PoP pairs with APA >= 0.7; grids score high)")

    # 2. A paper-style workload: gravity demands, locality 1, scaled so
    #    traffic could still grow 1.3x under optimal routing.
    rng = np.random.default_rng(0)
    tm = gravity_traffic_matrix(network, rng)
    tm = apply_locality(network, tm, locality=1.0)
    tm = scale_to_growth_headroom(network, tm, growth_factor=1.3)
    print(f"traffic matrix: {len(tm.aggregates())} aggregates, "
          f"{to_gbps(tm.total_demand_bps):.1f} Gb/s total")

    # 3. Route it two ways.
    for scheme in (ShortestPathRouting(), LatencyOptimalRouting()):
        placement = scheme.place(network, tm)
        print(
            f"{scheme.name:>15s}: "
            f"congested pairs {placement.congested_pair_fraction():5.1%}  "
            f"latency stretch {placement.total_latency_stretch():.4f}  "
            f"max link util {placement.max_utilization():.3f}"
        )
    print(
        "\nShortest-path routing concentrates traffic on the grid's "
        "central links; the latency-optimal LP fits everything with "
        "near-zero stretch — the paper's Figure 3 vs Figure 4(a) in "
        "miniature."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Network growth planning with LLPD (§8, the paper's Figure 20).

Takes a hard-to-route topology (a wide ring), greedily adds the candidate
links that most increase LLPD until the link count grows, and shows how
much each routing scheme benefits.  The paper's punchline: only a scheme
that can exploit path diversity (LDR) converts the new links into lower
latency; MinMax may even get worse as it load-balances over them.
"""

import numpy as np

from repro.core.metrics import llpd
from repro.net.mutate import grow_by_llpd
from repro.net.zoo import ring_network
from repro.routing import B4Routing, LatencyOptimalRouting, MinMaxRouting
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)


def evaluate(network, tm) -> dict:
    schemes = {
        "LDR": LatencyOptimalRouting(),
        "B4": B4Routing(),
        "MinMax": MinMaxRouting(),
        "MinMaxK10": MinMaxRouting(k=10),
    }
    return {
        name: scheme.place(network, tm) for name, scheme in schemes.items()
    }


def main() -> None:
    rng = np.random.default_rng(20)
    network = ring_network(10, rng)
    print(f"before: {network.name}, LLPD = {llpd(network):.3f}, "
          f"{len(network.duplex_pairs())} physical links")

    tm = gravity_traffic_matrix(network, np.random.default_rng(1))
    tm = apply_locality(network, tm, locality=1.0)
    tm = scale_to_growth_headroom(network, tm, growth_factor=1.3)

    grown, added = grow_by_llpd(
        network, score=llpd, growth_fraction=0.2, max_candidates=15
    )
    print(f"after:  LLPD = {llpd(grown):.3f}, added links: "
          + ", ".join(f"{a}-{b}" for a, b in added))

    before = evaluate(network, tm)
    after = evaluate(grown, tm)
    print(f"\n{'scheme':>10s} {'stretch before':>15s} {'stretch after':>14s} "
          f"{'delay saved':>12s}")
    for name in before:
        delay_before = before[name].total_weighted_delay_s()
        delay_after = after[name].total_weighted_delay_s()
        saved = (delay_before - delay_after) / delay_before
        print(
            f"{name:>10s} {before[name].total_latency_stretch():>15.4f} "
            f"{after[name].total_latency_stretch():>14.4f} {saved:>11.1%}"
        )
    print(
        "\nStretch is measured against each topology's own shortest "
        "paths (which the new links shorten), so 'delay saved' — the "
        "absolute flow-weighted delay reduction — is the fair "
        "before/after comparison."
    )


if __name__ == "__main__":
    main()

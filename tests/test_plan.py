"""Tests for the evaluation-plan layer: whole-figure batches.

The contract under test is the tentpole one: executing a figure's whole
(scheme x sweep-point x network) grid as ONE engine pass over a single
shared pool is **bit-identical** to the pre-refactor path of one
``evaluate_scheme`` call (one pool) per (scheme, sweep point) — for any
worker count, on fork and spawn pools, fresh or resumed mid-plan.
"""

import multiprocessing

import numpy as np
import pytest

from repro.experiments.engine import ExperimentEngine
from repro.experiments.figures import (
    fig04_plan,
    fig17_plan,
    fig18_plan,
    fig20_plan,
    scheme_factories,
)
from repro.experiments.plan import EvalPlan, EvalTask, Scheduler, execute_plan
from repro.experiments.runner import evaluate_scheme
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import (
    NetworkWorkload,
    ZooWorkload,
    build_traffic_matrices,
    build_zoo_workload,
)
from repro.net.zoo import grid_network, ring_network
from repro.routing import ShortestPathRouting


@pytest.fixture(scope="module")
def workload():
    return build_zoo_workload(
        n_networks=4, n_matrices=1, seed=7, include_named=False
    )


@pytest.fixture(scope="module")
def sweep_items():
    rng = np.random.default_rng(3)
    items = []
    for network, llpd_value in (
        (ring_network(6, np.random.default_rng(1)), 0.2),
        (grid_network(2, 3, np.random.default_rng(2), name="plan-grid"), 0.5),
    ):
        items.append(
            NetworkWorkload(
                network=network,
                llpd=llpd_value,
                matrices=build_traffic_matrices(
                    network, 1, rng, locality=1.0, growth_factor=1.3
                ),
            )
        )
    return items


def per_call_reference(plan):
    """The pre-refactor execution: one evaluate_scheme call per stream."""
    return {
        key: evaluate_scheme(
            stream.factory, stream.workload, stream.matrices_per_network
        )
        for key, stream in plan.streams.items()
    }


@pytest.fixture(scope="module")
def figure_plans(workload, sweep_items):
    return {
        "fig04": fig04_plan(workload),
        "fig17": fig17_plan(sweep_items, loads=(0.6, 0.9)),
        "fig18": fig18_plan(
            [item.network for item in sweep_items],
            localities=(0.0, 1.0),
            n_matrices=1,
        ),
    }


@pytest.fixture(scope="module")
def figure_references(figure_plans):
    return {
        name: per_call_reference(plan)
        for name, plan in figure_plans.items()
    }


class TestPlanMatchesPerCall:
    """Property: plan execution == per-call loop, bit for bit."""

    @pytest.mark.parametrize("fig", ["fig04", "fig17", "fig18"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fork_pool(self, figure_plans, figure_references, fig, workers):
        report = execute_plan(figure_plans[fig], n_workers=workers)
        assert report.all_outcomes() == figure_references[fig]

    @pytest.mark.parametrize("fig", ["fig04", "fig17", "fig18"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_spawn_pool(
        self, figure_plans, figure_references, fig, workers, monkeypatch
    ):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert figure_plans[fig].spawn_safe()
        report = execute_plan(figure_plans[fig], n_workers=workers)
        assert report.all_outcomes() == figure_references[fig]

    def test_report_results_in_workload_order(self, figure_plans):
        report = execute_plan(figure_plans["fig04"], n_workers=4)
        for key, results in report.results.items():
            total = figure_plans["fig04"].streams[key].n_networks
            assert [r.index for r in results] == list(range(total))


class TestEvalPlanApi:
    def test_duplicate_key_rejected(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        with pytest.raises(ValueError, match="duplicate"):
            plan.add("SP", SchemeSpec("SP"), workload)

    def test_non_string_key_needs_scheme_name(self, workload):
        plan = EvalPlan()
        with pytest.raises(ValueError, match="explicit"):
            plan.add(("SP", 0.6), SchemeSpec("SP"), workload)
        plan.add(("SP", 0.6), SchemeSpec("SP"), workload, scheme="SP@0.6")
        assert plan.streams[("SP", 0.6)].scheme == "SP@0.6"

    def test_tasks_interleave_round_robin(self, workload):
        plan = EvalPlan()
        plan.add("A", SchemeSpec("SP"), workload)
        plan.add("B", SchemeSpec("MinMaxK10"), workload)
        tasks = plan.tasks()
        assert tasks[:4] == [
            EvalTask("A", 0),
            EvalTask("B", 0),
            EvalTask("A", 1),
            EvalTask("B", 1),
        ]
        assert len(tasks) == plan.n_tasks == 2 * len(workload.networks)

    def test_tasks_restricted_to_missing_indices(self, workload):
        plan = EvalPlan()
        plan.add("A", SchemeSpec("SP"), workload)
        plan.add("B", SchemeSpec("SP"), workload, scheme="B")
        tasks = plan.tasks(indices={"A": [2], "B": []})
        assert tasks == [EvalTask("A", 2)]

    def test_spawn_safety_requires_specs_everywhere(self, workload):
        plan = EvalPlan()
        plan.add("spec", SchemeSpec("SP"), workload)
        assert plan.spawn_safe()
        plan.add(
            "closure",
            lambda item: ShortestPathRouting(item.cache),
            workload,
        )
        assert not plan.spawn_safe()

    def test_closure_plan_still_runs_on_fork_pools(self, workload):
        plan = EvalPlan()
        plan.add(
            "closure",
            lambda item: ShortestPathRouting(item.cache),
            workload,
        )
        report = execute_plan(plan, n_workers=2)
        assert report.all_outcomes() == per_call_reference(plan)


class ReversedScheduler(Scheduler):
    """Adversarial permutation: the interleave order, backwards."""

    name = "reversed"

    def order(self, plan, per_stream):
        from repro.experiments.plan import InterleaveScheduler

        return list(reversed(InterleaveScheduler().order(plan, per_stream)))


class ShuffledScheduler(Scheduler):
    """Adversarial permutation: seeded shuffle of the flat task list."""

    name = "shuffled"

    def __init__(self, seed=1234):
        self.seed = seed

    def order(self, plan, per_stream):
        flat = [task for tasks in per_stream for task in tasks]
        rng = np.random.default_rng(self.seed)
        return [flat[i] for i in rng.permutation(len(flat))]


# The schedule shapes any permutation must survive: the round-robin
# default, cost-aware LPT, and two adversarial orders plugged in as
# custom Scheduler subclasses.
def _all_schedulers():
    from repro.experiments.cost import make_scheduler

    return {
        "interleave": make_scheduler("interleave"),
        "lpt": make_scheduler("lpt"),
        "reversed": ReversedScheduler(),
        "shuffled": ShuffledScheduler(),
    }


class TestOrderInvariance:
    """Property: ANY task permutation yields bit-identical keyed results.

    The cost-aware scheduling contract: schedulers sequence, they never
    re-shard — so round-robin, LPT, reversed and shuffled orders all
    produce the same keyed :class:`PlanReport` contents at any worker
    count, on fork and spawn pools alike.
    """

    @pytest.fixture(scope="class")
    def invariance_plan(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("ECMP", SchemeSpec("ECMP"), workload)
        return plan

    @pytest.fixture(scope="class")
    def invariance_reference(self, invariance_plan):
        return per_call_reference(invariance_plan)

    def test_every_scheduler_permutes_the_same_task_set(
        self, invariance_plan
    ):
        baseline = {
            (t.stream, t.index) for t in invariance_plan.tasks()
        }
        for name, scheduler in _all_schedulers().items():
            tasks = invariance_plan.tasks(scheduler=scheduler)
            assert {(t.stream, t.index) for t in tasks} == baseline, name
            assert len(tasks) == len(baseline), name

    @pytest.mark.parametrize("sched", ["interleave", "lpt", "reversed",
                                       "shuffled"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fork_pool(
        self, invariance_plan, invariance_reference, sched, workers
    ):
        report = execute_plan(
            invariance_plan,
            n_workers=workers,
            scheduler=_all_schedulers()[sched],
        )
        assert report.all_outcomes() == invariance_reference

    @pytest.mark.parametrize("sched", ["interleave", "lpt", "reversed",
                                       "shuffled"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_spawn_pool(
        self,
        invariance_plan,
        invariance_reference,
        sched,
        workers,
        monkeypatch,
    ):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        report = execute_plan(
            invariance_plan,
            n_workers=workers,
            scheduler=_all_schedulers()[sched],
        )
        assert report.all_outcomes() == invariance_reference

    @pytest.mark.parametrize("sched", ["lpt", "reversed"])
    def test_store_resume_under_permuted_order(
        self, invariance_plan, invariance_reference, sched, tmp_path
    ):
        # Kill a permuted run mid-plan, resume under the same permuted
        # order: stored-first serving + per-stream resume must still
        # reassemble the exact keyed results.
        engine = ExperimentEngine(
            n_workers=1, store_dir=tmp_path, scheduler=_all_schedulers()[sched]
        )
        stream = engine.stream_plan(invariance_plan)
        for _ in range(3):
            next(stream)
        stream.close()

        resumed = execute_plan(
            invariance_plan,
            store_dir=tmp_path,
            scheduler=_all_schedulers()[sched],
        )
        assert resumed.all_outcomes() == invariance_reference


class CountingFactory:
    """A factory that counts scheme constructions (serial runs only)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, item):
        self.calls += 1
        return ShortestPathRouting(item.cache)


class TestPlanStore:
    def test_resume_after_kill_mid_plan(self, figure_plans, tmp_path):
        plan = figure_plans["fig17"]
        reference = per_call_reference(plan)

        engine = ExperimentEngine(n_workers=1, store_dir=tmp_path)
        stream = engine.stream_plan(plan)
        for _ in range(5):  # "kill" the plan run after five tasks
            next(stream)
        stream.close()

        resumed = execute_plan(plan, store_dir=tmp_path)
        assert resumed.all_outcomes() == reference

    def test_resume_evaluates_only_missing_tasks(self, workload, tmp_path):
        plan = EvalPlan()
        first_a, first_b = CountingFactory(), CountingFactory()
        plan.add("A", first_a, workload)
        plan.add("B", first_b, workload, scheme="B")
        total = len(workload.networks)

        engine = ExperimentEngine(n_workers=1, store_dir=tmp_path)
        stream = engine.stream_plan(plan)
        for _ in range(3):
            next(stream)
        stream.close()
        assert first_a.calls + first_b.calls == 3

        resume_plan = EvalPlan()
        second_a, second_b = CountingFactory(), CountingFactory()
        resume_plan.add("A", second_a, workload)
        resume_plan.add("B", second_b, workload, scheme="B")
        report = execute_plan(resume_plan, store_dir=tmp_path)
        assert second_a.calls + second_b.calls == 2 * total - 3
        assert {key: len(results) for key, results in report.results.items()} \
            == {"A": total, "B": total}

    def test_fully_stored_plan_builds_no_scheme(self, workload, tmp_path):
        plan = EvalPlan()
        plan.add("A", CountingFactory(), workload)
        execute_plan(plan, store_dir=tmp_path)

        served_factory = CountingFactory()
        served_plan = EvalPlan()
        served_plan.add("A", served_factory, workload)
        report = execute_plan(
            served_plan, store_dir=tmp_path, store_only=True
        )
        assert served_factory.calls == 0
        assert report.all_outcomes() == execute_plan(plan).all_outcomes()

    def test_store_streams_shared_with_per_call_path(
        self, workload, tmp_path
    ):
        # A store populated by the classic per-call path must serve a
        # plan run without any re-evaluation, and vice versa: stream
        # names and signatures are unchanged by the plan layer.
        evaluate_scheme(
            SchemeSpec("SP"), workload, store_dir=tmp_path, scheme="SP"
        )
        plan = EvalPlan()
        factory = CountingFactory()
        plan.add("SP", factory, workload)
        report = execute_plan(plan, store_dir=tmp_path, store_only=True)
        assert factory.calls == 0
        assert report.outcomes("SP") == evaluate_scheme(
            SchemeSpec("SP"), workload
        )

    def test_duplicate_store_streams_rejected(self, workload, tmp_path):
        from repro.experiments.store import StoreError

        plan = EvalPlan()
        plan.add("A", SchemeSpec("SP"), workload, scheme="same")
        plan.add("B", SchemeSpec("SP"), workload, scheme="same")
        with pytest.raises(StoreError, match="unique"):
            execute_plan(plan, store_dir=tmp_path)


class TestFig20TopologyCache:
    def test_grown_topologies_cached_and_exact(self, sweep_items, tmp_path):
        from repro.net import mutate
        from repro.net.io import to_json

        uncached = fig20_plan(
            sweep_items, growth_fraction=0.2, max_candidates=4
        )
        cold = fig20_plan(
            sweep_items,
            growth_fraction=0.2,
            max_candidates=4,
            cache_dir=tmp_path,
        )
        assert list(tmp_path.glob("grown-*.json"))

        calls = []
        original = mutate.grow_by_llpd

        def counting_grow(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        mutate.grow_by_llpd = counting_grow
        try:
            warm = fig20_plan(
                sweep_items,
                growth_fraction=0.2,
                max_candidates=4,
                cache_dir=tmp_path,
            )
        finally:
            mutate.grow_by_llpd = original
        assert not calls  # zero grow_by_llpd recomputation on re-render

        # The cached topologies are byte-exact: same JSON, hence the same
        # store signatures and the same evaluation results.
        for key in uncached.streams:
            for fresh, cached, hot in zip(
                uncached.streams[key].workload.networks,
                cold.streams[key].workload.networks,
                warm.streams[key].workload.networks,
            ):
                assert to_json(cached.network) == to_json(fresh.network)
                assert to_json(hot.network) == to_json(fresh.network)

    def test_corrupt_cache_file_regrows(self, sweep_items, tmp_path):
        from repro.net.io import to_json

        reference = fig20_plan(
            sweep_items, growth_fraction=0.2, max_candidates=4,
            cache_dir=tmp_path,
        )
        for path in tmp_path.glob("grown-*.json"):
            path.write_text("{broken")
        regrown = fig20_plan(
            sweep_items, growth_fraction=0.2, max_candidates=4,
            cache_dir=tmp_path,
        )
        for key in reference.streams:
            for a, b in zip(
                reference.streams[key].workload.networks,
                regrown.streams[key].workload.networks,
            ):
                assert to_json(a.network) == to_json(b.network)


class TestPlanDispatch:
    def test_dispatch_plan_two_workers_conflict_free(
        self, workload, tmp_path
    ):
        from repro.experiments.dispatch import dispatch_plan

        plan = fig04_plan(
            workload,
            schemes={
                "SP": SchemeSpec("SP"),
                "MinMaxK10": SchemeSpec("MinMaxK10"),
            },
        )
        report = dispatch_plan(
            plan,
            n_shards=2,
            store_dir=tmp_path / "store",
            work_dir=tmp_path / "work",
            verify=True,  # asserts bit-identity vs the in-process engine
        )
        assert set(report.results) == {"SP", "MinMaxK10"}
        manifests = sorted((tmp_path / "work" / "manifests").glob("*.json"))
        assert len(manifests) == 2

        # Re-dispatching against the merged store is a pure no-op merge:
        # every record is already present (idempotence).
        again = dispatch_plan(
            plan,
            n_shards=2,
            store_dir=tmp_path / "store",
            work_dir=tmp_path / "work2",
        )
        assert again.all_outcomes() == report.all_outcomes()

    def test_plan_manifests_balance_all_streams(self, workload, tmp_path):
        from repro.experiments.dispatch import (
            load_manifest,
            write_plan_manifests,
        )

        plan = fig04_plan(workload)  # four schemes, one workload
        paths = write_plan_manifests(plan, 2, tmp_path)
        assert len(paths) == 2
        for path in paths:
            manifest = load_manifest(path)
            # Round-robin striping puts tasks from every scheme into
            # every shard — no worker drains one scheme alone.
            streams_hit = {task["stream"] for task in manifest["tasks"]}
            assert streams_hit == set(range(len(plan.streams)))
            # The item table is deduplicated: four schemes share one
            # workload, so each network serializes once, not four times.
            assert len(manifest["items"]) == len(
                {task["item"] for task in manifest["tasks"]}
            )
            assert len(manifest["items"]) < len(manifest["tasks"])

    def test_closure_plan_rejected(self, workload, tmp_path):
        from repro.experiments.dispatch import (
            DispatchError,
            write_plan_manifests,
        )

        plan = EvalPlan()
        plan.add(
            "closure", lambda item: ShortestPathRouting(item.cache), workload
        )
        with pytest.raises(DispatchError, match="non-SchemeSpec"):
            write_plan_manifests(plan, 2, tmp_path)

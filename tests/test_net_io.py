"""Tests for topology serialization (JSON round-trip, GraphML import)."""

import textwrap

import pytest

from repro.net.io import from_graphml, from_json, load, save, to_json
from repro.net.units import Gbps


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, diamond):
        clone = from_json(to_json(diamond))
        assert clone.name == diamond.name
        assert sorted(clone.node_names) == sorted(diamond.node_names)
        assert clone.num_links == diamond.num_links
        for link in diamond.links():
            other = clone.link(link.src, link.dst)
            assert other.capacity_bps == link.capacity_bps
            assert other.delay_s == link.delay_s

    def test_round_trip_zoo_network(self, gts):
        clone = from_json(to_json(gts))
        assert clone.num_nodes == gts.num_nodes
        assert clone.node("n0-0").lat_deg == gts.node("n0-0").lat_deg

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro network"):
            from_json('{"format": "something-else"}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            from_json('{"format": "repro-network", "version": 99}')

    def test_file_round_trip(self, triangle, tmp_path):
        path = tmp_path / "net.json"
        save(triangle, str(path))
        assert load(str(path)).num_links == triangle.num_links


GRAPHML = textwrap.dedent(
    """\
    <?xml version="1.0" encoding="utf-8"?>
    <graphml xmlns="http://graphml.graphdrawing.org/xmlns">
      <key id="d0" for="node" attr.name="Latitude" attr.type="double"/>
      <key id="d1" for="node" attr.name="Longitude" attr.type="double"/>
      <key id="d2" for="node" attr.name="label" attr.type="string"/>
      <key id="d3" for="edge" attr.name="LinkSpeedRaw" attr.type="double"/>
      <key id="d4" for="graph" attr.name="Network" attr.type="string"/>
      <graph edgedefault="undirected">
        <data key="d4">TestNet</data>
        <node id="0">
          <data key="d0">48.85</data><data key="d1">2.35</data>
          <data key="d2">Paris</data>
        </node>
        <node id="1">
          <data key="d0">52.52</data><data key="d1">13.40</data>
          <data key="d2">Berlin</data>
        </node>
        <node id="2">
          <data key="d2">Nowhere</data>
        </node>
        <edge source="0" target="1">
          <data key="d3">10000000000</data>
        </edge>
        <edge source="0" target="2"/>
      </graph>
    </graphml>
    """
)


class TestGraphmlImport:
    @pytest.fixture
    def graphml_path(self, tmp_path):
        path = tmp_path / "net.graphml"
        path.write_text(GRAPHML)
        return str(path)

    def test_loads_located_nodes_only(self, graphml_path):
        network = from_graphml(graphml_path)
        assert network.name == "TestNet"
        assert sorted(network.node_names) == ["Berlin", "Paris"]

    def test_link_capacity_from_attribute(self, graphml_path):
        network = from_graphml(graphml_path)
        assert network.link("Paris", "Berlin").capacity_bps == pytest.approx(
            Gbps(10)
        )
        # Duplex import.
        assert network.has_link("Berlin", "Paris")

    def test_delay_from_geography(self, graphml_path):
        network = from_graphml(graphml_path)
        # Paris-Berlin is about 880 km: several milliseconds.
        assert 3e-3 < network.link("Paris", "Berlin").delay_s < 8e-3

    def test_pipeline_runs_on_imported_topology(self, graphml_path):
        """An imported topology drops straight into the full pipeline."""
        import numpy as np

        from repro.routing import LatencyOptimalRouting
        from repro.tm import gravity_traffic_matrix, scale_to_growth_headroom

        network = from_graphml(graphml_path)
        tm = gravity_traffic_matrix(network, np.random.default_rng(0))
        tm = scale_to_growth_headroom(network, tm, 1.3)
        placement = LatencyOptimalRouting().place(network, tm)
        assert placement.fits_all_traffic

"""Unit tests for shortest paths, Yen's KSP and the path cache."""

import os

import pytest

from repro.net.graph import Network, Node
from repro.net.paths import (
    KspCache,
    KspCacheMismatchError,
    NoPathError,
    all_pairs_shortest_paths,
    is_simple,
    k_shortest_paths,
    network_signature,
    path_bottleneck_bps,
    path_delay_s,
    path_links,
    shortest_path,
    shortest_path_delays,
    sweep_ksp_cache_dir,
)
from repro.net.units import Gbps, ms


class TestPathHelpers:
    def test_path_links(self):
        assert path_links(("a", "b", "c")) == [("a", "b"), ("b", "c")]

    def test_path_links_single_node(self):
        assert path_links(("a",)) == []

    def test_path_delay(self, triangle):
        assert path_delay_s(triangle, ("a", "b", "c")) == pytest.approx(ms(2))

    def test_path_bottleneck(self, diamond):
        assert path_bottleneck_bps(diamond, ("s", "x", "t")) == Gbps(10)
        assert path_bottleneck_bps(diamond, ("s", "y", "t")) == Gbps(40)

    def test_bottleneck_of_empty_path_rejected(self, triangle):
        with pytest.raises(ValueError):
            path_bottleneck_bps(triangle, ("a",))

    def test_is_simple(self):
        assert is_simple(("a", "b", "c"))
        assert not is_simple(("a", "b", "a"))


class TestShortestPath:
    def test_direct_link_wins(self, triangle):
        assert shortest_path(triangle, "a", "b") == ("a", "b")

    def test_follows_lowest_delay(self, diamond):
        assert shortest_path(diamond, "s", "t") == ("s", "x", "t")

    def test_same_endpoints_rejected(self, triangle):
        with pytest.raises(ValueError):
            shortest_path(triangle, "a", "a")

    def test_unknown_node_rejected(self, triangle):
        with pytest.raises(KeyError):
            shortest_path(triangle, "zz", "a")

    def test_disconnected_raises(self):
        net = Network("disc")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        with pytest.raises(NoPathError):
            shortest_path(net, "a", "b")

    def test_excluded_link_forces_detour(self, triangle):
        path = shortest_path(triangle, "a", "b", excluded_links={("a", "b")})
        assert path == ("a", "c", "b")

    def test_excluded_node_forces_detour(self, diamond):
        path = shortest_path(diamond, "s", "t", excluded_nodes={"x"})
        assert path == ("s", "y", "t")

    def test_delays_from_source(self, line4):
        delays = shortest_path_delays(line4, "n0")
        assert delays["n1"] == pytest.approx(ms(1))
        assert delays["n3"] == pytest.approx(ms(3))
        assert "n0" not in delays

    def test_all_pairs(self, triangle):
        paths = all_pairs_shortest_paths(triangle)
        assert len(paths) == 6
        assert paths[("a", "c")] == ("a", "c")


class TestYenKsp:
    def test_yields_in_delay_order(self, diamond):
        paths = list(k_shortest_paths(diamond, "s", "t"))
        delays = [path_delay_s(diamond, p) for p in paths]
        assert delays == sorted(delays)
        assert paths[0] == ("s", "x", "t")

    def test_exhausts_simple_paths(self, square):
        # a->c in a square: exactly two simple paths.
        paths = list(k_shortest_paths(square, "a", "c"))
        assert len(paths) == 2
        assert set(paths) == {("a", "b", "c"), ("a", "d", "c")}

    def test_all_paths_simple(self, gts):
        paths = []
        generator = k_shortest_paths(gts, "n0-0", "n3-5")
        for _ in range(12):
            paths.append(next(generator))
        assert all(is_simple(p) for p in paths)
        assert len(set(paths)) == len(paths)

    def test_disconnected_yields_nothing(self):
        net = Network("disc")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        assert list(k_shortest_paths(net, "a", "b")) == []

    def test_triangle_paths(self, triangle):
        paths = list(k_shortest_paths(triangle, "a", "b"))
        assert paths == [("a", "b"), ("a", "c", "b")]


class TestKspCache:
    def test_get_returns_k_paths(self, gts):
        cache = KspCache(gts)
        paths = cache.get("n0-0", "n2-3", 4)
        assert len(paths) == 4
        delays = [path_delay_s(gts, p) for p in paths]
        assert delays == sorted(delays)

    def test_incremental_extension_consistent(self, gts):
        cache = KspCache(gts)
        first_two = cache.get("n0-0", "n2-3", 2)
        five = cache.get("n0-0", "n2-3", 5)
        assert five[:2] == first_two

    def test_matches_uncached_yen(self, square):
        cache = KspCache(square)
        assert cache.get("a", "c", 5) == list(k_shortest_paths(square, "a", "c"))

    def test_exhaustion_returns_fewer(self, square):
        cache = KspCache(square)
        assert len(cache.get("a", "c", 99)) == 2

    def test_shortest(self, diamond):
        cache = KspCache(diamond)
        assert cache.shortest("s", "t") == ("s", "x", "t")

    def test_shortest_raises_when_disconnected(self):
        net = Network("disc")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        cache = KspCache(net)
        with pytest.raises(NoPathError):
            cache.shortest("a", "b")

    def test_invalid_k_rejected(self, triangle):
        cache = KspCache(triangle)
        with pytest.raises(ValueError):
            cache.get("a", "b", 0)

    def test_count_cached(self, triangle):
        cache = KspCache(triangle)
        assert cache.count_cached("a", "b") == 0
        cache.get("a", "b", 2)
        assert cache.count_cached("a", "b") == 2


class TestNetworkSignature:
    def test_stable_across_copies(self, gts):
        assert network_signature(gts) == network_signature(gts.copy())

    def test_capacity_change_changes_signature(self, triangle):
        assert network_signature(triangle) != network_signature(
            triangle.with_capacity_factor(2.0)
        )

    def test_removed_link_changes_signature(self, triangle):
        assert network_signature(triangle) != network_signature(
            triangle.without_duplex_link("a", "b")
        )


class TestKspCachePersistence:
    def test_dump_load_round_trip(self, gts):
        cache = KspCache(gts)
        expected = cache.get("n0-0", "n2-3", 4)
        restored = KspCache.load(cache.dump(), gts)
        assert restored.count_cached("n0-0", "n2-3") == 4
        assert restored.get("n0-0", "n2-3", 4) == expected

    def test_loaded_cache_extends_beyond_dumped_paths(self, gts):
        cache = KspCache(gts)
        cache.get("n0-0", "n2-3", 2)
        restored = KspCache.load(cache.dump(), gts)
        # Asking for more than was persisted resumes Yen deterministically.
        assert restored.get("n0-0", "n2-3", 6) == KspCache(gts).get(
            "n0-0", "n2-3", 6
        )

    def test_exhaustion_survives_round_trip(self, square):
        cache = KspCache(square)
        assert len(cache.get("a", "c", 99)) == 2
        restored = KspCache.load(cache.dump(), square)
        assert len(restored.get("a", "c", 99)) == 2

    def test_mutated_network_rejected(self, triangle):
        payload = KspCache(triangle).dump()
        with pytest.raises(KspCacheMismatchError):
            KspCache.load(payload, triangle.with_capacity_factor(0.5))

    def test_malformed_payload_rejected(self, triangle):
        # Valid JSON, right format and signature, broken structure: must
        # hit the mismatch path, not leak a KeyError to the caller.
        payload = KspCache(triangle).dump()
        payload["pairs"] = [{"src": "a"}]
        with pytest.raises(KspCacheMismatchError):
            KspCache.load(payload, triangle)

    def test_unknown_format_rejected(self, triangle):
        payload = KspCache(triangle).dump()
        payload["format"] = 999
        with pytest.raises(KspCacheMismatchError):
            KspCache.load(payload, triangle)

    def test_file_round_trip(self, diamond, tmp_path):
        cache = KspCache(diamond)
        cache.get("s", "t", 2)
        path = tmp_path / "cache.json"
        cache.dump_file(path)
        restored = KspCache.load_file(path, diamond)
        assert restored.get("s", "t", 2) == cache.get("s", "t", 2)

    def test_corrupt_file_rejected(self, triangle, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{definitely not json")
        with pytest.raises(KspCacheMismatchError):
            KspCache.load_file(path, triangle)


class TestDumpBounds:
    def test_dump_truncates_paths_per_pair(self, gts):
        cache = KspCache(gts)
        cache.get("n0-0", "n2-3", 4)
        payload = cache.dump(max_paths_per_pair=2)
        for entry in payload["pairs"]:
            assert len(entry["paths"]) <= 2

    @staticmethod
    def pair_entry(payload, src, dst):
        """The format-2 payload entry for a pair, resolved via the name table."""
        names = payload["nodes"]
        (entry,) = [
            e
            for e in payload["pairs"]
            if (names[e["src"]], names[e["dst"]]) == (src, dst)
        ]
        return entry

    def test_truncated_pair_not_marked_exhausted(self, square):
        cache = KspCache(square)
        assert len(cache.get("a", "c", 99)) == 2  # exhausts the pair
        payload = cache.dump(max_paths_per_pair=1)
        assert self.pair_entry(payload, "a", "c")["exhausted"] is False
        # A bounded dump resumes Yen correctly past the kept prefix.
        restored = KspCache.load(payload, square)
        assert restored.get("a", "c", 99) == cache.get("a", "c", 99)

    def test_unbounded_dump_keeps_exhaustion(self, square):
        cache = KspCache(square)
        cache.get("a", "c", 99)
        payload = cache.dump(max_paths_per_pair=5)
        assert self.pair_entry(payload, "a", "c")["exhausted"] is True

    def test_dump_paths_are_integer_indexed(self, square):
        cache = KspCache(square)
        expected = cache.get("a", "c", 99)
        payload = cache.dump()
        assert payload["format"] == 2
        entry = self.pair_entry(payload, "a", "c")
        names = payload["nodes"]
        assert names == sorted(names)
        for path in entry["paths"]:
            assert all(isinstance(i, int) for i in path)
        decoded = [tuple(names[i] for i in path) for path in entry["paths"]]
        assert decoded == expected

    def test_format1_payload_still_loads(self, square):
        cache = KspCache(square)
        expected = cache.get("a", "c", 99)
        legacy = {
            "format": 1,
            "signature": network_signature(square),
            "pairs": [
                {
                    "src": "a",
                    "dst": "c",
                    "paths": [list(path) for path in expected],
                    "exhausted": True,
                }
            ],
        }
        restored = KspCache.load(legacy, square)
        assert restored.get("a", "c", 99) == expected

    def test_dump_file_bound(self, diamond, tmp_path):
        cache = KspCache(diamond)
        cache.get("s", "t", 2)
        path = tmp_path / "cache.json"
        cache.dump_file(path, max_paths_per_pair=1)
        restored = KspCache.load_file(path, diamond)
        assert restored.count_cached("s", "t") == 1
        assert restored.get("s", "t", 2) == cache.get("s", "t", 2)

    def test_invalid_bound_rejected(self, triangle):
        with pytest.raises(ValueError):
            KspCache(triangle).dump(max_paths_per_pair=0)


class TestSweepCacheDir:
    @staticmethod
    def fake_cache(directory, name, size, mtime):
        path = directory / f"ksp-{name}.json"
        path.write_bytes(b"x" * size)
        os.utime(path, (mtime, mtime))
        return path

    def test_keeps_recent_within_budget(self, tmp_path):
        old = self.fake_cache(tmp_path, "old", 100, 1_000)
        mid = self.fake_cache(tmp_path, "mid", 100, 2_000)
        new = self.fake_cache(tmp_path, "new", 100, 3_000)
        removed = sweep_ksp_cache_dir(tmp_path, max_bytes=250)
        assert removed == [str(old)]
        assert mid.exists() and new.exists() and not old.exists()

    def test_under_budget_removes_nothing(self, tmp_path):
        self.fake_cache(tmp_path, "a", 10, 1_000)
        assert sweep_ksp_cache_dir(tmp_path, max_bytes=1_000) == []

    def test_zero_budget_clears_everything(self, tmp_path):
        self.fake_cache(tmp_path, "a", 10, 1_000)
        self.fake_cache(tmp_path, "b", 10, 2_000)
        assert len(sweep_ksp_cache_dir(tmp_path, max_bytes=0)) == 2

    def test_ignores_foreign_files(self, tmp_path):
        keep = tmp_path / "notes.json"
        keep.write_text("{}")
        self.fake_cache(tmp_path, "a", 50, 1_000)
        sweep_ksp_cache_dir(tmp_path, max_bytes=0)
        assert keep.exists()

    def test_missing_directory_is_empty(self, tmp_path):
        assert sweep_ksp_cache_dir(tmp_path / "absent", max_bytes=0) == []

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_ksp_cache_dir(tmp_path, max_bytes=-1)

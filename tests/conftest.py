"""Shared fixtures: small hand-built networks and traffic matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms
from repro.tm.matrix import TrafficMatrix


def build_triangle(capacity_bps: float = Gbps(10)) -> Network:
    """Three nodes, fully connected, equal 1 ms links."""
    net = Network("triangle")
    for name in "abc":
        net.add_node(Node(name))
    net.add_duplex_link("a", "b", capacity_bps, ms(1))
    net.add_duplex_link("b", "c", capacity_bps, ms(1))
    net.add_duplex_link("a", "c", capacity_bps, ms(1))
    return net


def build_square(capacity_bps: float = Gbps(10)) -> Network:
    """Four nodes in a cycle a-b-c-d-a, equal 1 ms links."""
    net = Network("square")
    for name in "abcd":
        net.add_node(Node(name))
    net.add_duplex_link("a", "b", capacity_bps, ms(1))
    net.add_duplex_link("b", "c", capacity_bps, ms(1))
    net.add_duplex_link("c", "d", capacity_bps, ms(1))
    net.add_duplex_link("d", "a", capacity_bps, ms(1))
    return net


def build_diamond() -> Network:
    """Two parallel two-hop routes s->t: fast (2 ms) and slow (10 ms).

    The slow route is fatter, which makes it interesting for both APA
    (capacity-aware alternates) and congestion-driven detours.
    """
    net = Network("diamond")
    for name in ("s", "x", "y", "t"):
        net.add_node(Node(name))
    net.add_duplex_link("s", "x", Gbps(10), ms(1))
    net.add_duplex_link("x", "t", Gbps(10), ms(1))
    net.add_duplex_link("s", "y", Gbps(40), ms(5))
    net.add_duplex_link("y", "t", Gbps(40), ms(5))
    return net


def build_line(n: int = 4, capacity_bps: float = Gbps(10)) -> Network:
    """A chain n0 - n1 - ... - n_{n-1}, 1 ms per hop."""
    net = Network(f"line-{n}")
    for i in range(n):
        net.add_node(Node(f"n{i}"))
    for i in range(n - 1):
        net.add_duplex_link(f"n{i}", f"n{i+1}", capacity_bps, ms(1))
    return net


@pytest.fixture
def triangle() -> Network:
    return build_triangle()


@pytest.fixture
def square() -> Network:
    return build_square()


@pytest.fixture
def diamond() -> Network:
    return build_diamond()


@pytest.fixture
def line4() -> Network:
    return build_line(4)


@pytest.fixture
def gts() -> Network:
    from repro.net.zoo import gts_like

    return gts_like()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_tm() -> TrafficMatrix:
    return TrafficMatrix(
        {("a", "b"): Gbps(2), ("a", "c"): Gbps(1), ("b", "c"): Gbps(1)}
    )


def loaded_gts_tm(network, seed: int = 0, locality: float = 1.0,
                  growth_factor: float = 1.3) -> TrafficMatrix:
    """A paper-style workload on the GTS-like network."""
    from repro.tm import (
        apply_locality,
        gravity_traffic_matrix,
        scale_to_growth_headroom,
    )

    rng = np.random.default_rng(seed)
    tm = gravity_traffic_matrix(network, rng)
    tm = apply_locality(network, tm, locality)
    return scale_to_growth_headroom(network, tm, growth_factor)


@pytest.fixture
def gts_tm(gts) -> TrafficMatrix:
    return loaded_gts_tm(gts)

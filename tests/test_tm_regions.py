"""Tests for region-aggregated demands and the sparse gravity model."""

import numpy as np
import pytest

from repro.net.ingest import synthesize_internet_like
from repro.net.zoo import gts_like
from repro.tm.gravity import (
    gravity_traffic_matrix,
    sparse_gravity_traffic_matrix,
)
from repro.tm.matrix import TrafficMatrix
from repro.tm.regions import (
    aggregate_by_region,
    geographic_regions,
    maybe_aggregate,
    region_gateways,
)


@pytest.fixture(scope="module")
def internet():
    return synthesize_internet_like(300, seed=12)


@pytest.fixture(scope="module")
def internet_tm(internet):
    rng = np.random.default_rng(0)
    return sparse_gravity_traffic_matrix(internet, rng, n_pairs=2000)


class TestGeographicRegions:
    def test_partitions_every_node(self, internet):
        regions = geographic_regions(internet, 8)
        assert set(regions) == set(internet.node_names)
        assert set(regions.values()) == set(range(max(regions.values()) + 1))

    def test_deterministic(self, internet):
        assert geographic_regions(internet, 8) == geographic_regions(internet, 8)

    def test_every_region_nonempty(self, internet):
        regions = geographic_regions(internet, 12)
        gateways = region_gateways(internet, regions)
        assert len(gateways) == len(set(regions.values()))
        for gateway in gateways:
            assert gateway in internet.node_names

    def test_single_region(self, internet):
        regions = geographic_regions(internet, 1)
        assert set(regions.values()) == {0}

    def test_invalid_count_rejected(self, internet):
        with pytest.raises(ValueError):
            geographic_regions(internet, 0)


class TestMatrixAggregation:
    def test_aggregated_sums_demands(self):
        tm = TrafficMatrix(
            {("a", "b"): 10.0, ("c", "b"): 5.0, ("b", "a"): 2.0}
        )
        merged = tm.aggregated({"c": "a"})
        assert merged.demand("a", "b") == 15.0
        assert merged.demand("b", "a") == 2.0

    def test_aggregated_drops_collapsed_pairs(self):
        tm = TrafficMatrix({("a", "b"): 10.0})
        merged = tm.aggregated({"b": "a"})
        assert len(merged) == 0

    def test_unmapped_names_kept(self):
        tm = TrafficMatrix({("a", "b"): 1.0})
        assert tm.aggregated({}).demand("a", "b") == 1.0


class TestMaybeAggregate:
    def test_exact_below_budget(self, internet, internet_tm):
        routed, regional = maybe_aggregate(
            internet, internet_tm, max_pairs=10_000
        )
        assert routed is internet_tm
        assert regional is None

    def test_aggregates_above_budget(self, internet, internet_tm):
        routed, regional = maybe_aggregate(
            internet, internet_tm, max_pairs=500
        )
        assert regional is not None
        assert len(routed) <= 500
        assert regional.label == f"region~{regional.n_regions}"
        # Every surviving endpoint is a gateway.
        gateways = set(regional.gateways)
        for src, dst in routed.pairs:
            assert src in gateways and dst in gateways

    def test_demand_conservation(self, internet, internet_tm):
        routed, regional = maybe_aggregate(
            internet, internet_tm, max_pairs=500
        )
        assert (
            routed.total_demand_bps + regional.dropped_intra_bps
            == pytest.approx(internet_tm.total_demand_bps)
        )
        assert regional.dropped_intra_bps >= 0

    def test_deterministic(self, internet, internet_tm):
        first, _ = maybe_aggregate(internet, internet_tm, max_pairs=500)
        second, _ = maybe_aggregate(internet, internet_tm, max_pairs=500)
        assert first.pairs == second.pairs
        for pair in first.pairs:
            assert first.demand(*pair) == second.demand(*pair)

    def test_explicit_region_count(self, internet, internet_tm):
        _, regional = maybe_aggregate(
            internet, internet_tm, max_pairs=500, n_regions=5
        )
        assert regional.n_regions <= 5

    def test_zoo_scale_untouched(self):
        network = gts_like()
        rng = np.random.default_rng(1)
        tm = gravity_traffic_matrix(network, rng)
        routed, regional = maybe_aggregate(network, tm)
        assert routed is tm and regional is None


class TestSparseGravity:
    def test_exact_pair_count(self, internet):
        rng = np.random.default_rng(5)
        tm = sparse_gravity_traffic_matrix(internet, rng, n_pairs=1500)
        assert len(tm) == 1500

    def test_deterministic(self, internet):
        a = sparse_gravity_traffic_matrix(
            internet, np.random.default_rng(5), n_pairs=400
        )
        b = sparse_gravity_traffic_matrix(
            internet, np.random.default_rng(5), n_pairs=400
        )
        assert a.pairs == b.pairs
        for pair in a.pairs:
            assert a.demand(*pair) == b.demand(*pair)

    def test_pairs_are_distinct_ordered_pairs(self, internet):
        rng = np.random.default_rng(2)
        tm = sparse_gravity_traffic_matrix(internet, rng, n_pairs=800)
        assert len(set(tm.pairs)) == 800
        for src, dst in tm.pairs:
            assert src != dst

    def test_request_beyond_grid_clamped(self):
        network = gts_like()
        rng = np.random.default_rng(3)
        n = network.num_nodes
        tm = sparse_gravity_traffic_matrix(network, rng, n_pairs=10 * n * n)
        assert len(tm) == n * (n - 1)

    def test_heavy_tail_shape(self, internet):
        rng = np.random.default_rng(7)
        tm = sparse_gravity_traffic_matrix(internet, rng, n_pairs=2000)
        demands = sorted(
            (tm.demand(*pair) for pair in tm.pairs), reverse=True
        )
        top_decile = sum(demands[: len(demands) // 10])
        assert top_decile > 0.5 * sum(demands)

"""Reproductions of the paper's B4 pathologies (its Figures 5 and 6).

These are the paper's two explanations for why a greedy scheme fails on
path-diverse topologies:

* **Figure 5 (congestion trap)**: node V has exactly two exits.  Many blue
  aggregates fill link 1 eastbound (shared with green's shortest path)
  while many red aggregates fill link 2 westbound (green's only
  alternative).  Green, outnumbered in every fair-share round, is left
  stranded — while an optimal placement would move red to a fractionally
  longer path through G and fit everyone.
* **Figure 6 (needless detour)**: when a shared bottleneck fills, B4
  spills *both* competing aggregates to their next-shortest paths even if
  one of them faces a much longer detour; the optimum detours only the
  cheap-to-move aggregate.
"""

import pytest

from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms
from repro.routing import B4Routing, LatencyOptimalRouting
from repro.tm import TrafficMatrix

N_BLUE = 6
N_RED = 6


def build_congestion_trap() -> Network:
    """A miniature of the paper's Figure 5 (the GTS region around V).

    V's only exits are link 1 (v-m1) and link 2 (v-m2).  Blue aggregates
    flow b_i -> m2 -> v -> m1 -> g (filling link 1 eastbound), red
    aggregates flow r_i -> m1 -> v -> m2 -> w (filling link 2 westbound),
    and green (v -> g) needs one of those two directed links.
    """
    net = Network("fig5-trap")
    for name in ("v", "m1", "m2", "g", "w"):
        net.add_node(Node(name))
    net.add_duplex_link("v", "m1", Gbps(10), ms(1))  # link 1
    net.add_duplex_link("v", "m2", Gbps(10), ms(1))  # link 2
    net.add_duplex_link("m1", "g", Gbps(40), ms(1))
    net.add_duplex_link("m2", "w", Gbps(40), ms(1))
    # The "fractionally longer path through G": g-w closes the loop.
    net.add_duplex_link("g", "w", Gbps(40), ms(2.5))
    for i in range(N_BLUE):
        net.add_node(Node(f"b{i}"))
        net.add_duplex_link(f"b{i}", "m2", Gbps(40), ms(1))
    for i in range(N_RED):
        net.add_node(Node(f"r{i}"))
        net.add_duplex_link(f"r{i}", "m1", Gbps(40), ms(1))
    return net


def trap_traffic_matrix() -> TrafficMatrix:
    demands = {("v", "g"): Gbps(4)}
    for i in range(N_BLUE):
        demands[(f"b{i}", "g")] = Gbps(1.8)
    for i in range(N_RED):
        demands[(f"r{i}", "w")] = Gbps(1.8)
    return TrafficMatrix(demands)


class TestFigure5CongestionTrap:
    def setup_method(self):
        self.net = build_congestion_trap()
        self.tm = trap_traffic_matrix()

    def test_green_shortest_paths_cross_v_links(self):
        """Sanity: the topology realizes the paper's geometry."""
        from repro.net.paths import KspCache

        cache = KspCache(self.net)
        assert cache.shortest("b0", "g") == ("b0", "m2", "v", "m1", "g")
        assert cache.shortest("r0", "w") == ("r0", "m1", "v", "m2", "w")
        assert cache.shortest("v", "g") == ("v", "m1", "g")

    def test_b4_strands_green(self):
        placement = B4Routing().place(self.net, self.tm)
        assert not placement.fits_all_traffic
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        green = by_pair[("v", "g")]
        assert placement.unplaced_bps.get(green, 0.0) > Gbps(1)
        assert placement.congested_pair_fraction() > 0.0

    def test_optimal_fits_everyone(self):
        placement = LatencyOptimalRouting().place(self.net, self.tm)
        assert placement.fits_all_traffic
        assert placement.max_utilization() <= 1.0 + 1e-4
        # Green rides link 1 in the optimal placement.
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        green_paths = placement.paths_for(by_pair[("v", "g")])
        assert any(("v", "m1") in zip(a.path, a.path[1:]) for a in green_paths)

    def test_optimal_detours_red_through_g(self):
        """The paper: "an optimal placement would move red traffic
        aggregates onto the fractionally longer path through G"."""
        placement = LatencyOptimalRouting().place(self.net, self.tm)
        red_via_g = 0.0
        for agg in placement.aggregates:
            if not agg.src.startswith("r"):
                continue
            red_via_g += sum(
                alloc.fraction
                for alloc in placement.paths_for(agg)
                if "g" in alloc.path
            )
        assert red_via_g > 0.1


def build_unequal_detours() -> Network:
    """The paper's Figure 6: two aggregates share a bottleneck; red has a
    cheap second path (+1 ms), blue's detour is much longer."""
    net = Network("fig6-detour")
    for name in ("s1", "s2", "m", "t", "c", "f"):
        net.add_node(Node(name))
    net.add_duplex_link("s1", "m", Gbps(20), ms(1))
    net.add_duplex_link("s2", "m", Gbps(20), ms(1))
    net.add_duplex_link("m", "t", Gbps(10), ms(1))  # shared bottleneck
    # Red (s1) has a cheap alternate, +1 ms.
    net.add_duplex_link("s1", "c", Gbps(20), ms(1))
    net.add_duplex_link("c", "t", Gbps(20), ms(2))
    # Blue (s2) only has long detours.
    net.add_duplex_link("s2", "f", Gbps(20), ms(5))
    net.add_duplex_link("f", "t", Gbps(20), ms(7))
    return net


class TestFigure6UnequalDetours:
    def setup_method(self):
        self.net = build_unequal_detours()
        self.tm = TrafficMatrix({("s1", "t"): Gbps(8), ("s2", "t"): Gbps(8)})

    def blue_off_shortest(self, placement) -> float:
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        return sum(
            alloc.fraction
            for alloc in placement.paths_for(by_pair[("s2", "t")])
            if alloc.path != ("s2", "m", "t")
        )

    def test_b4_detours_blue(self):
        """B4 splits the bottleneck equally, pushing a large share of
        blue off its shortest path."""
        placement = B4Routing().place(self.net, self.tm)
        assert self.blue_off_shortest(placement) > 0.3

    def test_optimal_keeps_blue_on_shortest(self):
        """The optimum gives the bottleneck to blue and detours red, whose
        alternative costs only +1 ms."""
        placement = LatencyOptimalRouting().place(self.net, self.tm)
        assert self.blue_off_shortest(placement) < 0.05
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        red_detour = sum(
            alloc.fraction
            for alloc in placement.paths_for(by_pair[("s1", "t")])
            if "c" in alloc.path
        )
        assert red_detour > 0.7
        assert placement.fits_all_traffic

    def test_b4_latency_worse_than_optimal(self):
        b4 = B4Routing().place(self.net, self.tm)
        optimal = LatencyOptimalRouting().place(self.net, self.tm)
        assert (
            optimal.total_latency_stretch()
            < b4.total_latency_stretch() - 0.05
        )

"""Unit tests for flow decomposition and topology mutation."""

import numpy as np
import pytest

from repro.net.graph import Network, Node
from repro.net.mutate import candidate_links, grow_by_llpd, with_added_link
from repro.net.units import Gbps, ms
from repro.routing.decompose import decompose_flow


class TestDecompose:
    def test_single_path(self, line4):
        flows = {("n0", "n1"): 5.0, ("n1", "n2"): 5.0, ("n2", "n3"): 5.0}
        splits = decompose_flow(line4, "n0", "n3", flows, demand_bps=5.0)
        assert len(splits) == 1
        path, fraction = splits[0]
        assert path == ("n0", "n1", "n2", "n3")
        assert fraction == pytest.approx(1.0)

    def test_two_way_split(self, diamond):
        flows = {
            ("s", "x"): 6.0,
            ("x", "t"): 6.0,
            ("s", "y"): 4.0,
            ("y", "t"): 4.0,
        }
        splits = decompose_flow(diamond, "s", "t", flows, demand_bps=10.0)
        fractions = {path: fraction for path, fraction in splits}
        assert fractions[("s", "x", "t")] == pytest.approx(0.6)
        assert fractions[("s", "y", "t")] == pytest.approx(0.4)

    def test_prefers_low_delay_first(self, diamond):
        flows = {
            ("s", "x"): 5.0,
            ("x", "t"): 5.0,
            ("s", "y"): 5.0,
            ("y", "t"): 5.0,
        }
        splits = decompose_flow(diamond, "s", "t", flows, demand_bps=10.0)
        assert splits[0][0] == ("s", "x", "t")

    def test_ignores_noise(self, diamond):
        flows = {
            ("s", "x"): 10.0,
            ("x", "t"): 10.0,
            ("s", "y"): 1e-12,
            ("y", "t"): 1e-12,
        }
        splits = decompose_flow(diamond, "s", "t", flows, demand_bps=10.0)
        assert len(splits) == 1

    def test_rejects_bad_demand(self, diamond):
        with pytest.raises(ValueError):
            decompose_flow(diamond, "s", "t", {}, demand_bps=0.0)


class TestCandidateLinks:
    def test_excludes_existing(self, triangle):
        assert candidate_links(triangle) == []

    def test_square_diagonals(self, square):
        candidates = candidate_links(square)
        assert set(candidates) == {("a", "c"), ("b", "d")}

    def test_max_candidates_prefers_short(self):
        net = Network("spread")
        net.add_node(Node("a", 0.0, 0.0))
        net.add_node(Node("b", 0.0, 1.0))
        net.add_node(Node("c", 0.0, 10.0))
        net.add_node(Node("d", 0.0, 50.0))
        net.add_duplex_link("a", "d", Gbps(10), ms(10))
        net.add_duplex_link("b", "d", Gbps(10), ms(10))
        net.add_duplex_link("c", "d", Gbps(10), ms(10))
        top = candidate_links(net, max_candidates=1)
        assert top == [("a", "b")]


class TestWithAddedLink:
    def test_adds_duplex(self, square):
        grown = with_added_link(square, "a", "c")
        assert grown.has_link("a", "c") and grown.has_link("c", "a")
        assert not square.has_link("a", "c")

    def test_delay_from_geography(self):
        net = Network("geo")
        net.add_node(Node("a", 48.0, 2.0))
        net.add_node(Node("b", 52.0, 13.0))
        net.add_node(Node("c", 50.0, 8.0))
        net.add_duplex_link("a", "c", Gbps(10), ms(3))
        net.add_duplex_link("c", "b", Gbps(10), ms(3))
        grown = with_added_link(net, "a", "b")
        # Paris-Berlin-ish: around 5-6 ms.
        assert 3e-3 < grown.link("a", "b").delay_s < 8e-3


class TestGrowByLlpd:
    def test_grows_llpd(self, rng):
        """Greedy growth must not decrease the score it optimizes."""
        from repro.core.metrics import llpd
        from repro.net.zoo import ring_network

        net = ring_network(8, rng)
        before = llpd(net)
        grown, added = grow_by_llpd(
            net, score=llpd, growth_fraction=0.25, max_candidates=8
        )
        assert len(added) >= 1
        assert llpd(grown) >= before

    def test_respects_growth_fraction(self, rng):
        from repro.net.zoo import ring_network

        net = ring_network(10, rng)
        grown, added = grow_by_llpd(
            net,
            score=lambda n: n.num_links,  # trivially increasing score
            growth_fraction=0.2,
            max_candidates=5,
        )
        assert len(added) == 2  # 20% of 10 physical links
        assert len(grown.duplex_pairs()) == 12

    def test_invalid_fraction(self, triangle):
        with pytest.raises(ValueError):
            grow_by_llpd(triangle, score=lambda n: 0.0, growth_fraction=0.0)

    def test_clique_cannot_grow(self, triangle):
        grown, added = grow_by_llpd(
            triangle, score=lambda n: 0.0, growth_fraction=0.5
        )
        assert added == []

"""Tests for the minute-by-minute control-loop simulation."""

import numpy as np
import pytest

from repro.core.ldr import LdrConfig
from repro.net.units import Gbps
from repro.sim import TimelineSimulation
from repro.traces import SyntheticTraceConfig, synthesize_trace
from tests.conftest import loaded_gts_tm


def build_traces(network, tm, rng, minutes=4, sigma=0.12):
    traces = {}
    for agg in tm.aggregates():
        config = SyntheticTraceConfig(
            mean_bps=agg.demand_bps,
            minutes=minutes,
            sample_ms=100,
            burst_sigma_fraction=sigma,
            mean_drift=0.02,
        )
        traces[agg.pair] = synthesize_trace(config, rng)
    return traces


class TestValidation:
    def test_rejects_empty(self, triangle):
        with pytest.raises(ValueError):
            TimelineSimulation(triangle, {})

    def test_rejects_mismatched_lengths(self, triangle):
        with pytest.raises(ValueError):
            TimelineSimulation(
                triangle,
                {("a", "b"): np.ones(1200), ("b", "c"): np.ones(600)},
            )

    def test_rejects_single_minute(self, triangle):
        with pytest.raises(ValueError, match="two minutes"):
            TimelineSimulation(triangle, {("a", "b"): np.ones(600)})


class TestRun:
    def test_smooth_traffic_stays_clean(self, triangle):
        traces = {
            ("a", "b"): np.full(3 * 600, Gbps(1)),
            ("b", "c"): np.full(3 * 600, Gbps(2)),
        }
        sim = TimelineSimulation(triangle, traces)
        reports = sim.run()
        assert len(reports) == 2
        for report in reports:
            assert report.converged
            assert report.max_queue_delay_s == 0.0
            assert report.links_over_budget == 0
            assert report.latency_stretch == pytest.approx(1.0)
            # Actual utilization stays well below 1 (traffic is light).
            assert report.actual_max_utilization == pytest.approx(0.2)

    def test_limit_minutes(self, triangle):
        traces = {("a", "b"): np.full(5 * 600, Gbps(1))}
        sim = TimelineSimulation(triangle, traces)
        assert len(sim.run(n_minutes=2)) == 2

    def test_loaded_network_multi_minute(self, gts, rng):
        """Several minutes of realistic operation: the placements keep
        next-minute queueing within budget nearly always."""
        tm = loaded_gts_tm(gts, growth_factor=1.65)
        traces = build_traces(gts, tm, rng, minutes=4)
        sim = TimelineSimulation(gts, traces, LdrConfig(max_rounds=20))
        reports = sim.run()
        assert len(reports) == 3
        converged = [r for r in reports if r.converged]
        assert len(converged) >= 2
        for report in converged:
            # Headroom from the 10% hedge + multiplexing scaling should
            # absorb a 2% mean drift and the bursts almost entirely.
            assert report.max_queue_delay_s < 0.05
            assert report.actual_max_utilization < 1.0 + 1e-6
        # Predictor state persists: later minutes need no more rounds
        # than the cold first minute.
        assert reports[-1].ldr_rounds <= reports[0].ldr_rounds

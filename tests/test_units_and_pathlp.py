"""Unit tests for unit helpers and the path-LP building blocks."""

import pytest

from repro.net.units import Gbps, Kbps, Mbps, Tbps, ms, to_gbps, to_ms
from repro.routing.pathlp import (
    OVERLOAD_TOLERANCE,
    PathLpResult,
    path_lp_columns,
    solve_latency_lp,
    solve_minmax_lp,
)
from repro.tm.matrix import Aggregate


class TestPathLpColumns:
    def test_counts_paths_omax_and_overloads(self, diamond):
        agg = Aggregate("s", "t", Gbps(5))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        assert path_lp_columns(diamond, {agg: paths}) == (
            2 + 1 + diamond.num_links
        )

    def test_empty_path_sets(self, diamond):
        assert path_lp_columns(diamond, {}) == 1 + diamond.num_links


class TestUnits:
    def test_rate_helpers(self):
        assert Kbps(1) == 1e3
        assert Mbps(1) == 1e6
        assert Gbps(2.5) == 2.5e9
        assert Tbps(1) == 1e12

    def test_time_helpers(self):
        assert ms(5) == pytest.approx(5e-3)
        assert to_ms(0.25) == pytest.approx(250.0)

    def test_round_trips(self):
        assert to_gbps(Gbps(7)) == pytest.approx(7.0)
        assert to_ms(ms(3)) == pytest.approx(3.0)


class TestSolveLatencyLp:
    def test_single_aggregate_prefers_short(self, diamond):
        agg = Aggregate("s", "t", Gbps(5))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        result = solve_latency_lp(diamond, {agg: paths})
        assert result.fits
        fractions = dict(result.fractions[agg])
        assert fractions[("s", "x", "t")] == pytest.approx(1.0)

    def test_overflow_splits(self, diamond):
        agg = Aggregate("s", "t", Gbps(20))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        result = solve_latency_lp(diamond, {agg: paths})
        assert result.fits
        fractions = dict(result.fractions[agg])
        assert fractions[("s", "x", "t")] == pytest.approx(0.5, abs=0.01)

    def test_overload_reported(self, diamond):
        agg = Aggregate("s", "t", Gbps(100))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        result = solve_latency_lp(diamond, {agg: paths})
        assert not result.fits
        assert result.max_overload == pytest.approx(2.0, rel=0.01)
        assert result.overloaded_links()

    def test_empty_rejected(self, diamond):
        with pytest.raises(ValueError):
            solve_latency_lp(diamond, {})
        agg = Aggregate("s", "t", Gbps(1))
        with pytest.raises(ValueError):
            solve_latency_lp(diamond, {agg: []})

    def test_overloaded_links_empty_when_fits(self, diamond):
        agg = Aggregate("s", "t", Gbps(1))
        result = solve_latency_lp(diamond, {agg: [("s", "x", "t")]})
        assert result.fits
        assert result.overloaded_links() == []
        assert result.overloaded_links(only_maximal=False) == []


class TestSolveMinMaxLp:
    def test_balances(self, diamond):
        agg = Aggregate("s", "t", Gbps(10))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        result, umax = solve_minmax_lp(diamond, {agg: paths})
        # Equal utilization on both routes: u = 10 / (10 + 40) ... the LP
        # balances so that both paths hit the same utilization:
        # x/10 = (10-x)/40 -> x = 2 -> u = 0.2.
        assert umax == pytest.approx(0.2, abs=0.01)
        fractions = dict(result.fractions[agg])
        assert fractions[("s", "x", "t")] == pytest.approx(0.2, abs=0.02)

    def test_stage2_respects_cap_and_minimizes_delay(self, diamond):
        agg = Aggregate("s", "t", Gbps(1))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        result, umax = solve_minmax_lp(diamond, {agg: paths})
        # With trivial load, MinMax still balances to equalize utilization
        # but the latency tie-break applies only within the cap.
        total = sum(fraction for _, fraction in result.fractions[agg])
        assert total == pytest.approx(1.0)
        assert result.max_overload <= 1.0 + OVERLOAD_TOLERANCE

    def test_preseeded_cap(self, diamond):
        agg = Aggregate("s", "t", Gbps(10))
        paths = [("s", "x", "t"), ("s", "y", "t")]
        result, umax = solve_minmax_lp(
            diamond, {agg: paths}, utilization_cap=0.5
        )
        assert umax == 0.5
        # The looser cap lets latency dominate: everything on the fast
        # path (10G of demand at 10G capacity = utilization 1.0 > 0.5 is
        # not allowed, so it splits at the cap).
        fractions = dict(result.fractions[agg])
        assert fractions[("s", "x", "t")] == pytest.approx(0.5, abs=0.01)

"""Unit tests for Algorithm 1 (mean-rate prediction)."""

import numpy as np
import pytest

from repro.core.prediction import (
    MeanRatePredictor,
    predict_series,
    prediction_ratios,
)


class TestMeanRatePredictor:
    def test_first_prediction_is_hedged_value(self):
        predictor = MeanRatePredictor()
        assert predictor.update(100.0) == pytest.approx(110.0)

    def test_growth_tracks_immediately(self):
        predictor = MeanRatePredictor()
        predictor.update(100.0)
        # 200 * 1.1 > 110, so the prediction jumps.
        assert predictor.update(200.0) == pytest.approx(220.0)

    def test_decay_is_slow(self):
        predictor = MeanRatePredictor()
        predictor.update(100.0)  # prediction 110
        # Rate drops to 50: scaled_est = 55 < 110, decay gives 107.8.
        assert predictor.update(50.0) == pytest.approx(110.0 * 0.98)

    def test_decay_floors_at_scaled_estimate(self):
        predictor = MeanRatePredictor()
        predictor.update(100.0)
        for _ in range(200):
            prediction = predictor.update(50.0)
        # After long decay, the prediction settles at 50 * 1.1.
        assert prediction == pytest.approx(55.0)

    def test_constant_traffic_stabilizes_at_hedge(self):
        predictor = MeanRatePredictor()
        for _ in range(50):
            prediction = predictor.update(100.0)
        assert prediction == pytest.approx(110.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeanRatePredictor(decay_multiplier=0.0)
        with pytest.raises(ValueError):
            MeanRatePredictor(fixed_hedge=0.9)
        predictor = MeanRatePredictor()
        with pytest.raises(ValueError):
            predictor.update(-1.0)

    def test_current_prediction_exposed(self):
        predictor = MeanRatePredictor()
        assert predictor.current_prediction is None
        predictor.update(10.0)
        assert predictor.current_prediction == pytest.approx(11.0)


class TestSeries:
    def test_predict_series_shape(self):
        predictions = predict_series([1.0, 2.0, 3.0])
        assert len(predictions) == 3
        assert predictions[0] == pytest.approx(1.1)

    def test_ratio_for_constant_traffic(self):
        ratios = prediction_ratios(np.full(20, 5.0))
        assert np.allclose(ratios, 1 / 1.1)

    def test_ratios_rarely_exceed_one_for_mild_drift(self, rng):
        """The Figure 9 property: with <10% minute-to-minute changes the
        measured rate almost never exceeds the hedged prediction."""
        steps = rng.normal(0.0, 0.03, size=500)
        means = 1e9 * np.exp(np.cumsum(steps))
        ratios = prediction_ratios(means)
        assert np.mean(ratios > 1.0) < 0.01
        assert ratios.max() < 1.1

    def test_needs_two_minutes(self):
        with pytest.raises(ValueError):
            prediction_ratios(np.array([1.0]))

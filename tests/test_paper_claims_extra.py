"""Additional paper-claim tests not tied to a numbered figure."""

import numpy as np
import pytest

from repro.core.metrics import apa_all_pairs, llpd_from_apa
from repro.net.zoo import generate_zoo
from repro.routing import B4Routing, MinMaxRouting, ShortestPathRouting
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)


def spearman_rank_correlation(a, b) -> float:
    ranks_a = np.argsort(np.argsort(a))
    ranks_b = np.argsort(np.argsort(b))
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


class TestLlpdThresholdRobustness:
    def test_rank_ordering_stable_across_thresholds(self):
        """§2: "The choice of 0.7 here is not crucial; the rank ordering
        does not change greatly if we choose a different threshold in the
        upper half of the distribution."""
        networks = generate_zoo(14, seed=3, include_named=False)
        apa_values = [apa_all_pairs(net) for net in networks]
        at_06 = [llpd_from_apa(v, threshold=0.6) for v in apa_values]
        at_07 = [llpd_from_apa(v, threshold=0.7) for v in apa_values]
        at_08 = [llpd_from_apa(v, threshold=0.8) for v in apa_values]
        assert spearman_rank_correlation(at_06, at_07) > 0.85
        assert spearman_rank_correlation(at_07, at_08) > 0.85

    def test_llpd_monotone_in_threshold(self):
        networks = generate_zoo(6, seed=4, include_named=False)
        for net in networks:
            values = apa_all_pairs(net)
            series = [
                llpd_from_apa(values, threshold=t)
                for t in (0.5, 0.6, 0.7, 0.8, 0.9)
            ]
            assert series == sorted(series, reverse=True)


class TestLoadExtremes:
    @pytest.fixture(scope="class")
    def network(self, request):
        from repro.net.zoo import gts_like

        return gts_like()

    def base_tm(self, network, growth_factor):
        rng = np.random.default_rng(6)
        tm = gravity_traffic_matrix(network, rng)
        tm = apply_locality(network, tm, 1.0)
        return scale_to_growth_headroom(network, tm, growth_factor)

    def test_b4_optimal_at_low_load(self, network):
        """§6: "at low load, when everything fits on the shortest path,
        B4 is optimal"."""
        tm = self.base_tm(network, growth_factor=6.0)  # ~17% min-cut load
        b4 = B4Routing().place(network, tm)
        sp = ShortestPathRouting().place(network, tm)
        assert sp.congested_pair_fraction() == 0.0  # everything fits on SP
        assert b4.total_latency_stretch() == pytest.approx(1.0, abs=1e-9)

    def test_minmax_detours_even_at_low_load(self, network):
        """§6: "under low loads MinMax chooses circuitous routes as it
        tries to minimize peak link utilization"."""
        tm = self.base_tm(network, growth_factor=6.0)
        minmax = MinMaxRouting().place(network, tm)
        # With the paper's latency tie-break the detours are small but
        # strictly present: utilization-first still moves some traffic
        # off shortest paths even when everything would fit on them.
        assert minmax.total_latency_stretch() > 1.0 + 1e-6
        assert minmax.max_utilization() < 0.2
        assert minmax.max_path_stretch() > 1.0 + 1e-3

    def test_minmax_approaches_optimal_at_high_load(self, network):
        """§6: "Under very high load we see that unrestricted MinMax
        becomes close to optimal, as options for re-routing become
        limited"."""
        from repro.routing import LatencyOptimalRouting

        light = self.base_tm(network, growth_factor=2.0)
        heavy = self.base_tm(network, growth_factor=1.05)
        gaps = []
        for tm in (light, heavy):
            minmax = MinMaxRouting().place(network, tm)
            optimal = LatencyOptimalRouting().place(network, tm)
            gaps.append(
                minmax.total_latency_stretch()
                - optimal.total_latency_stretch()
            )
        # The MinMax-vs-optimal stretch gap shrinks as load rises.
        assert gaps[1] <= gaps[0] + 1e-9

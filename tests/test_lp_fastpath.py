"""The LP hot path: compiled reuse, backends, and the approximate solver.

Three layers:

* **byte-identity properties** — the vectorized assembly in
  :mod:`repro.routing.pathlp` must produce *bit-identical* results to the
  scalar, build-per-solve reference implementation it replaced (ported
  below as ``_legacy_*``), with the structure cache on, off, or shared
  across solves, and under every available backend;
* **CompiledLP unit tests** — payload mutation keeps warm state,
  structural mutation invalidates it, and the bulk builder APIs agree
  with the scalar ones;
* **approximate fast path** — the certified bounds bracket the exact
  optimum and the heuristic is deterministic.
"""

import math

import numpy as np
import pytest

from repro.lp import (
    BACKEND_ENV,
    CompiledLP,
    InfeasibleError,
    LinearProgram,
    LinExpr,
    Solution,
    UnboundedError,
    available_backends,
    resolve_backend,
)
from repro.net.paths import KspCache
from repro.net.units import Gbps
from repro.routing.minmax import MinMaxRouting
from repro.routing.pathlp import (
    M1_TIEBREAK,
    M2_MAX_OVERLOAD,
    M3_TOTAL_OVERLOAD,
    clear_structure_cache,
    set_structure_cache_enabled,
    solve_latency_lp,
    solve_minmax_approx,
    solve_minmax_lp,
)
from repro.tm.matrix import Aggregate
from tests.conftest import loaded_gts_tm


# ----------------------------------------------------------------------
# Legacy reference: the scalar, build-per-solve assembly this PR replaced
# (verbatim port, minus docstrings).  The vectorized path must match it
# bit for bit.
# ----------------------------------------------------------------------
class _LegacyBuilder:
    def __init__(self, network, path_sets):
        self.network = network
        self.path_sets = {agg: list(paths) for agg, paths in path_sets.items()}
        self.aggregates = list(self.path_sets)
        links = list(network.links())
        self.capacity_unit = (
            sum(link.capacity_bps for link in links) / len(links)
        )
        total_flows = sum(agg.n_flows for agg in self.aggregates)
        self.flow_weight = {
            agg: agg.n_flows / total_flows for agg in self.aggregates
        }
        link_delay = {link.key: link.delay_s for link in links}
        self._path_links = {}
        self._path_delay = {}
        for ai, agg in enumerate(self.aggregates):
            for pi, path in enumerate(self.path_sets[agg]):
                keys = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
                self._path_links[(ai, pi)] = keys
                self._path_delay[(ai, pi)] = sum(link_delay[k] for k in keys)
        self.shortest_delay = {
            agg: self._path_delay[(ai, 0)]
            for ai, agg in enumerate(self.aggregates)
        }
        self.delay_unit = sum(
            self.flow_weight[agg] * self.shortest_delay[agg]
            for agg in self.aggregates
        )
        if self.delay_unit <= 0:
            self.delay_unit = 1e-3

        self.lp = LinearProgram()
        self.x = {}
        for ai, agg in enumerate(self.aggregates):
            for pi, _ in enumerate(self.path_sets[agg]):
                self.x[(ai, pi)] = self.lp.variable(f"x[{ai},{pi}]", 0.0, 1.0)
            expr = LinExpr()
            for pi in range(len(self.path_sets[agg])):
                expr.add_term(self.x[(ai, pi)], 1.0)
            self.lp.add_constraint(expr, "==", 1.0)

        self.load_exprs = {}
        for ai, agg in enumerate(self.aggregates):
            demand_units = agg.demand_bps / self.capacity_unit
            for pi in range(len(self.path_sets[agg])):
                x_var = self.x[(ai, pi)]
                for key in self._path_links[(ai, pi)]:
                    expr = self.load_exprs.setdefault(key, LinExpr())
                    expr.add_term(x_var, demand_units)

    def delay_objective(self):
        objective = LinExpr()
        for ai, agg in enumerate(self.aggregates):
            weight = self.flow_weight[agg]
            shortest = max(self.shortest_delay[agg], 1e-9)
            for pi in range(len(self.path_sets[agg])):
                delay = self._path_delay[(ai, pi)] / self.delay_unit
                coefficient = weight * delay
                coefficient += (
                    weight * delay * M1_TIEBREAK * (self.delay_unit / shortest)
                )
                objective.add_term(self.x[(ai, pi)], coefficient)
        return objective

    def extract_fractions(self, solution):
        return {
            agg: [
                (path, solution.value(self.x[(ai, pi)]))
                for pi, path in enumerate(self.path_sets[agg])
            ]
            for ai, agg in enumerate(self.aggregates)
        }


def _legacy_latency(network, path_sets):
    builder = _LegacyBuilder(network, path_sets)
    lp = builder.lp
    omax = lp.variable("Omax", lower=1.0)
    overload = {}
    for key, load_expr in builder.load_exprs.items():
        o_l = lp.variable(f"O[{key[0]}->{key[1]}]", lower=1.0)
        overload[key] = o_l
        capacity_units = network.link(*key).capacity_bps / builder.capacity_unit
        constraint = LinExpr(dict(load_expr.terms))
        constraint.add_term(o_l, -capacity_units)
        lp.add_constraint(constraint, "<=", 0.0)
        bound = LinExpr({o_l: 1.0})
        bound.add_term(omax, -1.0)
        lp.add_constraint(bound, "<=", 0.0)
    objective = builder.delay_objective()
    objective.add_term(omax, M2_MAX_OVERLOAD)
    for o_l in overload.values():
        objective.add_term(o_l, M3_TOTAL_OVERLOAD)
    lp.minimize(objective)
    solution = lp.solve()
    link_overload = {key: solution.value(var) for key, var in overload.items()}
    return (
        builder.extract_fractions(solution),
        link_overload,
        solution.value(omax),
        solution.objective,
    )


def _legacy_minmax(network, path_sets):
    stage1 = _LegacyBuilder(network, path_sets)
    umax = stage1.lp.variable("Umax", lower=0.0)
    for key, load_expr in stage1.load_exprs.items():
        capacity_units = network.link(*key).capacity_bps / stage1.capacity_unit
        constraint = LinExpr(dict(load_expr.terms))
        constraint.add_term(umax, -capacity_units)
        stage1.lp.add_constraint(constraint, "<=", 0.0)
    stage1.lp.minimize(LinExpr({umax: 1.0}))
    utilization_cap = stage1.lp.solve().value(umax)

    stage2 = _LegacyBuilder(network, path_sets)
    cap = utilization_cap * (1.0 + 1e-6) + 1e-9
    for key, load_expr in stage2.load_exprs.items():
        capacity_units = network.link(*key).capacity_bps / stage2.capacity_unit
        stage2.lp.add_constraint(load_expr, "<=", capacity_units * cap)
    stage2.lp.minimize(stage2.delay_objective())
    solution = stage2.lp.solve()
    return stage2.extract_fractions(solution), utilization_cap


def _paper_case(gts):
    """A figs-4/16-style case: K=10 path sets over a paper workload."""
    tm = loaded_gts_tm(gts)
    cache = KspCache(gts)
    return {
        agg: list(cache.get(agg.src, agg.dst, 10)) for agg in tm.aggregates()
    }


@pytest.fixture(autouse=True)
def _fresh_structure_cache():
    clear_structure_cache()
    yield
    set_structure_cache_enabled(True)
    clear_structure_cache()


# ----------------------------------------------------------------------
# Byte-identity properties
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_latency_matches_legacy_exactly(self, gts):
        path_sets = _paper_case(gts)
        ref_fracs, ref_overload, ref_omax, ref_obj = _legacy_latency(
            gts, path_sets
        )
        result = solve_latency_lp(gts, path_sets)
        assert result.fractions == ref_fracs
        assert result.link_overload == ref_overload
        assert result.max_overload == ref_omax
        assert result.objective == ref_obj

    def test_minmax_matches_legacy_exactly(self, gts):
        path_sets = _paper_case(gts)
        ref_fracs, ref_cap = _legacy_minmax(gts, path_sets)
        result, cap = solve_minmax_lp(gts, path_sets)
        assert result.fractions == ref_fracs
        assert cap == ref_cap

    def test_structure_cache_changes_nothing(self, gts):
        path_sets = _paper_case(gts)
        set_structure_cache_enabled(False)
        cold = solve_latency_lp(gts, path_sets)
        set_structure_cache_enabled(True)
        clear_structure_cache()
        miss = solve_latency_lp(gts, path_sets)  # populates the cache
        hit = solve_latency_lp(gts, path_sets)  # warm structure
        for warm in (miss, hit):
            assert warm.fractions == cold.fractions
            assert warm.link_overload == cold.link_overload
            assert warm.max_overload == cold.max_overload
            assert warm.objective == cold.objective

    def test_shared_builder_warm_equals_cold(self, gts):
        path_sets = _paper_case(gts)
        set_structure_cache_enabled(False)
        cold = solve_minmax_lp(gts, path_sets)
        set_structure_cache_enabled(True)
        warm = solve_minmax_lp(gts, path_sets)
        assert warm[0].fractions == cold[0].fractions
        assert warm[1] == cold[1]

    @pytest.mark.parametrize("backend", available_backends())
    def test_backends_bit_identical(self, gts, backend, monkeypatch):
        path_sets = _paper_case(gts)
        monkeypatch.setenv(BACKEND_ENV, "scipy")
        reference = solve_latency_lp(gts, path_sets)
        clear_structure_cache()
        monkeypatch.setenv(BACKEND_ENV, backend)
        other = solve_latency_lp(gts, path_sets)
        assert other.fractions == reference.fractions
        assert other.objective == reference.objective

    def test_toy_latency_matches_legacy(self, diamond):
        agg = Aggregate("s", "t", Gbps(20))
        path_sets = {agg: [("s", "x", "t"), ("s", "y", "t")]}
        ref_fracs, ref_overload, ref_omax, ref_obj = _legacy_latency(
            diamond, path_sets
        )
        result = solve_latency_lp(diamond, path_sets)
        assert result.fractions == ref_fracs
        assert result.link_overload == ref_overload
        assert result.max_overload == ref_omax
        assert result.objective == ref_obj


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestBackends:
    def test_resolve_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() in ("scipy", "highs")
        assert resolve_backend("scipy") == "scipy"
        monkeypatch.setenv(BACKEND_ENV, "scipy")
        assert resolve_backend() == "scipy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown LP backend"):
            resolve_backend("gurobi")

    def test_available_backends_always_has_scipy(self):
        assert "scipy" in available_backends()

    @pytest.mark.skipif(
        "highs" in available_backends(), reason="highspy installed"
    )
    def test_explicit_highs_without_package_errors(self):
        with pytest.raises(RuntimeError, match="highspy"):
            resolve_backend("highs")


# ----------------------------------------------------------------------
# CompiledLP
# ----------------------------------------------------------------------
def _small_lp():
    """min x + 2y  s.t.  x + y >= 2,  y <= 4,  0 <= x,y."""
    lp = LinearProgram()
    x = lp.variable("x")
    y = lp.variable("y")
    lp.add_constraint(LinExpr({x: 1.0, y: 1.0}), ">=", 2.0)
    lp.add_constraint(LinExpr({y: 1.0}), "<=", 4.0)
    lp.minimize(LinExpr({x: 1.0, y: 2.0}))
    return lp, x, y


class TestCompiledLP:
    def test_compile_once_solve_many(self):
        lp, x, y = _small_lp()
        compiled = lp.compile()
        assert not compiled.warm
        first = compiled.solve()
        assert compiled.warm
        assert first.value(x) == pytest.approx(2.0)
        again = compiled.solve()  # warm repeat: identical
        assert again.x.tolist() == first.x.tolist()
        assert again.objective == first.objective

    def test_set_rhs_keeps_warm_state(self):
        lp, x, y = _small_lp()
        compiled = lp.compile()
        compiled.solve()
        compiled.set_rhs([0], [6.0])  # x + y >= 6 now
        assert compiled.warm
        moved = compiled.solve()
        assert moved.value(x) == pytest.approx(6.0)

    def test_set_objective_and_bounds(self):
        lp, x, y = _small_lp()
        compiled = lp.compile()
        compiled.set_objective(None, [2.0, 1.0])  # now prefer y
        compiled.set_variable_bounds([1], upper=1.5)
        solution = compiled.solve()
        assert solution.value(y) == pytest.approx(1.5)
        assert solution.value(x) == pytest.approx(0.5)

    def test_scale_columns_invalidates_warmth(self):
        lp, x, y = _small_lp()
        compiled = lp.compile()
        compiled.solve()
        compiled.scale_columns([0], [2.0])  # 2x + y >= 2
        assert not compiled.warm
        solution = compiled.solve()
        assert solution.value(x) == pytest.approx(1.0)

    def test_add_rows_and_columns(self):
        lp, x, y = _small_lp()
        compiled = lp.compile()
        compiled.solve()
        compiled.add_rows([1.0], [0], [0], ">=", [1.0])  # x >= 1
        assert not compiled.warm
        assert compiled.n_rows == 3
        solution = compiled.solve()
        assert solution.value(x) == pytest.approx(2.0)
        # A new column that relaxes the >= row with zero cost: unbounded
        # usefulness is capped by its upper bound.
        z = compiled.add_columns(
            1, lower=0.0, upper=1.0, objective=0.0,
            data=[1.0], rows=[0], cols=[0],
        )
        assert z == 2
        assert compiled.n_variables == 3
        solution = compiled.solve()
        assert solution.x[z] == pytest.approx(1.0)
        assert solution.value(x) == pytest.approx(1.0)

    def test_bulk_builder_matches_scalar(self):
        scalar, x, y = _small_lp()
        bulk = LinearProgram()
        start = bulk.add_variables(2)
        bulk.add_rows(
            [1.0, 1.0, 1.0], [0, 0, 1], [start, start + 1, start + 1],
            [">=", "<="], [2.0, 4.0],
        )
        bulk.minimize_coefficients([1.0, 2.0])
        a, b = scalar.solve(), bulk.solve()
        assert a.x.tolist() == b.x.tolist()
        assert a.objective == b.objective

    def test_infeasible_and_unbounded(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=1.0)
        lp.add_constraint(LinExpr({x: 1.0}), ">=", 2.0)
        lp.minimize(LinExpr({x: 1.0}))
        with pytest.raises(InfeasibleError):
            lp.solve()
        free = LinearProgram()
        x = free.variable("x")
        free.minimize(LinExpr({x: -1.0}))
        with pytest.raises(UnboundedError):
            free.solve()

    def test_objective_required(self):
        lp = LinearProgram()
        lp.variable("x")
        with pytest.raises(ValueError, match="no objective"):
            lp.solve()

    def test_solution_values_vectorized(self):
        lp, x, y = _small_lp()
        solution = lp.solve()
        assert solution.values([y, x]) == [
            solution.value(y), solution.value(x),
        ]
        assert solution.values([]) == []

    def test_from_coo_drops_exact_zeros(self):
        compiled = CompiledLP.from_coo(
            2,
            np.array([1.0, 0.0, 1.0]),
            np.array([0, 0, 1]),
            np.array([0, 1, 1]),
            np.full(2, 0, dtype=np.int8),
            np.array([1.0, 1.0]),
            np.array([-1.0, -1.0]),
            np.zeros(2),
            np.full(2, np.inf),
        )
        assert compiled._a.nnz == 2


# ----------------------------------------------------------------------
# Approximate fast path
# ----------------------------------------------------------------------
class TestApprox:
    def test_bounds_bracket_exact(self, gts):
        path_sets = _paper_case(gts)
        _, exact_cap = solve_minmax_lp(gts, path_sets)
        result, ub = solve_minmax_approx(gts, path_sets, target_gap=0.05)
        assert result.utilization_lower_bound - 1e-9 <= exact_cap
        assert exact_cap <= result.utilization_upper_bound + 1e-9
        assert result.utilization_upper_bound == ub
        assert result.certified_gap >= 0.0
        assert math.isfinite(result.certified_gap)
        assert result.iterations >= 1

    def test_gap_definition_holds(self, diamond):
        agg = Aggregate("s", "t", Gbps(10))
        path_sets = {agg: [("s", "x", "t"), ("s", "y", "t")]}
        result, _ = solve_minmax_approx(diamond, path_sets, target_gap=0.01)
        lb = result.utilization_lower_bound
        ub = result.utilization_upper_bound
        assert result.certified_gap == (ub - lb) / lb

    def test_deterministic(self, gts):
        path_sets = _paper_case(gts)
        first, _ = solve_minmax_approx(gts, path_sets)
        second, _ = solve_minmax_approx(gts, path_sets)
        assert first.fractions == second.fractions
        assert first.certified_gap == second.certified_gap
        assert first.iterations == second.iterations

    def test_target_gap_validated(self, diamond):
        agg = Aggregate("s", "t", Gbps(1))
        with pytest.raises(ValueError, match="target_gap"):
            solve_minmax_approx(
                diamond, {agg: [("s", "x", "t")]}, target_gap=0.0
            )

    def test_fractions_are_a_valid_placement(self, gts):
        path_sets = _paper_case(gts)
        result, _ = solve_minmax_approx(gts, path_sets)
        for agg, splits in result.fractions.items():
            total = sum(fraction for _, fraction in splits)
            assert total == pytest.approx(1.0)
            assert all(fraction >= -1e-12 for _, fraction in splits)


# ----------------------------------------------------------------------
# Scheme plumbing
# ----------------------------------------------------------------------
class TestSchemeIntegration:
    def test_minmax_approx_params_validated(self):
        with pytest.raises(ValueError, match="approx_gap"):
            MinMaxRouting(k=10, approx_gap=-0.1)
        with pytest.raises(ValueError, match="exact"):
            MinMaxRouting(approx_gap=0.05)  # full MinMax stays exact

    def test_minmax_approx_name_and_certificate(self, gts, gts_tm):
        scheme = MinMaxRouting(k=10, approx_gap=0.05, cache=KspCache(gts))
        assert scheme.name == "MinMaxK10~0.05"
        scheme.place(gts, gts_tm)
        assert scheme.last_certified_gap is not None
        lb, ub = scheme.last_utilization_bounds
        assert lb <= ub

    def test_registry_builds_approx_spec(self, gts, gts_tm):
        from repro.experiments.spec import SchemeSpec
        from repro.experiments.workloads import NetworkWorkload

        spec = SchemeSpec("MinMaxK10Approx", {"approx_gap": 0.1})
        item = NetworkWorkload(
            network=gts, llpd=0.0, matrices=[gts_tm], cache=KspCache(gts)
        )
        scheme = spec(item)
        assert isinstance(scheme, MinMaxRouting)
        assert scheme.approx_gap == 0.1

"""Tests for the Internet-scale topology ingestion layer."""

import json

import pytest

from repro.net import io
from repro.net.graph import Link, Network, Node
from repro.net.ingest import (
    DEFAULT_CAPACITY_BPS,
    MIN_LINK_DELAY_S,
    degree_histogram,
    distances_jsonable,
    from_distances_json,
    load_distances,
    network_from_distances,
    synthesize_internet_like,
    to_distances_json,
)
from repro.net.paths import network_signature
from repro.net.units import Gbps, ms

PAYLOAD = {
    "name": "toy",
    "distances": {
        "ams": {"fra": 360.0, "lon": 357.0},
        "fra": {"lon": 634.0},
    },
    "bandwidth": {"ams": {"fra": 40e9}},
}


class TestDistancesFormat:
    def test_parses_duplex_links(self):
        net = network_from_distances(PAYLOAD)
        assert net.num_nodes == 3
        assert net.num_links == 6  # three duplex links
        assert net.link("ams", "fra").capacity_bps == 40e9
        assert net.link("fra", "ams").capacity_bps == 40e9
        assert net.link("ams", "lon").capacity_bps == DEFAULT_CAPACITY_BPS

    def test_delay_from_distance(self):
        net = network_from_distances(PAYLOAD)
        # Propagation delay over 360 km of fiber at the default route
        # factor: well above the floor, deterministic.
        delay = net.link("ams", "fra").delay_s
        assert delay >= MIN_LINK_DELAY_S
        assert delay == net.link("fra", "ams").delay_s
        # Longer distance, longer delay.
        assert net.link("fra", "lon").delay_s > delay

    def test_minimum_delay_floor(self):
        payload = {"name": "close", "distances": {"a": {"b": 0.001}}}
        net = network_from_distances(payload)
        assert net.link("a", "b").delay_s == MIN_LINK_DELAY_S

    def test_conflicting_duplex_distance_rejected(self):
        payload = {
            "name": "bad",
            "distances": {"a": {"b": 100.0}, "b": {"a": 200.0}},
        }
        with pytest.raises(ValueError):
            network_from_distances(payload)

    def test_round_trip_is_signature_equal(self):
        net = network_from_distances(PAYLOAD)
        again = from_distances_json(to_distances_json(net), name=net.name)
        assert network_signature(again) == network_signature(net)

    def test_synthesized_round_trip_is_signature_equal(self):
        net = synthesize_internet_like(80, seed=6)
        again = from_distances_json(to_distances_json(net), name=net.name)
        assert network_signature(again) == network_signature(net)

    def test_jsonable_rejects_asymmetric_networks(self):
        net = Network("oneway")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        net.add_link(Link("a", "b", Gbps(1), ms(1)))
        with pytest.raises(ValueError):
            distances_jsonable(net)

    def test_load_distances_names_after_file_stem(self, tmp_path):
        path = tmp_path / "tiny-isp.json"
        path.write_text(json.dumps(PAYLOAD | {"name": None}))
        assert load_distances(path).name == "tiny-isp"


class TestIoSniffing:
    def test_load_routes_distances_payloads(self, tmp_path):
        path = tmp_path / "toy.json"
        path.write_text(json.dumps(PAYLOAD))
        net = io.load(str(path))
        assert net.num_nodes == 3

    def test_load_still_reads_repro_format(self, triangle, tmp_path):
        path = tmp_path / "triangle.json"
        io.save(triangle, str(path))
        again = io.load(str(path))
        assert network_signature(again) == network_signature(triangle)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            io.load(str(path))


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_internet_like(150, seed=3)
        b = synthesize_internet_like(150, seed=3)
        assert network_signature(a) == network_signature(b)

    def test_seed_changes_topology(self):
        a = synthesize_internet_like(150, seed=3)
        b = synthesize_internet_like(150, seed=4)
        assert network_signature(a) != network_signature(b)

    def test_connected(self):
        from repro.net.paths import shortest_path_delays

        net = synthesize_internet_like(200, seed=1)
        src = sorted(net.node_names)[0]
        assert len(shortest_path_delays(net, src)) == net.num_nodes - 1

    def test_power_law_shape(self):
        # Heavy-tailed: many low-degree nodes, a few well-connected hubs.
        net = synthesize_internet_like(500, seed=8)
        hist = degree_histogram(net)
        degrees = sorted(hist)
        assert max(degrees) >= 10
        low = sum(count for degree, count in hist.items() if degree <= 4)
        assert low >= net.num_nodes * 0.5

    def test_names_sort_in_construction_order(self):
        net = synthesize_internet_like(120, seed=0)
        names = list(net.node_names)
        assert names == sorted(names)

    def test_nodes_have_coordinates(self):
        net = synthesize_internet_like(60, seed=2)
        for name in net.node_names:
            node = net.node(name)
            assert -90 <= node.lat_deg <= 90
            assert -180 <= node.lon_deg <= 180

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthesize_internet_like(1, seed=0)


class TestIngestCli:
    def test_synth_summary_json(self, capsys):
        from repro.experiments.__main__ import main

        assert (
            main(
                [
                    "ingest",
                    "synth",
                    "--synth-nodes",
                    "60",
                    "--seed",
                    "5",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["nodes"] == 60
        assert summary["signature"]

    def test_file_round_trip_through_cli(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "synth.json"
        assert (
            main(
                [
                    "ingest",
                    "synth",
                    "--synth-nodes",
                    "40",
                    "--seed",
                    "1",
                    "--out",
                    str(out),
                    "--emit",
                    "distances",
                ]
            )
            == 0
        )
        capsys.readouterr()  # drain the text summary of the synth run
        assert main(["ingest", str(out), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["nodes"] == 40
        assert summary["signature"] == network_signature(
            synthesize_internet_like(40, seed=1)
        )

    def test_missing_target_is_usage_error(self):
        from repro.experiments.__main__ import main

        assert main(["ingest"]) == 2

    def test_unreadable_file_is_runtime_error(self, tmp_path):
        from repro.experiments.__main__ import main

        assert main(["ingest", str(tmp_path / "missing.json")]) == 1

"""Tests for the picklable scheme-spec registry and spawn-pool parity."""

import json
import pickle

import pytest

from repro.experiments.engine import ExperimentEngine
from repro.experiments.spec import (
    SchemeSpec,
    UnknownSchemeError,
    build_scheme,
    is_spawn_safe,
    register_scheme,
    registered_schemes,
)
from repro.experiments.workloads import build_zoo_workload
from repro.routing import (
    B4Routing,
    EcmpRouting,
    LatencyOptimalRouting,
    LinkBasedOptimalRouting,
    MinMaxRouting,
    MplsTeRouting,
    ShortestPathRouting,
)


@pytest.fixture(scope="module")
def workload():
    return build_zoo_workload(
        n_networks=4, n_matrices=1, seed=3, include_named=False
    )


class TestRegistry:
    def test_covers_every_paper_scheme(self):
        names = set(registered_schemes())
        assert {
            "SP", "ECMP", "MPLS-TE", "B4", "MinMax", "MinMaxK10", "LDR",
            "LatencyOptimal", "LinkBased",
        } <= names

    @pytest.mark.parametrize(
        "name,params,cls",
        [
            ("SP", {}, ShortestPathRouting),
            ("ECMP", {"max_paths": 8}, EcmpRouting),
            ("MPLS-TE", {"headroom": 0.1}, MplsTeRouting),
            ("B4", {"headroom": 0.1}, B4Routing),
            ("MinMax", {}, MinMaxRouting),
            ("MinMaxK10", {}, MinMaxRouting),
            ("LDR", {"headroom": 0.1}, LatencyOptimalRouting),
            ("LinkBased", {}, LinkBasedOptimalRouting),
        ],
    )
    def test_specs_build_the_right_scheme(self, workload, name, params, cls):
        item = workload.networks[0]
        scheme = SchemeSpec(name, params)(item)
        assert isinstance(scheme, cls)

    def test_built_schemes_share_the_item_cache(self, workload):
        item = workload.networks[0]
        assert SchemeSpec("B4")(item)._cache is item.cache
        assert SchemeSpec("LDR")(item)._cache is item.cache

    def test_minmax_k10_matches_explicit_k(self, workload):
        item = workload.networks[0]
        assert SchemeSpec("MinMaxK10")(item).k == 10

    def test_unknown_scheme_raises(self, workload):
        with pytest.raises(UnknownSchemeError):
            build_scheme(SchemeSpec("NoSuchScheme"), workload.networks[0])

    def test_unknown_param_raises_type_error(self, workload):
        with pytest.raises(TypeError):
            SchemeSpec("SP", {"headrom": 0.1})(workload.networks[0])

    def test_register_scheme_decorator(self, workload):
        @register_scheme("TestOnlySP")
        def _build(item):
            return ShortestPathRouting(cache=item.cache)

        try:
            assert isinstance(
                SchemeSpec("TestOnlySP")(workload.networks[0]),
                ShortestPathRouting,
            )
        finally:
            from repro.experiments import spec as spec_module

            spec_module._REGISTRY.pop("TestOnlySP", None)


class TestRoundTrip:
    def test_pickle_round_trip(self):
        spec = SchemeSpec("LDR", {"headroom": 0.11, "max_paths": 40})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.params == {"headroom": 0.11, "max_paths": 40}

    def test_json_round_trip(self):
        spec = SchemeSpec("MinMax", {"k": 10})
        payload = json.loads(json.dumps(spec.to_jsonable()))
        assert SchemeSpec.from_jsonable(payload) == spec

    def test_json_round_trip_defaults_params(self):
        assert SchemeSpec.from_jsonable({"scheme": "SP"}) == SchemeSpec("SP")

    def test_from_jsonable_requires_scheme(self):
        with pytest.raises(ValueError):
            SchemeSpec.from_jsonable({"params": {}})

    def test_pickled_spec_still_builds(self, workload):
        clone = pickle.loads(pickle.dumps(SchemeSpec("SP")))
        assert isinstance(
            clone(workload.networks[0]), ShortestPathRouting
        )

    def test_spawn_safety_classification(self):
        assert is_spawn_safe(SchemeSpec("SP"))
        assert not is_spawn_safe(lambda item: ShortestPathRouting(item.cache))


class TestSpawnPool:
    def test_spawn_pool_matches_serial_and_fork(self, workload, monkeypatch):
        import multiprocessing

        spec = SchemeSpec("SP")
        serial = ExperimentEngine(n_workers=1).run(spec, workload)
        fork = ExperimentEngine(n_workers=2).run(spec, workload)
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        spawn = ExperimentEngine(n_workers=2).run(spec, workload)
        assert spawn.outcomes == serial.outcomes
        assert fork.outcomes == serial.outcomes

    def test_spawn_pool_uses_persistent_caches(self, workload, monkeypatch, tmp_path):
        import multiprocessing

        spec = SchemeSpec("SP")
        first = ExperimentEngine(n_workers=1, cache_dir=tmp_path).run(
            spec, workload
        )
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        second = ExperimentEngine(n_workers=2, cache_dir=tmp_path).run(
            spec, workload
        )
        assert second.outcomes == first.outcomes
        assert all(r.paths_preloaded > 0 for r in second.results)

    def test_closure_without_fork_warns_and_runs_serial(
        self, workload, monkeypatch, caplog
    ):
        import logging
        import multiprocessing

        factory = lambda item: ShortestPathRouting(item.cache)
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            report = ExperimentEngine(n_workers=4).run(factory, workload)
        assert any(
            "not a picklable SchemeSpec" in record.message
            for record in caplog.records
        )
        assert report.outcomes == ExperimentEngine(n_workers=1).run(
            factory, workload
        ).outcomes

    def test_no_start_method_at_all_warns_and_runs_serial(
        self, workload, monkeypatch, caplog
    ):
        import logging
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: []
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            report = ExperimentEngine(n_workers=4).run(
                SchemeSpec("SP"), workload
            )
        assert any(
            "no usable multiprocessing" in record.message
            for record in caplog.records
        )
        assert len(report.outcomes) == 4


class TestFiguresUseSpecs:
    def test_scheme_factories_are_specs(self):
        from repro.experiments.figures import scheme_factories

        factories = scheme_factories(headroom=0.1)
        assert set(factories) == {"B4", "LDR", "MinMax", "MinMaxK10"}
        for factory in factories.values():
            assert isinstance(factory, SchemeSpec)
            assert is_spawn_safe(factory)
            pickle.dumps(factory)

    def test_factories_match_legacy_closures(self, workload):
        from repro.experiments.figures import scheme_factories

        item = workload.networks[0]
        built = {
            name: factory(item)
            for name, factory in scheme_factories(headroom=0.05).items()
        }
        assert isinstance(built["B4"], B4Routing)
        assert built["B4"].headroom == 0.05
        assert isinstance(built["LDR"], LatencyOptimalRouting)
        assert built["LDR"].headroom == 0.05
        assert isinstance(built["MinMax"], MinMaxRouting)
        assert built["MinMax"].k is None
        assert built["MinMaxK10"].k == 10

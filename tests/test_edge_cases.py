"""Edge cases across the library: degenerate networks and inputs."""

import numpy as np
import pytest

from repro.net.graph import Link, Network, Node
from repro.net.units import Gbps, ms
from repro.routing import (
    B4Routing,
    LatencyOptimalRouting,
    MinMaxRouting,
    ShortestPathRouting,
)
from repro.routing.base import Placement
from repro.tm import TrafficMatrix, gravity_traffic_matrix, max_scale_factor


def two_node_network() -> Network:
    net = Network("pair")
    net.add_node(Node("a"))
    net.add_node(Node("b"))
    net.add_duplex_link("a", "b", Gbps(10), ms(1))
    return net


class TestDegenerateNetworks:
    def test_two_node_routing(self):
        net = two_node_network()
        tm = TrafficMatrix({("a", "b"): Gbps(3)})
        for scheme in (ShortestPathRouting(), B4Routing(),
                       MinMaxRouting(), LatencyOptimalRouting()):
            placement = scheme.place(net, tm)
            agg = placement.aggregates[0]
            assert placement.paths_for(agg)[0].path == ("a", "b")
            assert placement.total_latency_stretch() == pytest.approx(1.0)

    def test_two_node_scale_factor(self):
        net = two_node_network()
        tm = TrafficMatrix({("a", "b"): Gbps(5)})
        assert max_scale_factor(net, tm) == pytest.approx(2.0)

    def test_zero_delay_links_route(self):
        net = Network("metro")
        for name in "abc":
            net.add_node(Node(name))
        net.add_duplex_link("a", "b", Gbps(10), 0.0)
        net.add_duplex_link("b", "c", Gbps(10), 0.0)
        tm = TrafficMatrix({("a", "c"): Gbps(1)})
        placement = LatencyOptimalRouting().place(net, tm)
        assert placement.fits_all_traffic
        # Zero shortest delay: stretch degrades gracefully to 1.
        assert placement.total_latency_stretch() == pytest.approx(1.0)

    def test_asymmetric_directed_network(self):
        """One-way links: routing must respect direction."""
        net = Network("one-way-ring")
        for name in "abc":
            net.add_node(Node(name))
        net.add_link(Link("a", "b", Gbps(10), ms(1)))
        net.add_link(Link("b", "c", Gbps(10), ms(1)))
        net.add_link(Link("c", "a", Gbps(10), ms(1)))
        tm = TrafficMatrix({("b", "a"): Gbps(1)})
        placement = ShortestPathRouting().place(net, tm)
        agg = placement.aggregates[0]
        assert placement.paths_for(agg)[0].path == ("b", "c", "a")


class TestEmptyAndTinyInputs:
    def test_empty_placement_metrics(self, triangle):
        placement = Placement(triangle, {})
        assert placement.congested_pair_fraction() == 0.0
        assert placement.total_latency_stretch() == pytest.approx(1.0)
        assert placement.max_path_stretch() == pytest.approx(1.0)
        assert placement.max_utilization() == 0.0
        assert placement.total_weighted_delay_s() == 0.0
        assert placement.fits_all_traffic

    def test_single_aggregate_gravity(self):
        net = two_node_network()
        tm = gravity_traffic_matrix(net, np.random.default_rng(0))
        assert len(tm) == 2  # both directions

    def test_minute_demand_routes(self, gts):
        # Demands far below a bit per second are dropped as trivial.
        tm = TrafficMatrix({("n0-0", "n3-5"): 0.5})
        assert tm.aggregates() == []

    def test_tiny_but_nontrivial_demand(self, gts):
        tm = TrafficMatrix({("n0-0", "n3-5"): 10.0})
        placement = LatencyOptimalRouting().place(gts, tm)
        assert placement.fits_all_traffic
        assert placement.max_utilization() < 1e-8


class TestHeadroomExtremes:
    def test_tiny_headroom_equivalent_to_none(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(5)})
        none = LatencyOptimalRouting().place(diamond, tm)
        tiny = LatencyOptimalRouting(headroom=1e-6).place(diamond, tm)
        assert tiny.total_latency_stretch() == pytest.approx(
            none.total_latency_stretch()
        )

    def test_huge_headroom_forces_overload_report(self, diamond):
        # 95% headroom leaves 2.5G of scaled s-t capacity for 5G demand.
        tm = TrafficMatrix({("s", "t"): Gbps(5)})
        placement = LatencyOptimalRouting(headroom=0.95).place(diamond, tm)
        # Real capacities are never exceeded even though the optimizer's
        # scaled view was overloaded.
        assert placement.max_utilization() <= 1.0
        assert not placement.fits_all_traffic

"""Tests for LDR-objective-guided growth (paper §8's better growth metric)."""

import numpy as np
import pytest

from repro.net.mutate import grow_by_ldr_objective, grow_by_llpd
from repro.net.zoo import ring_network
from repro.routing import LatencyOptimalRouting
from tests.conftest import loaded_gts_tm


@pytest.fixture(scope="module")
def ring_case():
    rng = np.random.default_rng(8)
    network = ring_network(10, rng)
    tm = loaded_gts_tm(network, seed=2)
    return network, tm


class TestGrowByLdrObjective:
    def test_reduces_realized_delay(self, ring_case):
        network, tm = ring_case
        before = LatencyOptimalRouting().place(network, tm)
        grown, added = grow_by_ldr_objective(
            network, tm, growth_fraction=0.2, max_candidates=10
        )
        assert added
        after = LatencyOptimalRouting().place(grown, tm)
        assert (
            after.total_weighted_delay_s()
            < before.total_weighted_delay_s() - 1e-9
        )

    def test_no_useless_links_added(self, triangle, triangle_tm):
        # A clique cannot grow; the greedy must stop cleanly.
        grown, added = grow_by_ldr_objective(
            triangle, triangle_tm, growth_fraction=0.5
        )
        assert added == []
        assert grown.num_links == triangle.num_links

    def test_beats_or_matches_llpd_growth_on_delay(self, ring_case):
        """The §8 claim: the LDR objective targets realized delay
        directly, so it cannot do worse on that metric than LLPD-guided
        growth with the same link budget."""
        from repro.core.metrics import llpd

        network, tm = ring_case
        by_objective, _ = grow_by_ldr_objective(
            network, tm, growth_fraction=0.2, max_candidates=10
        )
        by_llpd, _ = grow_by_llpd(
            network, llpd, growth_fraction=0.2, max_candidates=10
        )
        delay_objective = (
            LatencyOptimalRouting().place(by_objective, tm).total_weighted_delay_s()
        )
        delay_llpd = (
            LatencyOptimalRouting().place(by_llpd, tm).total_weighted_delay_s()
        )
        assert delay_objective <= delay_llpd + 1e-9

    def test_invalid_fraction(self, triangle, triangle_tm):
        with pytest.raises(ValueError):
            grow_by_ldr_objective(triangle, triangle_tm, growth_fraction=0.0)

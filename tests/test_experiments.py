"""Tests for the experiment harness (workloads, runner, figures, render)."""

import numpy as np
import pytest

from repro.experiments.render import render_cdf, render_scatter_summary, render_series
from repro.experiments.runner import (
    SchemeOutcome,
    evaluate_scheme,
    per_network_quantiles,
)
from repro.experiments.workloads import (
    NetworkWorkload,
    ZooWorkload,
    build_traffic_matrices,
    build_zoo_workload,
)
from repro.routing import ShortestPathRouting
from repro.tm.scale import max_scale_factor


@pytest.fixture(scope="module")
def tiny_workload():
    return build_zoo_workload(
        n_networks=4, n_matrices=2, seed=2, include_named=False
    )


class TestWorkloads:
    def test_build_matrices_hit_target_load(self, gts, rng):
        matrices = build_traffic_matrices(gts, 2, rng, locality=1.0,
                                          growth_factor=1.3)
        assert len(matrices) == 2
        for tm in matrices:
            assert max_scale_factor(gts, tm) == pytest.approx(1.3, rel=1e-3)

    def test_workload_structure(self, tiny_workload):
        assert len(tiny_workload.networks) == 4
        for item in tiny_workload.networks:
            assert 0.0 <= item.llpd <= 1.0
            assert len(item.matrices) == 2
            assert item.cache is not None

    def test_sorted_by_llpd(self, tiny_workload):
        values = [w.llpd for w in tiny_workload.sorted_by_llpd()]
        assert values == sorted(values)

    def test_deterministic(self):
        a = build_zoo_workload(n_networks=3, n_matrices=1, seed=5,
                               include_named=False)
        b = build_zoo_workload(n_networks=3, n_matrices=1, seed=5,
                               include_named=False)
        assert [w.llpd for w in a.networks] == [w.llpd for w in b.networks]


class TestRunner:
    def test_evaluate_scheme_outcome_count(self, tiny_workload):
        outcomes = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache), tiny_workload
        )
        assert len(outcomes) == 4 * 2
        for outcome in outcomes:
            assert 0.0 <= outcome.congested_fraction <= 1.0
            assert outcome.latency_stretch >= 1.0 - 1e-9
            # SP routing is on shortest paths by construction.
            assert outcome.latency_stretch == pytest.approx(1.0)

    def test_matrices_per_network_limits(self, tiny_workload):
        outcomes = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache),
            tiny_workload,
            matrices_per_network=1,
        )
        assert len(outcomes) == 4

    def test_quantiles_sorted_by_llpd(self, tiny_workload):
        outcomes = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache), tiny_workload
        )
        points = per_network_quantiles(outcomes, "congested_fraction", 0.5)
        assert len(points) == 4
        xs = [x for x, _ in points]
        assert xs == sorted(xs)

    def test_quantile_validation(self, tiny_workload):
        outcomes = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache), tiny_workload
        )
        with pytest.raises(ValueError):
            per_network_quantiles(outcomes, "congested_fraction", 1.5)

    def test_outcomes_carry_unique_network_ids(self, tiny_workload):
        outcomes = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache), tiny_workload
        )
        ids = {o.network_id for o in outcomes}
        assert len(ids) == len(tiny_workload.networks)
        assert all(o.network_id for o in outcomes)

    def test_duplicate_network_names_not_merged(self):
        """Two networks sharing a name must stay two points — merging them
        would mislabel the merged point with the first one's LLPD."""

        def outcome(llpd, congestion, network_id):
            return SchemeOutcome(
                network_name="zoo-dup",
                llpd=llpd,
                congested_fraction=congestion,
                latency_stretch=1.0,
                max_path_stretch=1.0,
                max_utilization=0.5,
                fits=True,
                network_id=network_id,
            )

        outcomes = [
            outcome(0.2, 0.0, "0:zoo-dup"),
            outcome(0.2, 0.2, "0:zoo-dup"),
            outcome(0.8, 1.0, "1:zoo-dup"),
            outcome(0.8, 0.8, "1:zoo-dup"),
        ]
        points = per_network_quantiles(outcomes, "congested_fraction", 0.5)
        assert points == [(0.2, 0.1), (0.8, 0.9)]

    def test_duplicate_names_without_ids_fall_back_to_llpd(self):
        """Hand-built outcomes (no network_id) still split by llpd."""
        outcomes = [
            SchemeOutcome("zoo-dup", llpd, 0.0, 1.0, 1.0, 0.5, True)
            for llpd in (0.3, 0.7)
        ]
        points = per_network_quantiles(outcomes, "congested_fraction", 0.5)
        assert [x for x, _ in points] == [0.3, 0.7]


class TestFigures:
    def test_fig01(self, gts):
        from repro.experiments.figures import fig01_apa_cdfs

        curves = fig01_apa_cdfs([gts])
        assert "gts-like" in curves
        cdf = curves["gts-like"]
        assert (np.diff(cdf) >= 0).all()

    def test_fig03_shape(self, tiny_workload):
        from repro.experiments.figures import fig03_sp_congestion

        result = fig03_sp_congestion(tiny_workload)
        assert set(result) == {"median", "p90"}
        for _, fraction in result["median"]:
            assert 0.0 <= fraction <= 1.0
        # p90 dominates the median pointwise.
        for (_, med), (_, p90) in zip(result["median"], result["p90"]):
            assert p90 >= med - 1e-12

    def test_fig07(self, gts, gts_tm):
        from repro.experiments.figures import fig07_utilization_cdf

        result = fig07_utilization_cdf(gts, gts_tm)
        optimal = result["latency_optimal"]
        minmax = result["minmax"]
        assert optimal.max() > minmax.max()  # optimal lives on the edge
        assert minmax.max() == pytest.approx(1 / 1.3, rel=0.02)

    def test_fig09(self, rng):
        from repro.experiments.figures import fig09_prediction_ratios
        from repro.traces import trace_ensemble

        traces = trace_ensemble(3, rng, minutes=8, sample_ms=100)
        ratios = fig09_prediction_ratios(traces, samples_per_minute=600)
        assert len(ratios) == 3 * 7
        assert (np.diff(ratios) >= 0).all()
        assert np.mean(ratios > 1.0) < 0.05

    def test_fig10(self, rng):
        from repro.experiments.figures import fig10_sigma_scatter
        from repro.traces import trace_ensemble

        traces = trace_ensemble(2, rng, minutes=5, sample_ms=10)
        points = fig10_sigma_scatter(traces, samples_per_minute=6000)
        assert len(points) == 2 * 4
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        assert np.corrcoef(xs, ys)[0, 1] > 0.5

    def test_scheme_factories_share_cache(self, tiny_workload):
        from repro.experiments.figures import scheme_factories

        item = tiny_workload.networks[0]
        factories = scheme_factories()
        assert set(factories) == {"B4", "LDR", "MinMax", "MinMaxK10"}
        b4 = factories["B4"](item)
        assert b4._cache is item.cache


class TestRender:
    def test_render_series(self):
        text = render_series(
            "title",
            {"a": [(0.1, 1.0), (0.2, 2.0)], "b": [(0.2, 3.0)]},
            x_label="llpd",
        )
        assert "title" in text
        assert "llpd" in text
        lines = text.splitlines()
        assert len(lines) == 4  # title + header + two x rows

    def test_render_cdf(self):
        text = render_cdf("cdf", [1.0, 2.0, 3.0, 4.0])
        assert "0.50" in text

    def test_render_cdf_empty(self):
        assert "(no data)" in render_cdf("cdf", [])

    def test_render_scatter(self):
        points = [(1.0, 1.1), (2.0, 2.1), (3.0, 2.9)]
        text = render_scatter_summary("scatter", points)
        assert "corr" in text

"""Unit tests for the multiplexing checks (temporal + convolution)."""

import numpy as np
import pytest

from repro.core.multiplexing import (
    check_link_multiplexing,
    exceedance_probability,
    transient_queue_delay_s,
)


class TestTemporalQueue:
    def test_no_queue_under_capacity(self):
        samples = [np.full(10, 4.0), np.full(10, 4.0)]
        assert transient_queue_delay_s(samples, capacity_bps=10.0) == 0.0

    def test_sustained_overload_grows_queue(self):
        samples = [np.full(10, 6.0), np.full(10, 6.0)]
        # 2 b/s of excess for 10 intervals of 0.1 s = 2 bits of queue,
        # drained at 10 b/s -> 0.2 s.
        delay = transient_queue_delay_s(samples, capacity_bps=10.0)
        assert delay == pytest.approx(0.2)

    def test_burst_carries_over(self):
        burst = np.array([20.0, 0.0, 0.0])
        delay = transient_queue_delay_s([burst], capacity_bps=10.0)
        # One interval at +10 b/s -> 1 bit of queue -> 0.1 s drain.
        assert delay == pytest.approx(0.1)

    def test_queue_drains_between_bursts(self):
        trace = np.array([15.0, 5.0, 15.0, 5.0])
        delay = transient_queue_delay_s([trace], capacity_bps=10.0)
        # Queue never exceeds one interval's 0.5 bit excess.
        assert delay == pytest.approx(0.05)

    def test_empty_passes(self):
        assert transient_queue_delay_s([], 10.0) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            transient_queue_delay_s([np.zeros(3), np.zeros(4)], 1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            transient_queue_delay_s([np.zeros(3)], 0.0)


class TestExceedance:
    def test_constant_below_capacity(self):
        samples = [np.full(100, 3.0), np.full(100, 3.0)]
        assert exceedance_probability(samples, capacity_bps=10.0) < 1e-9

    def test_constant_above_capacity(self):
        samples = [np.full(100, 6.0), np.full(100, 6.0)]
        assert exceedance_probability(samples, capacity_bps=10.0) > 0.99

    def test_independent_tail(self):
        """Two aggregates each exceeding 5 with probability 0.1: the sum
        exceeds 10 only when both spike -> probability about 0.01."""
        rng = np.random.default_rng(0)
        a = np.where(rng.random(20000) < 0.1, 6.0, 2.0)
        b = np.where(rng.random(20000) < 0.1, 6.0, 2.0)
        probability = exceedance_probability([a, b], capacity_bps=10.0)
        assert probability == pytest.approx(0.01, rel=0.2)

    def test_matches_direct_convolution(self):
        """FFT result agrees with a brute-force enumeration."""
        rng = np.random.default_rng(7)
        a = rng.uniform(0.0, 5.0, size=400)
        b = rng.uniform(0.0, 5.0, size=400)
        capacity = 7.0
        probability = exceedance_probability([a, b], capacity)
        direct = np.mean(a[:, None] + b[None, :] > capacity)
        assert probability == pytest.approx(direct, abs=0.02)

    def test_empty_zero(self):
        assert exceedance_probability([], 1.0) == 0.0

    def test_all_zero_traffic(self):
        assert exceedance_probability([np.zeros(10)], 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            exceedance_probability([np.ones(4)], 0.0)
        with pytest.raises(ValueError):
            exceedance_probability([np.ones(4)], 1.0, levels=1)


class TestCheckLink:
    def test_peak_filter_short_circuits(self):
        samples = [np.full(600, 1.0), np.full(600, 2.0)]
        check = check_link_multiplexing(samples, capacity_bps=10.0)
        assert check.passed
        assert check.decided_by == "peak-filter"

    def test_temporal_failure(self):
        # Correlated burst: both aggregates spike together far beyond
        # capacity for a sustained period.
        burst = np.concatenate([np.full(100, 10.0), np.full(500, 1.0)])
        check = check_link_multiplexing([burst, burst], capacity_bps=12.0)
        assert not check.passed
        assert check.decided_by == "temporal"
        assert check.queue_delay_s > 0.010

    def test_convolution_pass_for_independent_bursts(self):
        rng = np.random.default_rng(1)
        # Rare independent spikes: temporally fine, statistically fine.
        def trace():
            return np.where(rng.random(600) < 0.001, 8.0, 1.0)

        check = check_link_multiplexing(
            [trace(), trace()], capacity_bps=10.0
        )
        assert check.passed

    def test_convolution_failure(self):
        rng = np.random.default_rng(2)
        # Spikes small enough that an isolated co-spike drains within the
        # queue budget (so the temporal test passes) but frequent enough
        # that the statistical exceedance is far above the threshold.
        def trace():
            return np.where(rng.random(600) < 0.05, 5.4, 3.0)

        check = check_link_multiplexing([trace(), trace()], capacity_bps=10.0)
        assert not check.passed
        assert check.decided_by == "convolution"
        assert check.exceed_probability > 1e-3

    def test_empty_passes(self):
        check = check_link_multiplexing([], capacity_bps=1.0)
        assert check.passed

"""Unit tests for the multiplexing checks (temporal + convolution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiplexing import (
    _pmf,
    check_link_multiplexing,
    exceedance_probability,
    transient_queue_delay_s,
)


def queue_delay_reference(aggregate_samples_bps, capacity_bps, interval_s=0.1):
    """The pre-vectorization per-interval loop, kept as the test oracle."""
    total = np.sum(aggregate_samples_bps, axis=0)
    queue_bits = 0.0
    worst_bits = 0.0
    for excess in (total - capacity_bps) * interval_s:
        queue_bits = max(0.0, queue_bits + excess)
        worst_bits = max(worst_bits, queue_bits)
    return worst_bits / capacity_bps


class TestTemporalQueue:
    def test_no_queue_under_capacity(self):
        samples = [np.full(10, 4.0), np.full(10, 4.0)]
        assert transient_queue_delay_s(samples, capacity_bps=10.0) == 0.0

    def test_sustained_overload_grows_queue(self):
        samples = [np.full(10, 6.0), np.full(10, 6.0)]
        # 2 b/s of excess for 10 intervals of 0.1 s = 2 bits of queue,
        # drained at 10 b/s -> 0.2 s.
        delay = transient_queue_delay_s(samples, capacity_bps=10.0)
        assert delay == pytest.approx(0.2)

    def test_burst_carries_over(self):
        burst = np.array([20.0, 0.0, 0.0])
        delay = transient_queue_delay_s([burst], capacity_bps=10.0)
        # One interval at +10 b/s -> 1 bit of queue -> 0.1 s drain.
        assert delay == pytest.approx(0.1)

    def test_queue_drains_between_bursts(self):
        trace = np.array([15.0, 5.0, 15.0, 5.0])
        delay = transient_queue_delay_s([trace], capacity_bps=10.0)
        # Queue never exceeds one interval's 0.5 bit excess.
        assert delay == pytest.approx(0.05)

    def test_empty_passes(self):
        assert transient_queue_delay_s([], 10.0) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            transient_queue_delay_s([np.zeros(3), np.zeros(4)], 1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            transient_queue_delay_s([np.zeros(3)], 0.0)

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0),
                min_size=1,
                max_size=40,
            ),
            min_size=1,
            max_size=4,
        ),
        capacity=st.floats(min_value=0.5, max_value=40.0),
        interval_s=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_vectorized_matches_loop(self, samples, capacity, interval_s):
        length = min(len(trace) for trace in samples)
        arrays = [np.array(trace[:length]) for trace in samples]
        expected = queue_delay_reference(arrays, capacity, interval_s)
        got = transient_queue_delay_s(arrays, capacity, interval_s)
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)


class TestExceedance:
    def test_constant_below_capacity(self):
        samples = [np.full(100, 3.0), np.full(100, 3.0)]
        assert exceedance_probability(samples, capacity_bps=10.0) < 1e-9

    def test_constant_above_capacity(self):
        samples = [np.full(100, 6.0), np.full(100, 6.0)]
        assert exceedance_probability(samples, capacity_bps=10.0) > 0.99

    def test_independent_tail(self):
        """Two aggregates each exceeding 5 with probability 0.1: the sum
        exceeds 10 only when both spike -> probability about 0.01."""
        rng = np.random.default_rng(0)
        a = np.where(rng.random(20000) < 0.1, 6.0, 2.0)
        b = np.where(rng.random(20000) < 0.1, 6.0, 2.0)
        probability = exceedance_probability([a, b], capacity_bps=10.0)
        assert probability == pytest.approx(0.01, rel=0.2)

    def test_matches_direct_convolution(self):
        """FFT result agrees with a brute-force enumeration."""
        rng = np.random.default_rng(7)
        a = rng.uniform(0.0, 5.0, size=400)
        b = rng.uniform(0.0, 5.0, size=400)
        capacity = 7.0
        probability = exceedance_probability([a, b], capacity)
        direct = np.mean(a[:, None] + b[None, :] > capacity)
        assert probability == pytest.approx(direct, abs=0.02)

    def test_empty_zero(self):
        assert exceedance_probability([], 1.0) == 0.0

    def test_all_zero_traffic(self):
        assert exceedance_probability([np.zeros(10)], 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            exceedance_probability([np.ones(4)], 0.0)
        with pytest.raises(ValueError):
            exceedance_probability([np.ones(4)], 1.0, levels=1)


class TestCheckLink:
    def test_peak_filter_short_circuits(self):
        samples = [np.full(600, 1.0), np.full(600, 2.0)]
        check = check_link_multiplexing(samples, capacity_bps=10.0)
        assert check.passed
        assert check.decided_by == "peak-filter"

    def test_temporal_failure(self):
        # Correlated burst: both aggregates spike together far beyond
        # capacity for a sustained period.
        burst = np.concatenate([np.full(100, 10.0), np.full(500, 1.0)])
        check = check_link_multiplexing([burst, burst], capacity_bps=12.0)
        assert not check.passed
        assert check.decided_by == "temporal"
        assert check.queue_delay_s > 0.010

    def test_convolution_pass_for_independent_bursts(self):
        rng = np.random.default_rng(1)
        # Rare independent spikes: temporally fine, statistically fine.
        def trace():
            return np.where(rng.random(600) < 0.001, 8.0, 1.0)

        check = check_link_multiplexing(
            [trace(), trace()], capacity_bps=10.0
        )
        assert check.passed

    def test_convolution_failure(self):
        rng = np.random.default_rng(2)
        # Spikes small enough that an isolated co-spike drains within the
        # queue budget (so the temporal test passes) but frequent enough
        # that the statistical exceedance is far above the threshold.
        def trace():
            return np.where(rng.random(600) < 0.05, 5.4, 3.0)

        check = check_link_multiplexing([trace(), trace()], capacity_bps=10.0)
        assert not check.passed
        assert check.decided_by == "convolution"
        assert check.exceed_probability > 1e-3

    def test_empty_passes(self):
        check = check_link_multiplexing([], capacity_bps=1.0)
        assert check.passed

    def test_zero_length_samples_rejected(self):
        # window_s would be 0 and the exceedance threshold would divide
        # by it; fail loudly instead.
        with pytest.raises(ValueError):
            check_link_multiplexing([np.array([])], capacity_bps=1.0)


class TestPmf:
    def test_rounds_to_nearest_bin(self):
        # 0.6 of a bin width used to truncate down to bin 0, biasing every
        # rate (and hence the exceedance probability) low.
        pmf = _pmf(np.array([0.6]), bin_width=1.0, n_bins=4)
        assert pmf[1] == 1.0

    def test_rounds_down_below_half(self):
        pmf = _pmf(np.array([0.4]), bin_width=1.0, n_bins=4)
        assert pmf[0] == 1.0

    def test_overflow_clamped_to_last_bin(self):
        pmf = _pmf(np.array([99.0]), bin_width=1.0, n_bins=4)
        assert pmf[3] == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            _pmf(np.array([-1.0]), bin_width=1.0, n_bins=4)

    def test_negative_rate_rejected_via_public_api(self):
        with pytest.raises(ValueError):
            exceedance_probability([np.array([-2.0, 1.0])], capacity_bps=10.0)

"""Tests for the cost model and cost-aware (LPT) scheduling.

Two families of contract: *prediction* (the static predictor ranks by
shape and scheme class deterministically; learned timings replayed from
a result store override it exactly) and *sequencing* (LPT ordering and
makespan partitioning are deterministic, cover every task exactly once,
and never change results — the engine records predicted-vs-actual in
the PlanReport either way).
"""

import numpy as np
import pytest

from repro.experiments.cost import (
    DEFAULT_SCHEME_WEIGHT,
    SCHEME_WEIGHTS,
    CostModel,
    LptScheduler,
    lpt_partition,
    make_scheduler,
    scheme_class,
    static_task_cost,
)
from repro.experiments.plan import (
    EvalPlan,
    InterleaveScheduler,
    Scheduler,
    execute_plan,
)
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import (
    NetworkWorkload,
    build_traffic_matrices,
    build_zoo_workload,
)
from repro.net.zoo import grid_network, ring_network
from repro.routing import ShortestPathRouting


@pytest.fixture(scope="module")
def workload():
    return build_zoo_workload(
        n_networks=4, n_matrices=1, seed=7, include_named=False
    )


def _item(network, n_matrices=1, seed=3):
    rng = np.random.default_rng(seed)
    return NetworkWorkload(
        network=network,
        llpd=0.0,
        matrices=build_traffic_matrices(
            network, n_matrices, rng, locality=1.0, growth_factor=1.3
        ),
    )


@pytest.fixture(scope="module")
def small_item():
    return _item(ring_network(5, np.random.default_rng(1)))


@pytest.fixture(scope="module")
def big_item():
    return _item(grid_network(4, 4, np.random.default_rng(2)))


class TestStaticPredictor:
    def test_bigger_network_costs_more(self, small_item, big_item):
        weight = SCHEME_WEIGHTS["LDR"]
        assert static_task_cost(big_item, None, weight) > static_task_cost(
            small_item, None, weight
        )

    def test_lp_scheme_outweighs_shortest_path(self, small_item):
        model = CostModel()
        sp = model.predict_item(SchemeSpec("SP"), small_item)
        ldr = model.predict_item(SchemeSpec("LDR"), small_item)
        assert ldr > sp

    def test_cost_hint_scales_static_predictions(self, small_item):
        base = static_task_cost(small_item, None, 1.0, cost_hint=1.0)
        assert static_task_cost(
            small_item, None, 1.0, cost_hint=2.0
        ) == pytest.approx(2.0 * base)

    def test_more_matrices_cost_more(self, small_item):
        three = _item(small_item.network, n_matrices=3)
        assert static_task_cost(three, None, 1.0) > static_task_cost(
            three, 1, 1.0
        )

    def test_deterministic(self, big_item):
        model = CostModel()
        spec = SchemeSpec("MinMaxK10")
        assert model.predict_item(spec, big_item) == CostModel().predict_item(
            spec, big_item
        )

    def test_scheme_class_of_spec_and_closure(self):
        assert scheme_class(SchemeSpec("LDR", {"headroom": 0.1})) == "LDR"
        assert scheme_class(lambda item: ShortestPathRouting(item.cache)) is None

    def test_closure_gets_default_weight(self, small_item):
        model = CostModel()
        closure_cost = model.predict_item(
            lambda item: ShortestPathRouting(item.cache), small_item
        )
        assert closure_cost == static_task_cost(
            small_item, None, DEFAULT_SCHEME_WEIGHT
        )


class TestLearnedReplay:
    def test_stored_seconds_replay_exactly(self, workload, tmp_path):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        report = execute_plan(plan, store_dir=tmp_path)

        model = CostModel(store_dir=tmp_path)
        stream = plan.streams["SP"]
        for result in report.results["SP"]:
            assert model.predict(stream, result.index) == result.seconds

    def test_unmatched_scheme_falls_back_to_static(self, workload, tmp_path):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        execute_plan(plan, store_dir=tmp_path)

        model = CostModel(store_dir=tmp_path)
        item = workload.networks[0]
        static = CostModel().predict_item(
            SchemeSpec("LDR"), item, scheme="LDR"
        )
        assert model.predict_item(SchemeSpec("LDR"), item, scheme="LDR") \
            == static

    def test_replay_crosses_workloads_by_network_signature(
        self, workload, tmp_path
    ):
        # A different workload containing the same networks (fewer of
        # them, different signature) still replays the measured times.
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        report = execute_plan(plan, store_dir=tmp_path)

        from repro.experiments.workloads import ZooWorkload

        subset = ZooWorkload(
            networks=[workload.networks[1]],
            locality=workload.locality,
            growth_factor=workload.growth_factor,
        )
        other = EvalPlan()
        other.add("SP", SchemeSpec("SP"), subset)
        model = CostModel(store_dir=tmp_path)
        assert model.predict(other.streams["SP"], 0) \
            == report.results["SP"][1].seconds

    def test_missing_store_dir_is_all_static(self, workload, tmp_path):
        model = CostModel(store_dir=tmp_path / "nonexistent")
        assert model.learned_seconds() == {}


class TestLptPartition:
    def test_every_item_exactly_once(self):
        items = list(range(10))
        costs = [float(i % 4 + 1) for i in items]
        bins = lpt_partition(items, costs, 3)
        flat = sorted(x for b in bins for x in b)
        assert flat == items
        assert len(bins) == 3

    def test_balances_makespan_on_skewed_costs(self):
        # One heavy item + many light ones: contiguous chunks would put
        # the heavy item alongside light ones; LPT isolates it.
        costs = [10.0] + [1.0] * 6
        bins = lpt_partition(list(range(7)), costs, 2)
        loads = sorted(sum(costs[i] for i in b) for b in bins)
        assert loads == [6.0, 10.0]  # optimal split

    def test_never_more_bins_than_items(self):
        bins = lpt_partition([1, 2], [1.0, 1.0], 5)
        assert len(bins) == 2

    def test_empty_items_yield_one_empty_bin(self):
        assert lpt_partition([], [], 3) == [[]]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="at least one bin"):
            lpt_partition([1], [1.0], 0)
        with pytest.raises(ValueError, match="costs"):
            lpt_partition([1, 2], [1.0], 2)

    def test_deterministic_ties(self):
        costs = [1.0] * 6
        assert lpt_partition(list(range(6)), costs, 2) == lpt_partition(
            list(range(6)), costs, 2
        )


class TestLptScheduler:
    def test_orders_longest_predicted_first(self, small_item, big_item):
        from repro.experiments.workloads import ZooWorkload

        workload = ZooWorkload(
            networks=[small_item, big_item],
            locality=1.0,
            growth_factor=1.3,
        )
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("LDR", SchemeSpec("LDR"), workload)
        scheduler = make_scheduler("lpt")
        tasks = plan.tasks(scheduler=scheduler)
        predictions = scheduler.predictions(plan)
        costs = [predictions[(t.stream, t.index)] for t in tasks]
        assert costs == sorted(costs, reverse=True)
        # The heaviest cell is the big network under the LP scheme.
        assert (tasks[0].stream, tasks[0].index) == ("LDR", 1)

    def test_predictions_cover_every_task(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("ECMP", SchemeSpec("ECMP"), workload)
        predictions = make_scheduler("lpt").predictions(plan)
        assert set(predictions) == {
            (t.stream, t.index) for t in plan.tasks()
        }
        assert all(cost > 0 for cost in predictions.values())

    def test_partition_covers_every_task(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("MinMaxK10", SchemeSpec("MinMaxK10"), workload)
        shards = make_scheduler("lpt").partition(plan, 3)
        flat = [task for shard in shards for task in shard]
        assert sorted(
            (str(t.stream), t.index) for t in flat
        ) == sorted((str(t.stream), t.index) for t in plan.tasks())

    def test_make_scheduler_resolution(self):
        assert isinstance(make_scheduler(None), InterleaveScheduler)
        assert isinstance(make_scheduler("interleave"), InterleaveScheduler)
        assert isinstance(make_scheduler("lpt"), LptScheduler)
        passthrough = LptScheduler()
        assert make_scheduler(passthrough) is passthrough
        with pytest.raises(ValueError, match="unknown schedule"):
            make_scheduler("fifo")

    def test_scheduler_base_is_abstract_over_order(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        with pytest.raises(NotImplementedError):
            plan.tasks(scheduler=Scheduler())


class TestEngineCostRecording:
    def test_lpt_run_records_predicted_vs_actual(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        report = execute_plan(plan, scheduler="lpt")
        total = len(workload.networks)
        assert set(report.predicted) == {"SP"}
        assert set(report.predicted["SP"]) == set(range(total))
        rows = report.cost_report()
        assert len(rows) == total
        for key, network_id, predicted, actual, phases in rows:
            assert key == "SP"
            assert predicted > 0 and actual >= 0
            assert network_id
            assert phases == {}  # no trace dir given

    def test_interleave_run_records_no_predictions(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        report = execute_plan(plan)
        assert report.predicted == {}
        assert report.cost_report() == []

    def test_timings_accessors(self, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("ECMP", SchemeSpec("ECMP"), workload)
        report = execute_plan(plan)
        total = len(workload.networks)
        flat = report.timings()
        assert len(flat) == 2 * total
        assert all(
            isinstance(nid, str) and isinstance(seconds, float)
            for nid, seconds in flat
        )
        by_stream = report.timings_by_stream()
        assert set(by_stream) == {"SP", "ECMP"}
        assert [len(v) for v in by_stream.values()] == [total, total]
        assert sum(s for _, s in flat) == pytest.approx(report.total_seconds)

    def test_negative_cost_hint_rejected(self, workload):
        plan = EvalPlan()
        with pytest.raises(ValueError, match="cost_hint"):
            plan.add("SP", SchemeSpec("SP"), workload, cost_hint=0.0)

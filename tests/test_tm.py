"""Unit tests for the traffic-matrix package: datatype, gravity, locality,
scaling."""

import numpy as np
import pytest

from repro.net.units import Gbps
from repro.tm import (
    TrafficMatrix,
    apply_locality,
    gravity_traffic_matrix,
    max_scale_factor,
    scale_to_growth_headroom,
)
from repro.tm.gravity import zipf_masses
from repro.tm.matrix import Aggregate
from repro.tm.matrix import from_json as tm_from_json
from repro.tm.matrix import to_json as tm_to_json
from repro.tm.scale import min_cut_load


class TestAggregate:
    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            Aggregate("a", "a", 1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            Aggregate("a", "b", -1.0)

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            Aggregate("a", "b", 1.0, n_flows=0)

    def test_pair(self):
        assert Aggregate("a", "b", 1.0).pair == ("a", "b")


class TestTrafficMatrix:
    def test_demand_lookup(self, triangle_tm):
        assert triangle_tm.demand("a", "b") == Gbps(2)
        assert triangle_tm.demand("c", "a") == 0.0

    def test_flow_counts_scale_with_demand(self, triangle_tm):
        assert triangle_tm.flows("a", "b") == 2 * triangle_tm.flows("a", "c")

    def test_explicit_flow_counts(self):
        tm = TrafficMatrix({("a", "b"): 100.0}, flow_counts={("a", "b"): 7})
        assert tm.flows("a", "b") == 7

    def test_aggregates_drop_trivial(self):
        tm = TrafficMatrix({("a", "b"): 100.0, ("b", "a"): 0.0})
        aggs = tm.aggregates()
        assert len(aggs) == 1
        assert aggs[0].pair == ("a", "b")

    def test_total_demand(self, triangle_tm):
        assert triangle_tm.total_demand_bps == pytest.approx(Gbps(4))

    def test_ingress_egress(self, triangle_tm):
        assert triangle_tm.ingress_bps("a") == pytest.approx(Gbps(3))
        assert triangle_tm.egress_bps("c") == pytest.approx(Gbps(2))

    def test_scaled(self, triangle_tm):
        doubled = triangle_tm.scaled(2.0)
        assert doubled.demand("a", "b") == pytest.approx(Gbps(4))
        # Original untouched.
        assert triangle_tm.demand("a", "b") == pytest.approx(Gbps(2))

    def test_scaled_rejects_negative(self, triangle_tm):
        with pytest.raises(ValueError):
            triangle_tm.scaled(-1.0)

    def test_rejects_self_demand(self):
        with pytest.raises(ValueError):
            TrafficMatrix({("a", "a"): 1.0})

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            TrafficMatrix({("a", "b"): -1.0})

    def test_with_demands_overrides(self, triangle_tm):
        updated = triangle_tm.with_demands({("a", "b"): Gbps(5)})
        assert updated.demand("a", "b") == pytest.approx(Gbps(5))
        assert updated.demand("a", "c") == pytest.approx(Gbps(1))


class TestZipfMasses:
    def test_length_and_positive(self, rng):
        masses = zipf_masses(10, rng)
        assert len(masses) == 10
        assert np.all(masses > 0)

    def test_heavy_tail(self, rng):
        masses = zipf_masses(100, rng, exponent=1.0)
        assert masses.max() / masses.min() == pytest.approx(100.0)

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            zipf_masses(0, rng)
        with pytest.raises(ValueError):
            zipf_masses(5, rng, exponent=0.0)


class TestGravity:
    def test_covers_all_pairs(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        n = gts.num_nodes
        assert len(tm) == n * (n - 1)

    def test_total_matches_requested(self, triangle, rng):
        tm = gravity_traffic_matrix(triangle, rng, total_bps=5e9)
        assert tm.total_demand_bps == pytest.approx(5e9)

    def test_deterministic_given_seed(self, gts):
        tm_a = gravity_traffic_matrix(gts, np.random.default_rng(9))
        tm_b = gravity_traffic_matrix(gts, np.random.default_rng(9))
        assert tm_a.demand(*tm_a.pairs[0]) == tm_b.demand(*tm_b.pairs[0])

    def test_heavy_tailed_aggregates(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        demands = sorted((d for _, d in tm.items()), reverse=True)
        top_decile = sum(demands[: len(demands) // 10])
        assert top_decile > 0.4 * sum(demands)

    def test_requires_two_nodes(self, rng):
        from repro.net.graph import Network, Node

        net = Network("single")
        net.add_node(Node("a"))
        with pytest.raises(ValueError):
            gravity_traffic_matrix(net, rng)


class TestLocality:
    def test_zero_locality_identity(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        assert apply_locality(gts, tm, 0.0) is tm

    def test_preserves_marginals(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        shaped = apply_locality(gts, tm, 1.0)
        for node in gts.node_names[:5]:
            assert shaped.ingress_bps(node) == pytest.approx(
                tm.ingress_bps(node), rel=1e-5
            )
            assert shaped.egress_bps(node) == pytest.approx(
                tm.egress_bps(node), rel=1e-5
            )

    def test_respects_growth_cap(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        locality = 1.0
        shaped = apply_locality(gts, tm, locality)
        for pair in tm.pairs:
            assert shaped.demand(*pair) <= tm.demand(*pair) * (1 + locality) + 1.0

    def test_reduces_mean_distance(self, gts, rng):
        from repro.tm.locality import aggregate_distances_s

        tm = gravity_traffic_matrix(gts, rng)
        shaped = apply_locality(gts, tm, 1.0)
        distances = aggregate_distances_s(gts, tm)
        before = sum(tm.demand(*p) * distances[p] for p in tm.pairs)
        after = sum(shaped.demand(*p) * distances[p] for p in tm.pairs)
        assert after < before

    def test_higher_locality_more_local(self, gts, rng):
        from repro.tm.locality import aggregate_distances_s

        tm = gravity_traffic_matrix(gts, rng)
        distances = aggregate_distances_s(gts, tm)

        def weighted_distance(matrix):
            return sum(matrix.demand(*p) * distances[p] for p in matrix.pairs)

        mild = apply_locality(gts, tm, 0.5)
        strong = apply_locality(gts, tm, 2.0)
        assert weighted_distance(strong) <= weighted_distance(mild) + 1e-6

    def test_negative_locality_rejected(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        with pytest.raises(ValueError):
            apply_locality(gts, tm, -0.5)


class TestScaling:
    def test_triangle_known_value(self, triangle):
        tm = TrafficMatrix(
            {("a", "b"): 1.0, ("a", "c"): 1.0},
            flow_counts={("a", "b"): 1, ("a", "c"): 1},
        )
        # Source a has 20 Gb/s of outgoing capacity, demand 2 b/s.
        assert max_scale_factor(triangle, tm) == pytest.approx(Gbps(10))

    def test_scaled_matrix_hits_target(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        scaled = scale_to_growth_headroom(gts, tm, growth_factor=1.3)
        assert max_scale_factor(gts, scaled) == pytest.approx(1.3, rel=1e-3)

    def test_min_cut_load_is_reciprocal(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        scaled = scale_to_growth_headroom(gts, tm, growth_factor=1.3)
        assert min_cut_load(gts, scaled) == pytest.approx(1 / 1.3, rel=1e-3)

    def test_growth_below_one_rejected(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        with pytest.raises(ValueError):
            scale_to_growth_headroom(gts, tm, growth_factor=0.9)

    def test_empty_matrix_rejected(self, triangle):
        tm = TrafficMatrix({})
        with pytest.raises(ValueError):
            max_scale_factor(triangle, tm)

    def test_scale_factor_scales_inversely(self, triangle):
        tm = TrafficMatrix(
            {("a", "b"): 2.0}, flow_counts={("a", "b"): 1}
        )
        lam1 = max_scale_factor(triangle, tm)
        lam2 = max_scale_factor(triangle, tm.scaled(2.0))
        assert lam1 == pytest.approx(2 * lam2, rel=1e-6)


class TestTmJson:
    def test_round_trip_equality(self, gts, rng):
        tm = gravity_traffic_matrix(gts, rng)
        assert tm_from_json(tm_to_json(tm)) == tm

    def test_round_trip_preserves_pair_order(self):
        tm = TrafficMatrix({("b", "a"): 1.0, ("a", "b"): 2.0})
        restored = tm_from_json(tm_to_json(tm))
        assert restored.pairs == [("b", "a"), ("a", "b")]

    def test_zero_demand_pairs_retained(self):
        tm = TrafficMatrix({("a", "b"): 0.0, ("b", "a"): 5.0})
        restored = tm_from_json(tm_to_json(tm))
        assert restored.demand("a", "b") == 0.0
        assert ("a", "b") in restored.pairs

    def test_explicit_flow_counts_survive(self):
        tm = TrafficMatrix(
            {("a", "b"): 1e9}, flow_counts={("a", "b"): 7}
        )
        restored = tm_from_json(tm_to_json(tm))
        assert restored.flows("a", "b") == 7

    def test_float_demands_exact(self):
        demand = 0.1 + 0.2  # not representable exactly in decimal
        tm = TrafficMatrix({("a", "b"): demand})
        assert tm_from_json(tm_to_json(tm)).demand("a", "b") == demand

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            tm_from_json('{"format": "something-else", "version": 1}')

    def test_rejects_unknown_version(self):
        tm = TrafficMatrix({("a", "b"): 1.0})
        payload = tm_to_json(tm).replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            tm_from_json(payload)

    def test_equality_is_order_sensitive(self):
        forward = TrafficMatrix({("a", "b"): 1.0, ("b", "a"): 2.0})
        backward = TrafficMatrix({("b", "a"): 2.0, ("a", "b"): 1.0})
        same = TrafficMatrix({("a", "b"): 1.0, ("b", "a"): 2.0})
        assert forward == same
        assert forward != backward  # aggregate order feeds the LPs

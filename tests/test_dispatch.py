"""Tests for shard manifests, subprocess workers, and store merge."""

import json

import pytest

from repro.experiments.dispatch import (
    DispatchError,
    dispatch_run,
    load_manifest,
    manifest_items,
    merge_worker_store,
    run_worker,
    shard_indices,
    write_plan_manifests,
    write_shard_manifests,
)
from repro.experiments.engine import ExperimentEngine
from repro.experiments.spec import SchemeSpec
from repro.experiments.store import (
    ResultStore,
    StoreMismatchError,
    workload_signature,
)
from repro.experiments.workloads import build_zoo_workload


@pytest.fixture(scope="module")
def workload():
    return build_zoo_workload(
        n_networks=4, n_matrices=1, seed=3, include_named=False
    )


class TestSharding:
    def test_stripes_cover_every_index_once(self):
        shards = shard_indices(7, 3)
        assert sorted(i for shard in shards for i in shard) == list(range(7))
        assert [len(s) for s in shards] == [3, 2, 2]

    def test_more_shards_than_networks(self):
        assert shard_indices(2, 5) == [[0], [1]]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_indices(4, 0)


class TestManifests:
    def test_manifest_round_trips_items(self, workload, tmp_path):
        spec = SchemeSpec("SP")
        paths = write_shard_manifests(spec, workload, 2, tmp_path)
        assert len(paths) == 2
        seen = {}
        for path in paths:
            manifest = load_manifest(path)
            assert manifest["signature"] == workload_signature(workload)
            assert manifest["n_networks"] == len(workload.networks)
            assert SchemeSpec.from_jsonable(manifest["spec"]) == spec
            for index, item in manifest_items(manifest):
                seen[index] = item
        assert sorted(seen) == list(range(len(workload.networks)))
        for index, item in seen.items():
            original = workload.networks[index]
            assert item.network.name == original.network.name
            assert item.llpd == original.llpd  # floats survive JSON exactly
            assert item.matrices == original.matrices

    def test_manifest_respects_matrices_per_network(self, tmp_path):
        workload = build_zoo_workload(
            n_networks=2, n_matrices=3, seed=1, include_named=False
        )
        paths = write_shard_manifests(
            SchemeSpec("SP"), workload, 1, tmp_path, matrices_per_network=1
        )
        manifest = load_manifest(paths[0])
        assert all(len(e["matrices"]) == 1 for e in manifest["networks"])
        assert manifest["signature"] == workload_signature(workload, 1)

    def test_manifest_carries_shaping_params(self, workload, tmp_path):
        path = write_shard_manifests(
            SchemeSpec("SP"), workload, 1, tmp_path
        )[0]
        shaping = load_manifest(path)["shaping"]
        assert shaping == {
            "locality": workload.locality,
            "growth_factor": workload.growth_factor,
            "seed": workload.seed,
        }

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-manifest.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DispatchError):
            load_manifest(path)


class TestWorkerAndMerge:
    def test_workers_plus_merge_match_in_process(self, workload, tmp_path):
        """The acceptance path: shard -> worker x2 -> merge -> compare."""
        spec = SchemeSpec("SP")
        manifests = write_shard_manifests(
            spec, workload, 2, tmp_path / "manifests"
        )
        for i, manifest in enumerate(manifests):
            run_worker(manifest, tmp_path / f"worker-{i}")
        main_store = tmp_path / "main"
        for i in range(len(manifests)):
            merge_worker_store(main_store, tmp_path / f"worker-{i}")
        served = ExperimentEngine(store_dir=main_store, store_only=True).run(
            spec, workload, scheme="SP"
        )
        direct = ExperimentEngine(n_workers=1).run(spec, workload)
        assert served.outcomes == direct.outcomes

    def test_merge_is_idempotent(self, workload, tmp_path):
        spec = SchemeSpec("SP")
        manifests = write_shard_manifests(
            spec, workload, 2, tmp_path / "manifests"
        )
        for i, manifest in enumerate(manifests):
            run_worker(manifest, tmp_path / f"worker-{i}")
        main_store = tmp_path / "main"
        first = merge_worker_store(main_store, tmp_path / "worker-0")
        assert sum(first.values()) == 2
        again = merge_worker_store(main_store, tmp_path / "worker-0")
        assert sum(again.values()) == 0  # re-merging is a no-op
        stream = next((tmp_path / "main").glob("*/*.jsonl"))
        size_before = stream.stat().st_size
        merge_worker_store(main_store, tmp_path / "worker-0")
        assert stream.stat().st_size == size_before

    def test_worker_resumes_stored_indices(self, workload, tmp_path):
        spec = SchemeSpec("SP")
        manifest = write_shard_manifests(
            spec, workload, 1, tmp_path / "manifests"
        )[0]
        first = run_worker(manifest, tmp_path / "store")
        assert first["evaluated"] == len(workload.networks)
        second = run_worker(manifest, tmp_path / "store")
        assert second["evaluated"] == 0
        assert second["skipped"] == len(workload.networks)

    def test_merge_rejects_conflicting_network_ids(self, workload, tmp_path):
        spec = SchemeSpec("SP")
        manifest = write_shard_manifests(
            spec, workload, 1, tmp_path / "manifests"
        )[0]
        run_worker(manifest, tmp_path / "worker")
        merge_worker_store(tmp_path / "main", tmp_path / "worker")
        # Forge a worker store whose index 0 names a different network.
        stream = next((tmp_path / "worker").glob("*/*.jsonl"))
        lines = stream.read_text().splitlines()
        record = json.loads(lines[1])
        record["network_id"] = "0:forged"
        lines[1] = json.dumps(record, separators=(",", ":"))
        stream.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreMismatchError):
            merge_worker_store(tmp_path / "main", tmp_path / "worker")

    def test_merge_missing_worker_dir_is_empty(self, tmp_path):
        assert merge_worker_store(tmp_path / "main", tmp_path / "ghost") == {}


class TestDispatchRun:
    @pytest.mark.parametrize("scheme", ["SP", "MinMaxK10"])
    def test_dispatched_equals_in_process(self, workload, tmp_path, scheme):
        """Acceptance: 2 subprocess workers == serial in-process engine."""
        spec = SchemeSpec(scheme)
        outcomes = dispatch_run(
            spec,
            workload,
            n_shards=2,
            store_dir=tmp_path / "store",
            work_dir=tmp_path / "work",
            verify=True,  # raises DispatchError on any outcome difference
        )
        direct = ExperimentEngine(n_workers=1).run(spec, workload)
        assert outcomes == direct.outcomes

    def test_dispatch_populates_renderable_store(self, workload, tmp_path):
        spec = SchemeSpec("SP")
        dispatch_run(spec, workload, n_shards=2, store_dir=tmp_path / "store")
        # A store-only engine serves the dispatched results without
        # constructing a single scheme.
        served = ExperimentEngine(
            store_dir=tmp_path / "store", store_only=True
        ).run(spec, workload, scheme="SP")
        assert len(served.outcomes) == len(workload.networks)

    def test_no_resume_replaces_stale_store_results(self, workload, tmp_path):
        spec = SchemeSpec("SP")
        dispatch_run(spec, workload, n_shards=2, store_dir=tmp_path / "store")
        # Corrupt one stored outcome in place: with resume (the default) a
        # re-dispatch loses to it, with resume=False it is replaced.
        stream = next((tmp_path / "store").glob("*/*.jsonl"))
        lines = stream.read_text().splitlines()
        record = json.loads(lines[1])
        record["outcomes"][0]["max_utilization"] = 123.0
        lines[1] = json.dumps(record, separators=(",", ":"))
        stream.write_text("\n".join(lines) + "\n")

        kept = dispatch_run(
            spec, workload, n_shards=2, store_dir=tmp_path / "store"
        )
        assert any(o.max_utilization == 123.0 for o in kept)
        replaced = dispatch_run(
            spec,
            workload,
            n_shards=2,
            store_dir=tmp_path / "store",
            resume=False,
        )
        assert not any(o.max_utilization == 123.0 for o in replaced)
        direct = ExperimentEngine(n_workers=1).run(spec, workload)
        assert replaced == direct.outcomes

    def test_work_dir_keeps_manifests_and_worker_stores(
        self, workload, tmp_path
    ):
        dispatch_run(
            SchemeSpec("SP"),
            workload,
            n_shards=2,
            store_dir=tmp_path / "store",
            work_dir=tmp_path / "work",
        )
        assert len(list((tmp_path / "work" / "manifests").glob("*.json"))) == 2
        assert (tmp_path / "work" / "worker-000").is_dir()

    def test_failing_worker_surfaces_stderr(self, workload, tmp_path):
        # A spec the registry cannot resolve serializes fine but makes the
        # worker subprocess fail; the coordinator must report the failure
        # (with the worker's stderr) instead of serving a partial store.
        with pytest.raises(DispatchError, match="exited"):
            dispatch_run(
                SchemeSpec("NoSuchScheme"),
                workload,
                n_shards=1,
                store_dir=tmp_path / "store",
                work_dir=tmp_path / "work",
            )


class TestCostBalancedSharding:
    """LPT makespan balancing of shard manifests (--schedule lpt)."""

    def skewed_plan(self):
        import numpy as np

        from repro.experiments.plan import EvalPlan
        from repro.experiments.workloads import (
            NetworkWorkload,
            ZooWorkload,
            build_traffic_matrices,
        )
        from repro.net.zoo import grid_network, ring_network

        rng = np.random.default_rng(5)
        networks = [
            ring_network(4, np.random.default_rng(i), name=f"bal-ring-{i}")
            for i in range(3)
        ]
        networks.append(
            grid_network(3, 3, np.random.default_rng(9), name="bal-grid")
        )
        items = [
            NetworkWorkload(
                network=network,
                llpd=0.0,
                matrices=build_traffic_matrices(
                    network, 1, rng, locality=1.0, growth_factor=1.3
                ),
            )
            for network in networks
        ]
        workload = ZooWorkload(
            networks=items, locality=1.0, growth_factor=1.3
        )
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("MinMaxK10", SchemeSpec("MinMaxK10"), workload)
        return plan

    def test_plan_manifests_balance_predicted_makespan(self, tmp_path):
        from repro.experiments.cost import make_scheduler

        plan = self.skewed_plan()
        scheduler = make_scheduler("lpt")
        paths = write_plan_manifests(
            plan, 2, tmp_path, scheduler=scheduler
        )
        assert len(paths) == 2

        # Every task appears exactly once across shards.
        seen = []
        for path in paths:
            manifest = load_manifest(path)
            for task in manifest["tasks"]:
                stream = manifest["streams"][task["stream"]]
                seen.append((stream["scheme"], task["index"]))
        assert sorted(seen) == sorted(
            (plan.streams[t.stream].scheme, t.index) for t in plan.tasks()
        )

        # And the split is the cost model's balanced one: no worse a
        # makespan than contiguous chunking under the same predictions.
        predictions = scheduler.predictions(plan)
        by_scheme = {
            (plan.streams[key].scheme, index): cost
            for (key, index), cost in predictions.items()
        }
        balanced = []
        for path in paths:
            manifest = load_manifest(path)
            balanced.append(
                sum(
                    by_scheme[
                        (
                            manifest["streams"][t["stream"]]["scheme"],
                            t["index"],
                        )
                    ]
                    for t in manifest["tasks"]
                )
            )
        contiguous_paths = write_plan_manifests(
            plan, 2, tmp_path / "contiguous"
        )
        contiguous = []
        for path in contiguous_paths:
            manifest = load_manifest(path)
            contiguous.append(
                sum(
                    by_scheme[
                        (
                            manifest["streams"][t["stream"]]["scheme"],
                            t["index"],
                        )
                    ]
                    for t in manifest["tasks"]
                )
            )
        assert max(balanced) <= max(contiguous)

    def test_scheme_manifests_balance_indices(self, tmp_path):
        from repro.experiments.cost import CostModel

        plan = self.skewed_plan()
        workload = plan.streams["MinMaxK10"].workload
        spec = SchemeSpec("MinMaxK10")
        model = CostModel()
        paths = write_shard_manifests(
            spec, workload, 2, tmp_path, cost_model=model
        )
        shards = [
            [entry["index"] for entry in load_manifest(p)["networks"]]
            for p in paths
        ]
        assert sorted(i for s in shards for i in s) == list(
            range(len(workload.networks))
        )
        # The big grid (index 3) is the predicted long pole: LPT places
        # it first in its shard, and not alongside all the other work.
        big_shard = next(s for s in shards if 3 in s)
        assert big_shard[0] == 3

    def test_dispatch_plan_lpt_matches_in_process(self, workload, tmp_path):
        from repro.experiments.dispatch import dispatch_plan
        from repro.experiments.figures import fig04_plan

        plan = fig04_plan(
            workload,
            schemes={
                "SP": SchemeSpec("SP"),
                "ECMP": SchemeSpec("ECMP"),
            },
        )
        report = dispatch_plan(
            plan,
            n_shards=2,
            store_dir=tmp_path / "store",
            work_dir=tmp_path / "work",
            verify=True,  # bit-identity vs the in-process engine
            scheduler="lpt",
        )
        assert set(report.results) == {"SP", "ECMP"}

"""Tests for the trace-replay simulator, including the LDR closed loop."""

import numpy as np
import pytest

from repro.net.units import Gbps
from repro.routing.base import PathAllocation, Placement
from repro.sim import replay_placement
from repro.tm.matrix import Aggregate


def single_path_placement(network, pair, demand, path):
    agg = Aggregate(pair[0], pair[1], demand)
    return agg, Placement(network, {agg: [PathAllocation(path, 1.0)]})


class TestReplayMechanics:
    def test_no_queue_under_capacity(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(5), ("a", "b")
        )
        samples = {("a", "b"): np.full(10, Gbps(5))}
        result = replay_placement(placement, samples)
        assert result.max_queue_delay_s == 0.0
        stats = result.per_link[("a", "b")]
        assert stats.mean_utilization == pytest.approx(0.5)
        assert stats.intervals_with_queue == 0

    def test_sustained_overload_builds_queue(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(12), ("a", "b")
        )
        samples = {("a", "b"): np.full(5, Gbps(12))}
        result = replay_placement(placement, samples)
        # 2 Gb/s of excess over 5 intervals of 0.1 s = 1 Gbit of queue;
        # drained at 10 Gb/s that is 100 ms of delay.
        assert result.max_queue_delay_s == pytest.approx(0.1)
        assert result.per_link[("a", "b")].intervals_with_queue == 5

    def test_burst_drains(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(5), ("a", "b")
        )
        burst = np.array([Gbps(20)] + [Gbps(1)] * 9)
        result = replay_placement(placement, {("a", "b"): burst})
        stats = result.per_link[("a", "b")]
        # One interval of +10 Gb/s -> 1 Gbit queue -> 0.1 s delay, then it
        # drains within the next interval (9 Gb/s of slack drains 0.9 Gbit).
        assert stats.max_queue_delay_s == pytest.approx(0.1)
        assert stats.intervals_with_queue == 2

    def test_split_traffic_loads_both_paths(self, diamond):
        agg = Aggregate("s", "t", Gbps(10))
        placement = Placement(
            diamond,
            {
                agg: [
                    PathAllocation(("s", "x", "t"), 0.5),
                    PathAllocation(("s", "y", "t"), 0.5),
                ]
            },
        )
        samples = {("s", "t"): np.full(4, Gbps(10))}
        result = replay_placement(placement, samples)
        assert result.per_link[("s", "x")].mean_utilization == pytest.approx(0.5)
        assert result.per_link[("s", "y")].mean_utilization == pytest.approx(
            0.125
        )

    def test_missing_samples_use_mean_demand(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(4), ("a", "b")
        )
        result = replay_placement(placement, {})
        assert result.per_link[("a", "b")].mean_utilization == pytest.approx(0.4)

    def test_finite_buffer_caps_queue(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(20), ("a", "b")
        )
        samples = {("a", "b"): np.full(50, Gbps(20))}
        result = replay_placement(placement, samples, drop_horizon_s=0.05)
        assert result.max_queue_delay_s == pytest.approx(0.05)

    def test_validation(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(1), ("a", "b")
        )
        with pytest.raises(ValueError):
            replay_placement(placement, {}, interval_s=0.0)
        with pytest.raises(ValueError):
            replay_placement(
                placement,
                {("a", "b"): np.ones(3), ("b", "c"): np.ones(4)},
            )

    def test_links_exceeding(self, triangle):
        agg, placement = single_path_placement(
            triangle, ("a", "b"), Gbps(12), ("a", "b")
        )
        samples = {("a", "b"): np.full(5, Gbps(12))}
        result = replay_placement(placement, samples)
        assert result.links_exceeding(0.01) == [("a", "b")]
        assert result.links_exceeding(1.0) == []


class TestLdrClosedLoop:
    def test_converged_ldr_placement_respects_queue_budget(self, gts):
        """The point of the whole control loop: replaying the very samples
        LDR checked against must not exceed the queue budget."""
        from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController
        from repro.traces import SyntheticTraceConfig, minute_means, synthesize_trace
        from tests.conftest import loaded_gts_tm

        tm = loaded_gts_tm(gts, growth_factor=1.65)
        rng = np.random.default_rng(77)
        traffic = []
        samples = {}
        for agg in tm.aggregates():
            config = SyntheticTraceConfig(
                mean_bps=agg.demand_bps,
                minutes=2,
                sample_ms=100,
                burst_sigma_fraction=0.15,
            )
            trace = synthesize_trace(config, rng)
            window = trace[-600:]
            samples[agg.pair] = window
            traffic.append(
                AggregateTraffic(
                    agg.src, agg.dst, window, minute_means(trace, 600)
                )
            )
        controller = LdrController(gts, LdrConfig(max_rounds=20))
        result = controller.route(traffic)
        assert result.converged

        replay = replay_placement(result.placement, samples)
        budget = controller.config.max_queue_s
        assert replay.max_queue_delay_s <= budget + 1e-9, (
            f"transient queue {replay.max_queue_delay_s * 1000:.2f} ms "
            f"exceeds the {budget * 1000:.0f} ms budget"
        )

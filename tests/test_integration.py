"""Integration tests: the paper's qualitative claims, end to end.

Each test runs a full pipeline (zoo network -> traffic matrix -> routing
scheme(s) -> metrics) and asserts the *shape* of a paper result.
"""

import numpy as np
import pytest

from repro.core.metrics import llpd
from repro.net.paths import KspCache
from repro.net.zoo import gts_like, tree_network
from repro.routing import (
    B4Routing,
    LatencyOptimalRouting,
    MinMaxRouting,
    ShortestPathRouting,
)
from tests.conftest import loaded_gts_tm


@pytest.fixture(scope="module")
def gts_network():
    return gts_like()


@pytest.fixture(scope="module")
def gts_matrix(gts_network):
    return loaded_gts_tm(gts_network)


@pytest.fixture(scope="module")
def shared_cache(gts_network):
    return KspCache(gts_network)


class TestPaperClaims:
    def test_sp_congests_high_llpd_network(
        self, gts_network, gts_matrix, shared_cache
    ):
        """Figure 3: shortest-path routing concentrates traffic on
        high-LLPD networks."""
        placement = ShortestPathRouting(shared_cache).place(
            gts_network, gts_matrix
        )
        assert placement.congested_pair_fraction() > 0.0

    def test_sp_fine_on_tree(self, rng):
        """Figure 3's flip side: low-LLPD (tree) networks route fine with
        SP at the same relative load, because SP *is* the only routing."""
        net = tree_network(12, rng)
        tm = loaded_gts_tm(net)
        placement = ShortestPathRouting().place(net, tm)
        # Scaled so that optimal routing has 1.3x growth room, and on a
        # tree SP is the optimal routing: nothing can congest.
        assert placement.congested_pair_fraction() == 0.0

    def test_optimal_no_congestion_low_stretch(
        self, gts_network, gts_matrix, shared_cache
    ):
        """Figure 4(a): optimal routing fits everything at low stretch."""
        placement = LatencyOptimalRouting(cache=shared_cache).place(
            gts_network, gts_matrix
        )
        assert placement.congested_pair_fraction() == 0.0
        assert placement.total_latency_stretch() < 1.15

    def test_minmax_no_congestion_higher_stretch(
        self, gts_network, gts_matrix, shared_cache
    ):
        """Figure 4(c): MinMax never congests but pays latency."""
        minmax = MinMaxRouting(cache=shared_cache).place(gts_network, gts_matrix)
        optimal = LatencyOptimalRouting(cache=shared_cache).place(
            gts_network, gts_matrix
        )
        assert minmax.congested_pair_fraction() == 0.0
        # MinMax pays a clear latency premium over the optimum.
        assert (
            minmax.total_latency_stretch()
            > optimal.total_latency_stretch() + 0.01
        )
        assert minmax.max_path_stretch() >= optimal.max_path_stretch() - 1e-9

    def test_scheme_ordering_of_utilization(
        self, gts_network, gts_matrix, shared_cache
    ):
        """Figure 7: optimal loads the busiest link to ~100%, MinMax to
        ~77% (the min-cut load)."""
        optimal = LatencyOptimalRouting(cache=shared_cache).place(
            gts_network, gts_matrix
        )
        minmax = MinMaxRouting(cache=shared_cache).place(gts_network, gts_matrix)
        assert optimal.max_utilization() == pytest.approx(1.0, abs=0.01)
        assert minmax.max_utilization() == pytest.approx(1 / 1.3, rel=0.02)
        # Most links look the same under both (lightly loaded).
        opt_utils = sorted(optimal.link_utilizations().values())
        mm_utils = sorted(minmax.link_utilizations().values())
        median_gap = abs(
            float(np.median(opt_utils)) - float(np.median(mm_utils))
        )
        assert median_gap < 0.15

    def test_headroom_dial_monotone_stretch(self, gts_network, shared_cache):
        """Figure 8: latency stretch grows (weakly) with headroom, little
        until headroom approaches the MinMax end of the dial."""
        tm = loaded_gts_tm(gts_network, growth_factor=1.65)
        stretches = []
        for headroom in (0.0, 0.11, 0.23, 0.40):
            placement = LatencyOptimalRouting(
                headroom=headroom, cache=shared_cache
            ).place(gts_network, tm)
            assert placement.max_utilization() <= 1.0 + 1e-4
            stretches.append(placement.total_latency_stretch())
        assert stretches[0] <= stretches[-1] + 1e-9
        # Stretch at 11% headroom is still close to optimal.
        assert stretches[1] < stretches[0] + 0.05

    def test_b4_worse_than_optimal_under_load(
        self, gts_network, gts_matrix, shared_cache
    ):
        """Figures 4(b)/17: B4 pays congestion or latency on high-LLPD
        networks under load."""
        b4 = B4Routing(cache=shared_cache).place(gts_network, gts_matrix)
        optimal = LatencyOptimalRouting(cache=shared_cache).place(
            gts_network, gts_matrix
        )
        b4_worse = (
            b4.congested_pair_fraction() > optimal.congested_pair_fraction()
            or b4.total_latency_stretch()
            > optimal.total_latency_stretch() + 1e-6
            or not b4.fits_all_traffic
        )
        assert b4_worse

    def test_llpd_stable_across_recomputation(self, gts_network):
        assert llpd(gts_network) == pytest.approx(llpd(gts_network))


class TestGrowthStudy:
    def test_ldr_benefits_from_llpd_growth(self, rng):
        """Figure 20's shape: after LLPD-guided link additions, the
        latency-optimal scheme's stretch does not get worse."""
        from repro.core.metrics import llpd as llpd_score
        from repro.net.mutate import grow_by_llpd
        from repro.net.zoo import ring_network

        net = ring_network(10, rng)
        tm = loaded_gts_tm(net, seed=4)
        before = LatencyOptimalRouting().place(net, tm).total_weighted_delay_s()
        grown, added = grow_by_llpd(
            net, score=llpd_score, growth_fraction=0.2, max_candidates=10
        )
        assert added
        after = LatencyOptimalRouting().place(grown, tm).total_weighted_delay_s()
        # Relative stretch may rise (the new links also shorten the
        # shortest-path baseline), but absolute delay can only improve
        # when capacity and paths are added and the optimizer is exact.
        assert after <= before + 1e-9

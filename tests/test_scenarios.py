"""Scenario fleets: specs, seeded generation, lazy plans, dispatch parity."""

import json
import multiprocessing
import pickle
import subprocess
import sys

import pytest

from repro.experiments.dispatch import dispatch_plan, load_manifest
from repro.experiments.engine import ExperimentEngine
from repro.experiments.plan import EvalPlan, EvalTask, execute_plan
from repro.experiments.spec import SchemeSpec
from repro.experiments.store import workload_signature
from repro.experiments.workloads import NetworkWorkload, build_zoo_workload
from repro.net.mutate import (
    ScenarioInfeasible,
    connected_components,
    ensure_demand_connectivity,
    with_removed_duplex_link,
    with_removed_node,
)
from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms
from repro.scenarios import (
    BASELINE,
    ScenarioGenerator,
    ScenarioSpec,
    ScenarioWorkload,
    generate_scenarios,
)
from repro.scenarios.report import (
    render_json,
    render_text,
    robustness_payload,
    variant_metrics,
)
from repro.tm.matrix import TrafficMatrix
from repro.tm.matrix import from_json as tm_from_json
from repro.tm.matrix import to_json as tm_to_json


def build_line(n=4):
    """A chain n0 - n1 - ... - n_{n-1}: every interior link is a bridge."""
    net = Network(f"line-{n}")
    for i in range(n):
        net.add_node(Node(f"n{i}"))
    for i in range(n - 1):
        net.add_duplex_link(f"n{i}", f"n{i + 1}", Gbps(10), ms(1))
    return net


def build_square():
    """Four nodes in a cycle a-b-c-d-a: survives any single link cut."""
    net = Network("square")
    for name in "abcd":
        net.add_node(Node(name))
    net.add_duplex_link("a", "b", Gbps(10), ms(1))
    net.add_duplex_link("b", "c", Gbps(10), ms(1))
    net.add_duplex_link("c", "d", Gbps(10), ms(1))
    net.add_duplex_link("d", "a", Gbps(10), ms(1))
    return net


# ----------------------------------------------------------------------
# Satellite: TrafficMatrix.scaled(pairs=...)
# ----------------------------------------------------------------------
class TestScaledPairs:
    def tm(self):
        return TrafficMatrix(
            {
                ("a", "b"): Gbps(1),
                ("b", "c"): Gbps(2),
                ("c", "a"): Gbps(3),
                ("a", "c"): 0.0,  # zero-demand pairs are retained
            }
        )

    def test_subset_matches_manual_scaling(self):
        tm = self.tm()
        surged = tm.scaled(5.0, pairs=[("a", "b"), ("c", "a")])
        manual = TrafficMatrix(
            {
                ("a", "b"): Gbps(1) * 5.0,
                ("b", "c"): Gbps(2),
                ("c", "a"): Gbps(3) * 5.0,
                ("a", "c"): 0.0,
            }
        )
        assert surged == manual

    def test_preserves_pair_order_and_round_trips(self):
        surged = self.tm().scaled(3.0, pairs=[("b", "c")])
        assert surged.pairs == self.tm().pairs  # insertion order kept
        assert tm_from_json(tm_to_json(surged)) == surged

    def test_absent_pair_raises(self):
        with pytest.raises(KeyError):
            self.tm().scaled(2.0, pairs=[("a", "z")])

    def test_none_scales_everything(self):
        doubled = self.tm().scaled(2.0)
        assert doubled.demand("b", "c") == Gbps(2) * 2.0
        assert doubled.demand("a", "b") == Gbps(1) * 2.0


# ----------------------------------------------------------------------
# Satellite: mutate guards (typed infeasibility, not an LP crash)
# ----------------------------------------------------------------------
def line_item():
    """A 4-node chain: every interior link is a bridge."""
    network = build_line(4)
    tm = TrafficMatrix({("n0", "n3"): Gbps(1), ("n1", "n2"): Gbps(1)})
    return NetworkWorkload(network=network, llpd=1.0, matrices=[tm])


class TestMutateGuards:
    def test_removing_bridge_link_is_typed_infeasible(self):
        spec = ScenarioSpec(failed_links=(("n1", "n2"),))
        with pytest.raises(ScenarioInfeasible):
            spec.apply(line_item())

    def test_removing_absent_link_is_typed_infeasible(self):
        with pytest.raises(ScenarioInfeasible):
            with_removed_duplex_link(build_line(4), "n0", "n3")

    def test_removing_absent_node_is_typed_infeasible(self):
        with pytest.raises(ScenarioInfeasible):
            with_removed_node(build_line(4), "n9")

    def test_node_failure_severing_transit_demand(self):
        # Dropping n1 severs n0 <-> n3 (chain); the n0->n3 demand survives
        # the endpoint filter but has no path.
        spec = ScenarioSpec(failed_nodes=("n1",))
        with pytest.raises(ScenarioInfeasible):
            spec.apply(line_item())

    def test_connected_components_after_cut(self):
        cut = with_removed_duplex_link(build_line(4), "n1", "n2")
        assert connected_components(cut) == [["n0", "n1"], ["n2", "n3"]]
        with pytest.raises(ScenarioInfeasible):
            ensure_demand_connectivity(cut, [("n0", "n3")])

    def test_square_tolerates_any_single_cut(self):
        network = build_square()
        tm = TrafficMatrix({("a", "c"): Gbps(1)})
        item = NetworkWorkload(network=network, llpd=1.0, matrices=[tm])
        for a, b in sorted(network.duplex_pairs()):
            variant = ScenarioSpec(failed_links=((a, b),)).apply(item)
            assert variant.network.num_links == network.num_links - 2
            assert variant.scenario == f"fail[{a}--{b}]"


# ----------------------------------------------------------------------
# Generation: determinism, budgets, skip accounting
# ----------------------------------------------------------------------
class TestGeneration:
    def test_infeasible_variants_skipped_and_counted(self):
        fleet = generate_scenarios(line_item(), seed=3, link_failure_k=1)
        # Chain n0-n1-n2-n3: every single-link cut severs n0->n3.
        assert fleet.specs == [BASELINE]
        assert fleet.skipped == {"link_failure": 3}
        assert fleet.n_infeasible == 3
        again = generate_scenarios(line_item(), seed=3, link_failure_k=1)
        assert again.skipped == fleet.skipped

    def test_baseline_is_always_variant_zero(self):
        base = zoo_base()
        fleet = ScenarioGenerator(base, seed=5).fleet(
            link_failure_k=1, surges=2
        )
        assert fleet.specs[0] == BASELINE
        assert fleet.specs[0].kind == "baseline"

    def test_exhaustive_below_budget_sampled_above(self):
        base = zoo_base()
        generator = ScenarioGenerator(base, seed=5)
        exhaustive, _ = generator.link_failures(1, budget=10_000)
        n_links = len(base.network.duplex_pairs())
        assert len(exhaustive) <= n_links
        sampled, _ = generator.node_failures(2, budget=3)
        assert len(sampled) <= 3
        assert len({spec.signature() for spec in sampled}) == len(sampled)

    def test_fleet_reproducible_within_process(self):
        base = zoo_base()
        first = ScenarioGenerator(base, seed=11).fleet(
            link_failure_k=1, surges=3, budget=5
        )
        second = ScenarioGenerator(base, seed=11).fleet(
            link_failure_k=1, surges=3, budget=5
        )
        assert [s.signature() for s in first.specs] == [
            s.signature() for s in second.specs
        ]
        different = ScenarioGenerator(base, seed=12).fleet(
            link_failure_k=1, surges=3, budget=5
        )
        assert [s.signature() for s in first.specs] != [
            s.signature() for s in different.specs
        ]

    def test_fleet_reproducible_across_processes(self):
        code = (
            "from repro.experiments.workloads import build_zoo_workload\n"
            "from repro.scenarios import ScenarioGenerator\n"
            "base = build_zoo_workload(n_networks=2, n_matrices=1, seed=7,"
            " include_named=False).networks[0]\n"
            "fleet = ScenarioGenerator(base, seed=11).fleet("
            "link_failure_k=1, surges=3, budget=5)\n"
            "print('\\n'.join(s.signature() for s in fleet.specs))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split()
        fleet = ScenarioGenerator(zoo_base(), seed=11).fleet(
            link_failure_k=1, surges=3, budget=5
        )
        assert out == [s.signature() for s in fleet.specs]


# ----------------------------------------------------------------------
# Spec identity and composition
# ----------------------------------------------------------------------
class TestSpec:
    def spec(self):
        return ScenarioSpec(
            failed_links=(("a", "b"),),
            surge_pairs=(("c", "d"),),
            surge_factor=4.0,
        )

    def test_pickle_and_json_round_trip(self):
        spec = self.spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        restored = ScenarioSpec.from_jsonable(
            json.loads(json.dumps(spec.to_jsonable()))
        )
        assert restored == spec
        assert restored.signature() == spec.signature()

    def test_foreign_payload_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_jsonable({"format": "something-else"})

    def test_compose_concatenates_and_overrides(self):
        stacked = self.spec().compose(
            ScenarioSpec(failed_nodes=("e",), locality=0.5)
        )
        assert stacked.failed_links == (("a", "b"),)
        assert stacked.failed_nodes == ("e",)
        assert stacked.surge_factor == 4.0  # kept: other has no surge
        assert stacked.locality == 0.5
        assert stacked.kind == (
            "link_failure+node_failure+flash_crowd+locality_shift"
        )

    def test_composed_spec_applies(self):
        item = NetworkWorkload(
            network=build_square(),
            llpd=1.0,
            matrices=[TrafficMatrix({("a", "c"): Gbps(1)})],
        )
        spec = ScenarioSpec(failed_links=(("a", "b"),)).compose(
            ScenarioSpec(surge_pairs=(("a", "c"),), surge_factor=3.0)
        )
        variant = spec.apply(item)
        assert variant.matrices[0].demand("a", "c") == Gbps(1) * 3.0
        assert variant.network.num_links == item.network.num_links - 2

    def test_baseline_apply_returns_base_unchanged(self):
        item = line_item()
        assert BASELINE.apply(item) is item


# ----------------------------------------------------------------------
# Lazy plans: streamed == materialized, any worker count, fork & spawn
# ----------------------------------------------------------------------
def zoo_base():
    workload = build_zoo_workload(
        n_networks=2, n_matrices=1, seed=7, include_named=False
    )
    return max(workload.networks, key=lambda item: item.network.num_links)


def scenario_plan(schemes=("SP",)):
    # budget=4 samples four 1-link failures: small enough to keep the
    # worker-count sweep fast, large enough that every path (sampling,
    # windowed streaming, resume mid-fleet) is exercised.
    base = zoo_base()
    fleet = ScenarioGenerator(base, seed=11).fleet(link_failure_k=1, budget=4)
    workload = ScenarioWorkload(base, fleet.specs, seed=11)
    plan = EvalPlan()
    for name in schemes:
        plan.add(name, SchemeSpec(name), workload, scheme=name)
    return plan, workload


class TestLazyPlans:
    @pytest.fixture(scope="class")
    def plan_and_workload(self):
        return scenario_plan(schemes=("SP", "ECMP"))

    @pytest.fixture(scope="class")
    def reference(self, plan_and_workload):
        plan, workload = plan_and_workload
        materialized = EvalPlan()
        realized = NetworkListWorkload(list(workload.networks))
        for key, stream in plan.streams.items():
            materialized.add(key, stream.factory, realized, scheme=stream.scheme)
        return execute_plan(materialized, n_workers=1).all_outcomes()

    def test_iter_tasks_matches_materialized_tasks(self, plan_and_workload):
        plan, _ = plan_and_workload
        assert list(plan.iter_tasks()) == plan.tasks()
        assert all(isinstance(task, EvalTask) for task in plan.iter_tasks())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_streamed_equals_materialized_fork(
        self, plan_and_workload, reference, workers
    ):
        plan, _ = plan_and_workload
        report = execute_plan(plan, n_workers=workers)
        assert report.all_outcomes() == reference

    @pytest.mark.parametrize("workers", [2, 4])
    def test_streamed_equals_materialized_spawn(
        self, plan_and_workload, reference, workers, monkeypatch
    ):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        plan, _ = plan_and_workload
        report = execute_plan(plan, n_workers=workers)
        assert report.all_outcomes() == reference

    def test_resume_after_kill_mid_fleet(
        self, plan_and_workload, reference, tmp_path
    ):
        plan, _ = plan_and_workload
        engine = ExperimentEngine(n_workers=1, store_dir=tmp_path)
        stream = engine.stream_plan(plan)
        for _ in range(5):  # "kill" the fleet run after five variants
            next(stream)
        stream.close()
        resumed = execute_plan(plan, store_dir=tmp_path)
        assert resumed.all_outcomes() == reference

    def test_variants_materialize_on_demand(self, plan_and_workload):
        _, workload = plan_and_workload
        assert len(workload.networks) == len(workload.specs)
        item = workload.networks[1]
        assert item.scenario == workload.specs[1].label()
        assert workload.networks[0] is workload.base  # baseline shares base


class NetworkListWorkload:
    """A fully materialized stand-in mirroring ZooWorkload's surface."""

    def __init__(self, networks):
        self.networks = networks
        self.locality = 1.0
        self.growth_factor = 1.3
        self.seed = 11


# ----------------------------------------------------------------------
# Store identity and dispatch parity
# ----------------------------------------------------------------------
class TestStoreAndDispatch:
    def test_content_signature_is_the_store_identity(self):
        _, workload = scenario_plan()
        assert workload_signature(workload) == workload.content_signature(None)
        _, twin = scenario_plan()
        assert workload_signature(twin) == workload_signature(workload)
        shrunk = ScenarioWorkload(workload.base, workload.specs[:-1], seed=11)
        assert workload_signature(shrunk) != workload_signature(workload)

    def test_manifest_round_trips_fleet(self):
        _, workload = scenario_plan()
        payload = json.loads(json.dumps(workload.to_manifest_jsonable()))
        restored = ScenarioWorkload.from_manifest_jsonable(payload)
        assert restored.content_signature(None) == workload.content_signature(
            None
        )

    def test_dispatch_two_shards_matches_in_process(self, tmp_path):
        plan, _ = scenario_plan(schemes=("SP", "ECMP"))
        report = dispatch_plan(
            plan,
            n_shards=2,
            store_dir=tmp_path / "store",
            work_dir=tmp_path / "work",
            verify=True,  # asserts parity with the in-process engine
        )
        shards = sorted((tmp_path / "work" / "manifests").glob("shard-*.json"))
        assert len(shards) == 2
        for path in shards:
            manifest = load_manifest(path)
            assert manifest["scenarios"]  # fleet shipped once, compactly
            assert manifest["task_chunks"]  # tasks are RLE runs
            assert manifest["tasks"] == []  # never the materialized items
        n_variants = len(plan.streams["SP"].workload.specs)
        assert {
            key: len(outcomes)
            for key, outcomes in report.all_outcomes().items()
        } == {"SP": n_variants, "ECMP": n_variants}


# ----------------------------------------------------------------------
# Robustness report
# ----------------------------------------------------------------------
class Outcome:
    def __init__(self, stretch, congested=0.0, util=0.5):
        self.latency_stretch = stretch
        self.congested_fraction = congested
        self.max_utilization = util


class TestReport:
    def payload(self):
        per_scheme = {
            "SP": {
                0: variant_metrics([Outcome(1.0)]),
                1: variant_metrics([Outcome(1.5, congested=0.2)]),
                2: variant_metrics([Outcome(1.2)]),
            },
            "B4": {
                0: variant_metrics([Outcome(1.0)]),
                1: variant_metrics([Outcome(1.1)]),
                2: variant_metrics([Outcome(1.05)]),
            },
        }
        return robustness_payload(
            "toy",
            ["baseline", "fail[a--b]", "fail[b--c]"],
            per_scheme,
            {"link_failure": 1},
            {"baseline": 1, "link_failure": 2},
        )

    def test_ranking_prefers_least_p90_degradation(self):
        payload = self.payload()
        assert payload["ranking"] == ["B4", "SP"]
        assert payload["schemes"]["SP"]["worst_variant"]["label"] == (
            "fail[a--b]"
        )
        assert payload["schemes"]["SP"]["stretch_ratio"]["max"] == 1.5
        assert payload["n_infeasible"] == 1

    def test_variant_metrics_averages_over_matrices(self):
        metrics = variant_metrics([Outcome(1.0), Outcome(2.0)])
        assert metrics["latency_stretch"] == 1.5

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            robustness_payload("toy", ["v"], {"SP": {1: {}}}, {}, {})

    def test_renderings_are_deterministic(self):
        payload = self.payload()
        assert render_json(payload) == render_json(self.payload())
        text = render_text(payload)
        assert "least degradation (p90 stretch ratio): B4" in text
        assert json.loads(render_json(payload))["ranking"] == ["B4", "SP"]

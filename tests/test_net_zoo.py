"""Unit tests for the synthetic topology zoo."""

import numpy as np
import pytest

from repro.net.paths import shortest_path_delays
from repro.net.zoo import (
    CENTRAL_EUROPE,
    clique_network,
    cogent_like,
    generate_zoo,
    globalcenter_like,
    google_like,
    grid_network,
    gts_like,
    ladder_network,
    mesh_network,
    multi_continent_network,
    network_diameter_s,
    ring_network,
    star_network,
    tree_network,
)


def is_connected(network) -> bool:
    source = network.node_names[0]
    return len(shortest_path_delays(network, source)) == network.num_nodes - 1


class TestFamilies:
    def test_tree_has_n_minus_one_physical_links(self, rng):
        net = tree_network(15, rng)
        assert net.num_nodes == 15
        assert net.num_links == 2 * 14  # duplex
        assert is_connected(net)

    def test_star_shape(self, rng):
        net = star_network(9, rng)
        hub = net.node_names[0]
        assert net.degree(hub) == 8
        assert all(net.degree(n) == 1 for n in net.node_names[1:])

    def test_ring_all_degree_two(self, rng):
        net = ring_network(10, rng)
        assert all(net.degree(n) == 2 for n in net.node_names)
        assert is_connected(net)

    def test_ladder(self, rng):
        net = ladder_network(5, rng)
        assert net.num_nodes == 10
        assert is_connected(net)

    def test_grid_structure(self, rng):
        net = grid_network(3, 4, rng, diagonal_fraction=0.0)
        assert net.num_nodes == 12
        # 3x4 grid: 3*3 horizontal + 2*4 vertical physical links.
        assert net.num_links == 2 * (9 + 8)
        assert is_connected(net)

    def test_grid_diagonals_add_links(self, rng):
        base = grid_network(4, 4, np.random.default_rng(1), diagonal_fraction=0.0)
        diag = grid_network(4, 4, np.random.default_rng(1), diagonal_fraction=1.0)
        assert diag.num_links > base.num_links

    def test_mesh_connected_and_denser_than_tree(self, rng):
        net = mesh_network(20, rng, neighbors=3)
        assert is_connected(net)
        assert net.num_links > 2 * 19

    def test_clique_complete(self, rng):
        net = clique_network(6, rng)
        assert net.num_links == 6 * 5

    def test_multi_continent_connected(self, rng):
        net = multi_continent_network(rng, nodes_per_continent=6, n_continents=2)
        assert is_connected(net)
        assert net.num_nodes == 12


class TestNamedReplicas:
    def test_gts_like_deterministic(self):
        a, b = gts_like(), gts_like()
        assert a.num_links == b.num_links
        assert sorted(a.node_names) == sorted(b.node_names)

    def test_gts_like_is_gridlike(self):
        net = gts_like()
        assert net.num_nodes == 24
        assert is_connected(net)

    def test_cogent_like_spans_two_continents(self):
        net = cogent_like()
        # Two continents worth of nodes with distinct region prefixes.
        prefixes = {name.split("-")[0] for name in net.node_names}
        assert len(prefixes) >= 2

    def test_globalcenter_like_is_clique(self):
        net = globalcenter_like()
        n = net.num_nodes
        assert net.num_links == n * (n - 1)

    def test_google_like_high_diversity(self):
        net = google_like()
        assert is_connected(net)
        # Very dense: mean degree well above a grid's.
        assert net.num_links / net.num_nodes > 4


class TestZooEnsemble:
    def test_deterministic(self):
        zoo_a = generate_zoo(10, seed=3)
        zoo_b = generate_zoo(10, seed=3)
        assert [n.name for n in zoo_a] == [n.name for n in zoo_b]
        assert [n.num_links for n in zoo_a] == [n.num_links for n in zoo_b]

    def test_count_and_named(self):
        zoo = generate_zoo(8, seed=0, include_named=True)
        assert len(zoo) == 8 + 3
        names = {n.name for n in zoo}
        assert "gts-like" in names and "cogent-like" in names

    def test_without_named(self):
        assert len(generate_zoo(5, seed=0, include_named=False)) == 5

    def test_all_connected(self):
        for net in generate_zoo(14, seed=7):
            assert is_connected(net), net.name

    def test_rejects_zero_networks(self):
        with pytest.raises(ValueError):
            generate_zoo(0)

    def test_diameters_exceed_10ms(self):
        # The paper filters to networks with diameter > 10 ms; our zoo
        # should (almost) always satisfy this by construction.
        zoo = generate_zoo(10, seed=1, include_named=False)
        diameters = [network_diameter_s(net) for net in zoo]
        assert sum(1 for d in diameters if d > 10e-3) >= 8


class TestDiameter:
    def test_line(self, line4):
        assert network_diameter_s(line4) == pytest.approx(3e-3)

    def test_triangle(self, triangle):
        assert network_diameter_s(triangle) == pytest.approx(1e-3)

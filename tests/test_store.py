"""Tests for the durable result store: signatures, resume, rejection,
torn-line recovery and stored-vs-recomputed equality."""

import dataclasses
import json

import pytest

from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import evaluate_scheme
from repro.experiments.store import (
    ResultStore,
    StoreMismatchError,
    StoreMissError,
    scheme_file_name,
    workload_signature,
)
from repro.experiments.workloads import ZooWorkload, build_zoo_workload
from repro.routing import ShortestPathRouting

N_NETWORKS = 6
N_MATRICES = 2


@pytest.fixture(scope="module")
def workload():
    return build_zoo_workload(
        n_networks=N_NETWORKS, n_matrices=N_MATRICES, seed=7, include_named=False
    )


@pytest.fixture(scope="module")
def reference_outcomes(workload):
    """Outcomes of a plain storeless run, the ground truth for equality."""
    return evaluate_scheme(lambda item: ShortestPathRouting(item.cache), workload)


class CountingFactory:
    """Scheme factory that counts how many networks were actually built."""

    def __init__(self):
        self.calls = 0

    def __call__(self, item):
        self.calls += 1
        return ShortestPathRouting(item.cache)


class TestWorkloadSignature:
    def test_deterministic_across_rebuilds(self, workload):
        rebuilt = build_zoo_workload(
            n_networks=N_NETWORKS,
            n_matrices=N_MATRICES,
            seed=7,
            include_named=False,
        )
        assert workload_signature(workload) == workload_signature(rebuilt)

    def test_demand_perturbation_changes_signature(self, workload):
        item = workload.networks[0]
        perturbed = dataclasses.replace(
            item, matrices=[item.matrices[0].scaled(1.01)] + item.matrices[1:]
        )
        other = ZooWorkload(
            networks=[perturbed] + workload.networks[1:],
            locality=workload.locality,
            growth_factor=workload.growth_factor,
            seed=workload.seed,
        )
        assert workload_signature(workload) != workload_signature(other)

    def test_truncation_and_shaping_params_keyed(self, workload):
        base = workload_signature(workload)
        assert workload_signature(workload, matrices_per_network=1) != base
        reseeded = ZooWorkload(
            networks=workload.networks,
            locality=workload.locality,
            growth_factor=workload.growth_factor,
            seed=999,
        )
        assert workload_signature(reseeded) != base

    def test_scheme_file_name_sanitized(self):
        assert scheme_file_name("LDR@h=0.11") == "LDR@h=0.11.jsonl"
        assert scheme_file_name("a/b c").startswith("a_b_c-")
        with pytest.raises(ValueError):
            scheme_file_name("")

    def test_sanitization_collisions_get_distinct_streams(
        self, workload, tmp_path
    ):
        # "a/b" sanitizes to "a_b"; without disambiguation the two keys
        # would clobber each other's streams on every alternating run.
        assert scheme_file_name("a/b") != scheme_file_name("a_b")
        for scheme in ("a/b", "a_b"):
            ExperimentEngine(store_dir=tmp_path).run(
                CountingFactory(), workload, scheme=scheme
            )
        served = CountingFactory()
        ExperimentEngine(store_dir=tmp_path).run(
            served, workload, scheme="a/b"
        )
        assert served.calls == 0  # still fully stored, not clobbered


class TestResume:
    def test_restart_after_kill_evaluates_only_missing(
        self, workload, tmp_path, reference_outcomes
    ):
        engine = ExperimentEngine(n_workers=1, store_dir=tmp_path)
        first = CountingFactory()
        stream = engine.stream(first, workload, scheme="SP")
        for _ in range(2):  # "kill" the run after two networks
            next(stream)
        stream.close()
        assert first.calls == 2

        second = CountingFactory()
        report = ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            second, workload, scheme="SP"
        )
        assert second.calls == N_NETWORKS - 2
        assert report.outcomes == reference_outcomes

    def test_fully_stored_run_builds_no_scheme(
        self, workload, tmp_path, reference_outcomes
    ):
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        served = CountingFactory()
        report = ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            served, workload, scheme="SP"
        )
        assert served.calls == 0
        assert report.outcomes == reference_outcomes

    def test_no_resume_discards_and_recomputes(self, workload, tmp_path):
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        factory = CountingFactory()
        ExperimentEngine(n_workers=1, store_dir=tmp_path, resume=False).run(
            factory, workload, scheme="SP"
        )
        assert factory.calls == N_NETWORKS

    def test_store_run_requires_scheme_name(self, workload, tmp_path):
        engine = ExperimentEngine(n_workers=1, store_dir=tmp_path)
        with pytest.raises(ValueError):
            engine.run(CountingFactory(), workload)

    def test_schemes_stored_in_separate_streams(self, workload, tmp_path):
        store = ResultStore(tmp_path)
        signature = workload_signature(workload)
        ExperimentEngine(store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="A"
        )
        ExperimentEngine(store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="B"
        )
        assert store.stream_path(signature, "A").exists()
        assert store.stream_path(signature, "B").exists()


class TestRejection:
    def tampered_stream(self, workload, tmp_path, mutate):
        """Run once, apply ``mutate`` to the stream file, return its path."""
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        signature = workload_signature(workload)
        path = ResultStore(tmp_path).stream_path(signature, "SP")
        mutate(path)
        return signature, path

    def test_mismatched_header_signature_rejected(self, workload, tmp_path):
        def swap_signature(path):
            lines = path.read_text().splitlines()
            header = json.loads(lines[0])
            header["signature"] = "0" * 64
            path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")

        signature, _ = self.tampered_stream(workload, tmp_path, swap_signature)
        with pytest.raises(StoreMismatchError):
            ResultStore(tmp_path).load_results(signature, "SP")

    def test_headerless_stream_rejected(self, workload, tmp_path):
        def drop_header(path):
            lines = path.read_text().splitlines()
            path.write_text("\n".join(lines[1:]) + "\n")

        signature, _ = self.tampered_stream(workload, tmp_path, drop_header)
        with pytest.raises(StoreMismatchError):
            ResultStore(tmp_path).load_results(signature, "SP")

    def test_engine_never_trusts_mismatched_stream(self, workload, tmp_path):
        def swap_signature(path):
            lines = path.read_text().splitlines()
            header = json.loads(lines[0])
            header["signature"] = "0" * 64
            path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")

        self.tampered_stream(workload, tmp_path, swap_signature)
        factory = CountingFactory()
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            factory, workload, scheme="SP"
        )
        # The tampered stream is discarded wholesale and rebuilt.
        assert factory.calls == N_NETWORKS

    def test_changed_workload_misses_by_key(self, workload, tmp_path):
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        other = build_zoo_workload(
            n_networks=N_NETWORKS,
            n_matrices=N_MATRICES,
            seed=8,  # different ensemble, different signature
            include_named=False,
        )
        factory = CountingFactory()
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            factory, other, scheme="SP"
        )
        assert factory.calls == N_NETWORKS


class TestTornLineRecovery:
    def stream_path(self, workload, tmp_path):
        return ResultStore(tmp_path).stream_path(
            workload_signature(workload), "SP"
        )

    def test_truncated_trailing_record_recomputed(
        self, workload, tmp_path, reference_outcomes
    ):
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        path = self.stream_path(workload, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-20])  # tear the last record mid-write

        factory = CountingFactory()
        report = ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            factory, workload, scheme="SP"
        )
        assert factory.calls == 1  # only the torn network
        assert report.outcomes == reference_outcomes
        # The repaired stream is fully valid again.
        assert all(
            json.loads(line) for line in path.read_text().splitlines()
        )

    def test_garbage_tail_truncated_before_appending(
        self, workload, tmp_path, reference_outcomes
    ):
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        path = self.stream_path(workload, tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "result", "index"')  # torn, no newline

        factory = CountingFactory()
        report = ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            factory, workload, scheme="SP"
        )
        assert factory.calls == 0  # every whole record survived
        assert report.outcomes == reference_outcomes


class TestStoredEqualsRecomputed:
    def test_across_worker_counts(self, workload, tmp_path, reference_outcomes):
        stored_parallel = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache),
            workload,
            n_workers=4,
            store_dir=tmp_path,
            scheme="SP",
        )
        assert stored_parallel == reference_outcomes
        served_serial = evaluate_scheme(
            lambda item: ShortestPathRouting(item.cache),
            workload,
            n_workers=1,
            store_dir=tmp_path,
            scheme="SP",
        )
        assert served_serial == reference_outcomes

    def test_store_only_serves_without_evaluating(
        self, workload, tmp_path, reference_outcomes
    ):
        with pytest.raises(StoreMissError):
            ExperimentEngine(store_dir=tmp_path, store_only=True).run(
                CountingFactory(), workload, scheme="SP"
            )
        ExperimentEngine(n_workers=1, store_dir=tmp_path).run(
            CountingFactory(), workload, scheme="SP"
        )
        factory = CountingFactory()
        report = ExperimentEngine(store_dir=tmp_path, store_only=True).run(
            factory, workload, scheme="SP"
        )
        assert factory.calls == 0
        assert report.outcomes == reference_outcomes

    def test_store_only_requires_store_dir(self):
        with pytest.raises(ValueError):
            ExperimentEngine(store_only=True)


class TestCli:
    def run_cli(self, argv):
        from repro.experiments.__main__ import main

        return main(argv)

    def test_run_then_render_round_trip(self, tmp_path, capsys):
        argv = ["fig03", "--networks", "3", "--tms", "1",
                "--store-dir", str(tmp_path)]
        assert self.run_cli(argv) == 0
        first = capsys.readouterr().out
        assert self.run_cli(["render"] + argv) == 0
        rendered = capsys.readouterr().out
        assert rendered == first

    def test_render_missing_results_fails(self, tmp_path, capsys):
        code = self.run_cli(
            ["render", "fig03", "--networks", "3", "--tms", "1",
             "--store-dir", str(tmp_path)]
        )
        assert code == 1
        assert "result store" in capsys.readouterr().err

    def test_render_requires_store_dir(self, capsys):
        assert self.run_cli(["render", "fig03"]) == 2

    def test_render_rejects_non_store_figure(self, tmp_path, capsys):
        code = self.run_cli(
            ["render", "fig09", "--store-dir", str(tmp_path)]
        )
        assert code == 2


class TestLifecycleTooling:
    """`store ls` / `store gc`: stream listing and signature-dir pruning."""

    def populate(self, store_dir, workload, schemes=("SP",)):
        for scheme in schemes:
            evaluate_scheme(
                lambda item: ShortestPathRouting(item.cache),
                workload,
                store_dir=store_dir,
                scheme=scheme,
            )
        return workload_signature(workload)

    def test_list_streams_reports_counts(self, workload, tmp_path):
        signature = self.populate(tmp_path, workload, schemes=("SP", "SP2"))
        records = ResultStore(tmp_path).list_streams()
        assert len(records) == 2
        assert {r["scheme"] for r in records} == {"SP", "SP2"}
        for record in records:
            assert record["signature"] == signature
            assert record["n_results"] == N_NETWORKS
            assert record["n_networks"] == N_NETWORKS
            assert record["bytes"] > 0

    def test_list_streams_flags_headerless_files(self, workload, tmp_path):
        self.populate(tmp_path, workload)
        stream = next(tmp_path.glob("*/*.jsonl"))
        stream.write_text("{not json\n")
        record = ResultStore(tmp_path).list_streams()[0]
        assert record["scheme"] is None
        assert record["n_results"] == 0

    def test_list_streams_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / "nothing").list_streams() == []

    def test_gc_without_criteria_removes_nothing(self, workload, tmp_path):
        self.populate(tmp_path, workload)
        assert ResultStore(tmp_path).gc() == []
        assert list(tmp_path.glob("*/*.jsonl"))

    def test_gc_by_age(self, workload, tmp_path):
        import os
        import time

        signature = self.populate(tmp_path, workload)
        store = ResultStore(tmp_path)
        now = time.time()
        # A young stream survives any positive age bound...
        assert store.gc(max_age_s=3600.0, now=now) == []
        # ...and an old one is pruned together with its directory.
        for path in (tmp_path / signature).glob("*"):
            os.utime(path, (now - 7200.0, now - 7200.0))
        removed = store.gc(max_age_s=3600.0, now=now)
        assert removed == [str(tmp_path / signature)]
        assert not (tmp_path / signature).exists()

    def test_gc_keep_protects_from_age_bound(self, workload, tmp_path):
        import os
        import time

        signature = self.populate(tmp_path, workload)
        now = time.time()
        for path in (tmp_path / signature).glob("*"):
            os.utime(path, (now - 7200.0, now - 7200.0))
        # An explicitly kept signature survives even past the age bound:
        # the allow-list is absolute protection, not one more filter.
        removed = ResultStore(tmp_path).gc(
            max_age_s=3600.0, keep_signatures={signature}, now=now
        )
        assert removed == []
        assert (tmp_path / signature).is_dir()

    def test_gc_keep_signatures(self, workload, tmp_path):
        signature = self.populate(tmp_path, workload)
        other = tmp_path / ("0" * 8)
        other.mkdir()
        (other / "SP.jsonl").write_text("{}\n")
        store = ResultStore(tmp_path)
        removed = store.gc(keep_signatures={signature})
        assert removed == [str(other)]
        assert (tmp_path / signature).is_dir()

    def test_cli_ls_and_gc(self, workload, tmp_path, capsys):
        from repro.experiments.__main__ import main

        signature = self.populate(tmp_path, workload)
        stale = tmp_path / "deadbeef"
        stale.mkdir()
        (stale / "SP.jsonl").write_text("{}\n")

        assert main(["store", "ls", "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert signature[:16] in out and "SP" in out

        assert main(
            ["store", "gc", "--store-dir", str(tmp_path),
             "--keep", signature]
        ) == 0
        assert "pruned" in capsys.readouterr().out
        assert not stale.exists()
        assert (tmp_path / signature).is_dir()

    def test_cli_gc_requires_a_criterion(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["store", "gc", "--store-dir", str(tmp_path)]) == 2
        assert "refusing" in capsys.readouterr().err

    def test_cli_ls_timings_column(self, workload, tmp_path, capsys):
        from repro.experiments.__main__ import main

        signature = self.populate(tmp_path, workload)
        assert main(
            ["store", "ls", "--store-dir", str(tmp_path), "--timings"]
        ) == 0
        out = capsys.readouterr().out
        assert signature[:16] in out
        assert "s total" in out and "s mean" in out

    def test_cli_ls_timings_tolerates_headerless_stream(
        self, tmp_path, capsys
    ):
        from repro.experiments.__main__ import main

        broken = tmp_path / "deadbeef"
        broken.mkdir()
        (broken / "SP.jsonl").write_text("{}\n")
        assert main(
            ["store", "ls", "--store-dir", str(tmp_path), "--timings"]
        ) == 0
        assert "<no timings>" in capsys.readouterr().out

    def test_cli_gc_match_workload(self, workload, tmp_path, capsys):
        from repro.experiments.__main__ import main

        # Populate the store through the CLI so the kept signature is the
        # one --match-workload recomputes from the same arguments.
        argv = ["fig03", "--networks", "3", "--tms", "1",
                "--store-dir", str(tmp_path)]
        assert main(argv) == 0
        stale = tmp_path / "deadbeef"
        stale.mkdir()
        (stale / "SP.jsonl").write_text("{}\n")
        assert main(
            ["store", "gc", "--store-dir", str(tmp_path),
             "--networks", "3", "--tms", "1", "--match-workload"]
        ) == 0
        capsys.readouterr()
        assert not stale.exists()
        assert list(tmp_path.glob("*/SP.jsonl"))


class TestTimingReplay:
    """The store's timing facet: what cost-aware scheduling replays."""

    def populate(self, store_dir, workload):
        engine = ExperimentEngine(n_workers=1, store_dir=store_dir)
        results = list(
            engine.stream(
                lambda item: ShortestPathRouting(item.cache),
                workload,
                scheme="SP",
            )
        )
        return workload_signature(workload), sorted(
            results, key=lambda r: r.index
        )

    def test_stream_timings_match_stored_results(self, workload, tmp_path):
        signature, results = self.populate(tmp_path, workload)
        timings = ResultStore(tmp_path).stream_timings(signature, "SP")
        assert [t.index for t in timings] == [r.index for r in results]
        assert [t.seconds for t in timings] == [r.seconds for r in results]
        assert [t.network_id for t in timings] == [
            r.network_id for r in results
        ]

    def test_network_signature_round_trips(self, workload, tmp_path):
        from repro.net.paths import network_signature

        signature, results = self.populate(tmp_path, workload)
        # Fresh results carry the content hash...
        expected = [
            network_signature(item.network) for item in workload.networks
        ]
        assert [r.network_signature for r in results] == expected
        # ...and both readers round-trip it from disk.
        stored = ResultStore(tmp_path).load_results(signature, "SP")
        assert [stored[i].network_signature for i in sorted(stored)] \
            == expected
        timings = ResultStore(tmp_path).stream_timings(signature, "SP")
        assert [t.network_signature for t in timings] == expected

    def test_pre_signature_records_replay_as_unknown(
        self, workload, tmp_path
    ):
        # Streams written before network signatures existed lack the
        # field; timings still parse, with an empty signature.
        signature, _ = self.populate(tmp_path, workload)
        store = ResultStore(tmp_path)
        path = store.stream_path(signature, "SP")
        lines = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            record.pop("network_signature", None)
            lines.append(json.dumps(record, separators=(",", ":")))
        path.write_text("\n".join(lines) + "\n")
        timings = store.stream_timings(signature, "SP")
        assert len(timings) == len(workload.networks)
        assert all(t.network_signature == "" for t in timings)
        assert all(t.seconds >= 0.0 for t in timings)

    def test_stream_timings_missing_stream_is_empty(self, tmp_path):
        assert ResultStore(tmp_path).stream_timings("0" * 64, "SP") == []

    def test_stream_timings_rejects_mismatched_header(
        self, workload, tmp_path
    ):
        import shutil

        signature, _ = self.populate(tmp_path, workload)
        store = ResultStore(tmp_path)
        moved_dir = tmp_path / ("f" * len(signature))
        moved_dir.mkdir()
        shutil.copy(
            store.stream_path(signature, "SP"), moved_dir / "SP.jsonl"
        )
        with pytest.raises(StoreMismatchError):
            store.stream_timings("f" * len(signature), "SP")

    def test_iter_timings_skips_invalid_streams(self, workload, tmp_path):
        signature, _ = self.populate(tmp_path, workload)
        broken = tmp_path / "deadbeef"
        broken.mkdir()
        (broken / "SP.jsonl").write_text("not json\n")
        streams = list(ResultStore(tmp_path).iter_timings())
        assert [(s, scheme) for s, scheme, _ in streams] \
            == [(signature, "SP")]
        assert len(streams[0][2]) == len(workload.networks)

    def test_iter_timings_truncates_at_torn_tail(self, workload, tmp_path):
        signature, _ = self.populate(tmp_path, workload)
        path = ResultStore(tmp_path).stream_path(signature, "SP")
        with open(path, "a") as handle:
            handle.write('{"kind": "result", "index": 99, "secon')
        _, _, timings = next(iter(ResultStore(tmp_path).iter_timings()))
        assert [t.index for t in timings] \
            == list(range(len(workload.networks)))

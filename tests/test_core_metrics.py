"""Unit tests for APA and LLPD."""

import pytest

from repro.core.metrics import (
    ApaParameters,
    apa_all_pairs,
    apa_cdf,
    llpd,
    llpd_from_apa,
    pair_apa,
)
from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms


class TestApaParameters:
    def test_defaults(self):
        params = ApaParameters()
        assert params.stretch_limit == 1.4
        assert params.llpd_threshold == 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            ApaParameters(stretch_limit=0.9)
        with pytest.raises(ValueError):
            ApaParameters(max_alternates=0)
        with pytest.raises(ValueError):
            ApaParameters(llpd_threshold=1.5)


class TestPairApa:
    def test_line_has_zero_apa(self, line4):
        # No alternates exist anywhere on a chain.
        assert pair_apa(line4, "n0", "n3") == 0.0

    def test_triangle_full_apa(self, triangle):
        # The single link a->b can be routed around via c at stretch 2.0.
        generous = ApaParameters(stretch_limit=2.0)
        assert pair_apa(triangle, "a", "b", generous) == 1.0

    def test_triangle_stretch_limit_binds(self, triangle):
        # Stretch 2.0 exceeds the default 1.4 limit.
        assert pair_apa(triangle, "a", "b") == 0.0

    def test_capacity_gates_viability(self):
        """An alternate thinner than the shortest path's bottleneck does
        not count, per the paper's 1 Gb/s vs 100 Gb/s example."""
        net = Network("thin-alt")
        for name in ("s", "t", "alt"):
            net.add_node(Node(name))
        net.add_duplex_link("s", "t", Gbps(100), ms(10))
        net.add_duplex_link("s", "alt", Gbps(1), ms(5))
        net.add_duplex_link("alt", "t", Gbps(1), ms(6))
        assert pair_apa(net, "s", "t") == 0.0
        # With a fat alternate it becomes routable-around.
        fat = Network("fat-alt")
        for name in ("s", "t", "alt"):
            fat.add_node(Node(name))
        fat.add_duplex_link("s", "t", Gbps(100), ms(10))
        fat.add_duplex_link("s", "alt", Gbps(100), ms(5))
        fat.add_duplex_link("alt", "t", Gbps(100), ms(6))
        assert pair_apa(fat, "s", "t") == 1.0

    def test_multiple_alternates_combine_capacity(self):
        """Two thin alternates whose min-cut jointly reaches the required
        bottleneck count, with the delay of the n-th path."""
        net = Network("combine")
        for name in ("s", "t", "p", "q"):
            net.add_node(Node(name))
        net.add_duplex_link("s", "t", Gbps(10), ms(10))
        # Two disjoint 5G alternates within the stretch budget.
        net.add_duplex_link("s", "p", Gbps(5), ms(5))
        net.add_duplex_link("p", "t", Gbps(5), ms(6))
        net.add_duplex_link("s", "q", Gbps(5), ms(6))
        net.add_duplex_link("q", "t", Gbps(5), ms(7))
        assert pair_apa(net, "s", "t") == 1.0

    def test_combined_capacity_insufficient(self):
        net = Network("insufficient")
        for name in ("s", "t", "p"):
            net.add_node(Node(name))
        net.add_duplex_link("s", "t", Gbps(10), ms(10))
        net.add_duplex_link("s", "p", Gbps(5), ms(5))
        net.add_duplex_link("p", "t", Gbps(5), ms(6))
        assert pair_apa(net, "s", "t") == 0.0

    def test_partial_apa(self):
        """Only some links on the shortest path can be routed around."""
        net = Network("partial")
        for name in ("s", "m", "t", "d"):
            net.add_node(Node(name))
        net.add_duplex_link("s", "m", Gbps(10), ms(10))
        net.add_duplex_link("m", "t", Gbps(10), ms(10))
        # Detour only around the first hop.
        net.add_duplex_link("s", "d", Gbps(10), ms(5))
        net.add_duplex_link("d", "m", Gbps(10), ms(6))
        assert pair_apa(net, "s", "t") == pytest.approx(0.5)


class TestNetworkLevel:
    def test_all_pairs_cover(self, triangle):
        values = apa_all_pairs(triangle)
        assert len(values) == 6

    def test_apa_cdf_sorted(self, gts):
        cdf = apa_cdf(apa_all_pairs(gts))
        assert (cdf[:-1] <= cdf[1:]).all()
        assert 0.0 <= cdf[0] and cdf[-1] <= 1.0

    def test_llpd_class_ordering(self, rng):
        """The paper's qualitative ranking: trees ~ 0, rings mid,
        grids/meshes high."""
        from repro.net.zoo import grid_network, ring_network, tree_network

        tree = tree_network(14, rng)
        ring = ring_network(12, rng)
        grid = grid_network(4, 5, rng)
        assert llpd(tree) == 0.0
        assert llpd(tree) <= llpd(ring) <= llpd(grid)
        assert llpd(grid) > 0.4

    def test_llpd_from_apa_matches(self, gts):
        values = apa_all_pairs(gts)
        assert llpd_from_apa(values) == pytest.approx(llpd(gts))

    def test_llpd_empty_rejected(self):
        net = Network("lonely")
        net.add_node(Node("a"))
        with pytest.raises(ValueError):
            llpd(net)

    def test_llpd_threshold_monotone(self, gts):
        values = apa_all_pairs(gts)
        strict = llpd_from_apa(values, threshold=0.9)
        loose = llpd_from_apa(values, threshold=0.5)
        assert strict <= loose

    def test_google_has_highest_llpd(self):
        """Figure 19: the Google-like network tops the zoo."""
        from repro.net.zoo import google_like, gts_like

        assert llpd(google_like()) > llpd(gts_like())
        assert llpd(google_like()) > 0.75

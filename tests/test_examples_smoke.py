"""Smoke tests: the example scripts run to completion.

Only the fast examples run here (the full set is exercised manually /
in CI with more time); each is executed in-process with its module
namespace so failures surface as ordinary assertion errors.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    sys.path.insert(0, str(EXAMPLES.parent))
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.path.pop(0)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "LLPD" in out
        assert "LatencyOptimal" in out

    def test_b4_pathologies(self, capsys):
        out = run_example("b4_pathologies.py", capsys)
        assert "Figure 5" in out and "Figure 6" in out
        assert "stranded" in out

    def test_growth_planning(self, capsys):
        out = run_example("growth_planning.py", capsys)
        assert "delay saved" in out

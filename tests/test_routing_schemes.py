"""Behavioural tests for the routing schemes on hand-built networks."""

import numpy as np
import pytest

from repro.net.graph import Network, Node
from repro.net.paths import KspCache
from repro.net.units import Gbps, ms
from repro.routing import (
    B4Routing,
    LatencyOptimalRouting,
    LinkBasedOptimalRouting,
    MinMaxRouting,
    ShortestPathRouting,
)
from repro.tm.matrix import TrafficMatrix


class TestShortestPath:
    def test_everything_on_shortest(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(1)})
        placement = ShortestPathRouting().place(diamond, tm)
        agg = placement.aggregates[0]
        assert placement.paths_for(agg)[0].path == ("s", "x", "t")
        assert placement.total_latency_stretch() == pytest.approx(1.0)

    def test_oblivious_to_overload(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(20)})
        placement = ShortestPathRouting().place(diamond, tm)
        assert placement.congested_pair_fraction() == 1.0
        assert placement.max_utilization() == pytest.approx(2.0)


class TestLatencyOptimal:
    def test_uses_shortest_when_it_fits(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(5)})
        placement = LatencyOptimalRouting().place(diamond, tm)
        assert placement.total_latency_stretch() == pytest.approx(1.0)
        assert placement.max_utilization() <= 1.0 + 1e-6

    def test_spills_over_when_needed(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(20)})
        placement = LatencyOptimalRouting().place(diamond, tm)
        assert placement.fits_all_traffic
        assert placement.max_utilization() <= 1.0 + 1e-4
        agg = placement.aggregates[0]
        fractions = {
            alloc.path: alloc.fraction for alloc in placement.paths_for(agg)
        }
        # Fast path saturated (10 of 20), the rest on the slow route.
        assert fractions[("s", "x", "t")] == pytest.approx(0.5, abs=0.01)
        assert fractions[("s", "y", "t")] == pytest.approx(0.5, abs=0.01)

    def test_headroom_shifts_traffic_earlier(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(10)})
        without = LatencyOptimalRouting().place(diamond, tm)
        with_headroom = LatencyOptimalRouting(headroom=0.2).place(diamond, tm)
        # With 20% headroom the 10G fast path only offers 8G.
        assert with_headroom.total_latency_stretch() > without.total_latency_stretch()
        # But real capacity is never exceeded.
        assert with_headroom.max_utilization() <= 1.0 + 1e-6

    def test_overload_spread_when_unroutable(self, line4):
        tm = TrafficMatrix({("n0", "n3"): Gbps(15)})
        placement = LatencyOptimalRouting().place(line4, tm)
        assert not placement.fits_all_traffic
        assert placement.max_utilization() == pytest.approx(1.5)

    def test_invalid_headroom_rejected(self):
        with pytest.raises(ValueError):
            LatencyOptimalRouting(headroom=1.0)

    def test_prefers_moving_long_rtt_aggregate(self):
        """The paper's M1 tie-break: when two aggregates compete for a
        shared bottleneck and either could detour at equal total delay
        cost, the one with the larger shortest-path RTT moves."""
        net = Network("tiebreak")
        for name in ("a1", "a2", "m", "t", "d1", "d2"):
            net.add_node(Node(name))
        # Short aggregate a1->t; long aggregate a2->t (longer feeder).
        net.add_duplex_link("a1", "m", Gbps(10), ms(1))
        net.add_duplex_link("a2", "m", Gbps(10), ms(10))
        net.add_duplex_link("m", "t", Gbps(10), ms(1))  # shared bottleneck
        # Equal-delay-penalty detours for both.
        net.add_duplex_link("a1", "d1", Gbps(10), ms(1))
        net.add_duplex_link("d1", "t", Gbps(10), ms(2))
        net.add_duplex_link("a2", "d2", Gbps(10), ms(10))
        net.add_duplex_link("d2", "t", Gbps(10), ms(2))
        tm = TrafficMatrix({("a1", "t"): Gbps(8), ("a2", "t"): Gbps(8)})
        placement = LatencyOptimalRouting().place(net, tm)
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        stretches = placement.per_aggregate_stretch()
        # Both detours cost +1 ms of extra delay; the tie-break should
        # detour more of the long-RTT aggregate a2 than of a1.
        a1_detour = sum(
            alloc.fraction
            for alloc in placement.paths_for(by_pair[("a1", "t")])
            if "d1" in alloc.path
        )
        a2_detour = sum(
            alloc.fraction
            for alloc in placement.paths_for(by_pair[("a2", "t")])
            if "d2" in alloc.path
        )
        assert a2_detour > a1_detour
        assert stretches[by_pair[("a1", "t")]] <= stretches[by_pair[("a2", "t")]] * 6


class TestMinMax:
    def test_balances_across_equal_paths(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(10)})
        placement = MinMaxRouting().place(diamond, tm)
        # MinMax spreads: max utilization should be 10/(10+40) normalized
        # by per-path capacity -> the LP pushes most to the fat path.
        assert placement.max_utilization() == pytest.approx(0.2, abs=0.01)

    def test_no_congestion_when_routable(self, gts, gts_tm):
        placement = MinMaxRouting().place(gts, gts_tm)
        assert placement.congested_pair_fraction() == 0.0
        assert placement.max_utilization() == pytest.approx(1 / 1.3, rel=0.01)

    def test_k_restriction_can_cost_capacity(self):
        """With k=1 MinMax degenerates to shortest-path and can congest."""
        net = Network("two-route")
        for name in ("s", "m", "t"):
            net.add_node(Node(name))
        net.add_duplex_link("s", "m", Gbps(10), ms(1))
        net.add_duplex_link("m", "t", Gbps(10), ms(1))
        net.add_duplex_link("s", "t", Gbps(10), ms(5))
        tm = TrafficMatrix({("s", "t"): Gbps(15)})
        restricted = MinMaxRouting(k=1).place(net, tm)
        assert restricted.max_utilization() > 1.0
        full = MinMaxRouting().place(net, tm)
        assert full.max_utilization() <= 1.0 + 1e-6

    def test_latency_tiebreak_avoids_needless_detours(self, diamond):
        # Lightly loaded: even MinMax has no reason to use the slow path
        # beyond what utilization demands; latency tie-break keeps most
        # traffic fast when utilizations tie at tiny values.
        tm = TrafficMatrix({("s", "t"): Gbps(1)})
        placement = MinMaxRouting().place(diamond, tm)
        assert placement.max_utilization() <= 0.05

    def test_matches_linkbased_utilization(self, gts, gts_tm):
        """Iterative path-based MinMax reaches the exact optimum computed
        by the link-based LP (the reciprocal concurrent-flow bound)."""
        from repro.routing.minmax import optimal_max_utilization

        scheme = MinMaxRouting()
        placement = scheme.place(gts, gts_tm)
        target = optimal_max_utilization(gts, gts_tm)
        assert scheme.last_max_utilization == pytest.approx(target, rel=2e-3)
        assert placement.max_utilization() <= target * 1.01

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            MinMaxRouting(k=0)


class TestB4:
    def test_single_aggregate_on_shortest(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(5)})
        placement = B4Routing().place(diamond, tm)
        agg = placement.aggregates[0]
        assert placement.paths_for(agg)[0].path == ("s", "x", "t")

    def test_progressive_filling_spills(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(30)})
        placement = B4Routing().place(diamond, tm)
        assert placement.fits_all_traffic
        loads = placement.link_loads_bps()
        assert loads[("s", "x")] == pytest.approx(Gbps(10), rel=0.01)
        assert loads[("s", "y")] == pytest.approx(Gbps(20), rel=0.01)

    def test_forces_residual_onto_shortest_when_stuck(self, line4):
        tm = TrafficMatrix({("n0", "n3"): Gbps(15)})
        placement = B4Routing().place(line4, tm)
        assert not placement.fits_all_traffic
        assert placement.max_utilization() == pytest.approx(1.5)

    def test_equal_sharing_at_bottleneck(self):
        net = Network("shared")
        for name in ("s1", "s2", "m", "t"):
            net.add_node(Node(name))
        net.add_duplex_link("s1", "m", Gbps(10), ms(1))
        net.add_duplex_link("s2", "m", Gbps(10), ms(1))
        net.add_duplex_link("m", "t", Gbps(10), ms(1))
        tm = TrafficMatrix({("s1", "t"): Gbps(10), ("s2", "t"): Gbps(10)})
        placement = B4Routing().place(net, tm)
        loads = placement.link_loads_bps()
        # Both aggregates waterfill the shared m->t link equally until it
        # fills; the rest cannot be placed anywhere (no alternates).
        assert loads[("s1", "m")] == pytest.approx(loads[("s2", "m")], rel=0.01)
        assert not placement.fits_all_traffic

    def test_headroom_reserves_capacity(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(10)})
        placement = B4Routing(headroom=0.2).place(diamond, tm)
        loads = placement.link_loads_bps()
        # First pass fills the fast path only to 80%; the spill goes to
        # the slow path (or back into headroom on the second pass).
        assert loads[("s", "x")] <= Gbps(10) + 1.0
        assert placement.fits_all_traffic

    def test_invalid_headroom_rejected(self):
        with pytest.raises(ValueError):
            B4Routing(headroom=-0.1)


class TestLinkBased:
    def test_matches_pathbased_stretch(self, gts, gts_tm):
        """The link-based LP is the exact optimum; the paper's iterative
        path growth should land within a percent of it (and never beat
        it, since the link-based model sees every path implicitly)."""
        cache = KspCache(gts)
        path_based = LatencyOptimalRouting(cache=cache).place(gts, gts_tm)
        link_based = LinkBasedOptimalRouting().place(gts, gts_tm)
        exact = link_based.total_latency_stretch()
        iterative = path_based.total_latency_stretch()
        assert exact <= iterative + 1e-6
        assert iterative == pytest.approx(exact, rel=0.01)
        assert link_based.max_utilization() <= 1.0 + 1e-4

    def test_simple_split(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(20)})
        placement = LinkBasedOptimalRouting().place(diamond, tm)
        assert placement.fits_all_traffic
        loads = placement.link_loads_bps()
        assert loads[("s", "x")] == pytest.approx(Gbps(10), rel=0.01)
        assert loads[("s", "y")] == pytest.approx(Gbps(10), rel=0.01)

"""Unit tests for geographic helpers."""

import numpy as np
import pytest

from repro.net.geo import (
    EARTH_RADIUS_KM,
    FIBRE_SPEED_KM_PER_S,
    great_circle_km,
    great_circle_km_many,
    link_delay_s,
    propagation_delay_s,
)


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle_km(51.5, 0.0, 51.5, 0.0) == 0.0

    def test_london_new_york(self):
        # Known reference: ~5570 km.
        distance = great_circle_km(51.5074, -0.1278, 40.7128, -74.0060)
        assert distance == pytest.approx(5570, rel=0.02)

    def test_quarter_circumference(self):
        # Pole to equator along a meridian.
        distance = great_circle_km(90.0, 0.0, 0.0, 0.0)
        import math

        assert distance == pytest.approx(math.pi * EARTH_RADIUS_KM / 2, rel=1e-6)

    def test_symmetry(self):
        d1 = great_circle_km(48.85, 2.35, 52.52, 13.40)
        d2 = great_circle_km(52.52, 13.40, 48.85, 2.35)
        assert d1 == pytest.approx(d2)

    def test_antipodal_is_half_circumference(self):
        import math

        distance = great_circle_km(0.0, 0.0, 0.0, 180.0)
        assert distance == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_vectorized_matches_scalar(self):
        # The region-clustering fast path must agree with the scalar
        # haversine to float64 rounding.
        lats = np.array([51.5074, 40.7128, 90.0, 0.0, -33.86])
        lons = np.array([-0.1278, -74.0060, 0.0, 180.0, 151.21])
        many = great_circle_km_many(48.85, 2.35, lats, lons)
        for i in range(len(lats)):
            assert many[i] == pytest.approx(
                great_circle_km(48.85, 2.35, float(lats[i]), float(lons[i])),
                rel=1e-12,
            )


class TestPropagationDelay:
    def test_linear_in_distance(self):
        assert propagation_delay_s(2000, route_factor=1.0) == pytest.approx(
            2000 / FIBRE_SPEED_KM_PER_S
        )

    def test_route_factor_inflates(self):
        base = propagation_delay_s(1000, route_factor=1.0)
        assert propagation_delay_s(1000, route_factor=1.5) == pytest.approx(
            base * 1.5
        )

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_s(-1.0)

    def test_route_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_s(100.0, route_factor=0.9)

    def test_thousand_km_is_roughly_5ms(self):
        # 1000 km of fibre with the default 1.2 route factor: 6 ms.
        assert propagation_delay_s(1000.0) == pytest.approx(6e-3)


class TestLinkDelay:
    def test_floor_for_colocated_pops(self):
        assert link_delay_s(50.0, 8.0, 50.0, 8.0) == pytest.approx(50e-6)

    def test_continental_link(self):
        # Paris to Berlin is ~878 km: delay should be around 5 ms.
        delay = link_delay_s(48.85, 2.35, 52.52, 13.40)
        assert 4e-3 < delay < 7e-3

"""Property-based tests on routing-scheme invariants.

These run every scheme over randomized (network, traffic-matrix)
instances and check the contracts no placement may violate: fractions sum
to one, paths connect the right endpoints, load accounting is consistent,
and the optimizing schemes respect capacity whenever the traffic is
routable at all.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.paths import path_links
from repro.routing import (
    B4Routing,
    EcmpRouting,
    LatencyOptimalRouting,
    MinMaxRouting,
    MplsTeRouting,
    ShortestPathRouting,
)
from repro.tm.matrix import TrafficMatrix
from tests.test_properties import random_networks

SCHEME_FACTORIES = [
    ShortestPathRouting,
    EcmpRouting,
    B4Routing,
    MplsTeRouting,
    MinMaxRouting,
    LatencyOptimalRouting,
]


@st.composite
def network_and_tm(draw):
    """A connected random network plus a random traffic matrix on it."""
    net = draw(random_networks(min_nodes=4, max_nodes=7))
    names = net.node_names
    n_pairs = draw(st.integers(2, 8))
    demands = {}
    for _ in range(n_pairs):
        i = draw(st.integers(0, len(names) - 1))
        j = draw(st.integers(0, len(names) - 1))
        if i == j:
            continue
        demands[(names[i], names[j])] = draw(
            st.floats(1e6, 5e9)
        )
    if not demands:
        demands[(names[0], names[1])] = 1e9
    return net, TrafficMatrix(demands)


class TestPlacementContracts:
    @given(network_and_tm(), st.sampled_from(range(len(SCHEME_FACTORIES))))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fractions_and_endpoints(self, instance, scheme_index):
        net, tm = instance
        scheme = SCHEME_FACTORIES[scheme_index]()
        placement = scheme.place(net, tm)
        aggregates = {agg.pair for agg in placement.aggregates}
        expected = {agg.pair for agg in tm.aggregates()}
        assert aggregates == expected
        for agg in placement.aggregates:
            allocs = placement.paths_for(agg)
            total = sum(a.fraction for a in allocs)
            assert total == pytest.approx(1.0, abs=1e-6)
            for alloc in allocs:
                assert alloc.path[0] == agg.src
                assert alloc.path[-1] == agg.dst
                # Paths only use links that exist.
                for u, v in path_links(alloc.path):
                    assert net.has_link(u, v)

    @given(network_and_tm())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_load_accounting_consistent(self, instance):
        net, tm = instance
        placement = ShortestPathRouting().place(net, tm)
        loads = placement.link_loads_bps()
        # Total bit-rate over all links equals sum of demand * hops.
        total_load = sum(loads.values())
        expected = 0.0
        for agg in placement.aggregates:
            for alloc in placement.paths_for(agg):
                expected += (
                    agg.demand_bps * alloc.fraction * (len(alloc.path) - 1)
                )
        assert total_load == pytest.approx(expected, rel=1e-9)

    @given(network_and_tm())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_optimal_respects_capacity_when_routable(self, instance):
        net, tm = instance
        from repro.tm.scale import max_scale_factor

        lam = max_scale_factor(net, tm)
        placement = LatencyOptimalRouting().place(net, tm)
        if lam >= 1.0:
            # Routable: the LP must fit it.
            assert placement.max_utilization() <= 1.0 + 1e-4
            assert placement.fits_all_traffic
        else:
            # Unroutable: overload must be reported, not hidden.
            assert not placement.fits_all_traffic

    @given(network_and_tm())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_minmax_never_beaten_on_utilization(self, instance):
        """No scheme may achieve lower max utilization than MinMax."""
        net, tm = instance
        minmax_scheme = MinMaxRouting()
        minmax = minmax_scheme.place(net, tm).max_utilization()
        for factory in (ShortestPathRouting, B4Routing, LatencyOptimalRouting):
            other = factory().place(net, tm).max_utilization()
            assert minmax <= other + 1e-4

    @given(network_and_tm())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_stretch_at_least_one(self, instance):
        net, tm = instance
        for factory in SCHEME_FACTORIES:
            placement = factory().place(net, tm)
            assert placement.total_latency_stretch() >= 1.0 - 1e-9
            assert placement.max_path_stretch() >= 1.0 - 1e-9

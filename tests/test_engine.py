"""Tests for the parallel experiment engine and its persistent KSP caches."""

import numpy as np
import pytest

from repro.experiments.engine import (
    EngineReport,
    ExperimentEngine,
    NetworkResult,
    network_id,
)
from repro.experiments.runner import evaluate_scheme
from repro.experiments.workloads import ZooWorkload, build_zoo_workload
from repro.routing import LatencyOptimalRouting, ShortestPathRouting


@pytest.fixture(scope="module")
def workload():
    return build_zoo_workload(
        n_networks=8, n_matrices=2, seed=3, include_named=False
    )


def sp_factory(item):
    return ShortestPathRouting(item.cache)


class TestSerialParallelEquivalence:
    def test_process_pool_matches_serial_bitwise(self, workload):
        serial = ExperimentEngine(n_workers=1).run(sp_factory, workload)
        parallel = ExperimentEngine(n_workers=4).run(sp_factory, workload)
        assert serial.outcomes == parallel.outcomes
        assert len(parallel.outcomes) == 8 * 2

    def test_equivalence_with_lp_scheme(self, workload):
        # The LP path exercises warm counts and cache growth inside the
        # shard; a closure factory also exercises the fork-no-pickle path.
        factory = lambda item: LatencyOptimalRouting(cache=item.cache)
        serial = evaluate_scheme(factory, workload, matrices_per_network=1)
        parallel = evaluate_scheme(
            factory, workload, matrices_per_network=1, n_workers=4
        )
        assert serial == parallel

    def test_matrices_per_network_respected(self, workload):
        report = ExperimentEngine(n_workers=2).run(
            sp_factory, workload, matrices_per_network=1
        )
        assert len(report.outcomes) == 8
        for result in report.results:
            assert len(result.outcomes) == 1


class TestStreaming:
    def test_stream_yields_every_network_with_timing(self, workload):
        results = list(ExperimentEngine(n_workers=2).stream(sp_factory, workload))
        assert sorted(r.index for r in results) == list(range(8))
        for result in results:
            assert isinstance(result, NetworkResult)
            assert result.seconds >= 0.0
            assert result.network_id.startswith(f"{result.index}:")

    def test_serial_stream_in_workload_order(self, workload):
        indices = [
            r.index
            for r in ExperimentEngine(n_workers=1).stream(sp_factory, workload)
        ]
        assert indices == list(range(8))

    def test_run_reassembles_workload_order(self, workload):
        report = ExperimentEngine(n_workers=4).run(sp_factory, workload)
        assert [r.index for r in report.results] == list(range(8))
        assert len(report.timings()) == 8
        assert report.total_seconds == pytest.approx(
            sum(r.seconds for r in report.results)
        )

    def test_empty_workload(self):
        empty = ZooWorkload(networks=[], locality=1.0, growth_factor=1.3)
        assert list(ExperimentEngine(n_workers=4).stream(sp_factory, empty)) == []

    def test_abandoning_parallel_stream_cleans_up(self, workload):
        engine = ExperimentEngine(n_workers=2)
        stream = engine.stream(sp_factory, workload)
        first = next(stream)
        assert isinstance(first, NetworkResult)
        stream.close()  # cancels everything not yet started
        # The pool and fork state are gone; a fresh run still works.
        report = engine.run(sp_factory, workload)
        assert len(report.results) == 8


class TestCachePersistence:
    def test_caches_persist_and_warm_start(self, workload, tmp_path):
        first = ExperimentEngine(n_workers=2, cache_dir=tmp_path).run(
            sp_factory, workload
        )
        files = list(tmp_path.glob("ksp-*.json"))
        assert len(files) == 8
        assert all(r.paths_preloaded == 0 for r in first.results)

        second = ExperimentEngine(n_workers=1, cache_dir=tmp_path).run(
            sp_factory, workload
        )
        assert second.outcomes == first.outcomes
        assert all(r.paths_preloaded > 0 for r in second.results)

    def test_caller_workload_not_mutated_by_cache_load(self, workload, tmp_path):
        ExperimentEngine(n_workers=1, cache_dir=tmp_path).run(
            sp_factory, workload
        )
        before = [item.cache for item in workload.networks]
        ExperimentEngine(n_workers=1, cache_dir=tmp_path).run(
            sp_factory, workload
        )
        # Loaded caches go onto a per-evaluation copy; the caller's items
        # keep their cache objects whatever n_workers or cache_dir say.
        after = [item.cache for item in workload.networks]
        assert all(a is b for a, b in zip(before, after))

    def test_stale_cache_file_ignored(self, workload, tmp_path):
        ExperimentEngine(n_workers=1, cache_dir=tmp_path).run(
            sp_factory, workload
        )
        for path in tmp_path.glob("ksp-*.json"):
            path.write_text("{not json")
        report = ExperimentEngine(n_workers=1, cache_dir=tmp_path).run(
            sp_factory, workload
        )
        # Corrupt files fall back to a cold cache instead of crashing.
        assert all(r.paths_preloaded == 0 for r in report.results)


class TestValidationAndFallback:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ExperimentEngine(n_workers=0)

    def test_serial_fallback_without_fork(self, workload, monkeypatch, caplog):
        # A plain-function factory is not spawn-safe (only SchemeSpecs
        # are), so without fork the engine must warn and run serially.
        import logging
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            report = ExperimentEngine(n_workers=4).run(sp_factory, workload)
        assert any(
            "falling back to serial" in record.message
            for record in caplog.records
        )
        assert report.outcomes == ExperimentEngine(n_workers=1).run(
            sp_factory, workload
        ).outcomes

    def test_network_id_unique_for_duplicate_names(self, workload):
        items = [workload.networks[0], workload.networks[0]]
        ids = {network_id(item, i) for i, item in enumerate(items)}
        assert len(ids) == 2

"""Tests for the paper's §8 extensions: priority classes and
stretch-bounded MinMax."""

import pytest

from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms
from repro.routing import LatencyOptimalRouting, MinMaxRouting
from repro.routing.priority import (
    BEST_EFFORT,
    LATENCY_SENSITIVE,
    PriorityLatencyOptimalRouting,
    TrafficClass,
)
from repro.tm.matrix import TrafficMatrix
from tests.conftest import loaded_gts_tm


class TestTrafficClass:
    def test_weight_positive(self):
        with pytest.raises(ValueError):
            TrafficClass("bad", 0.0)


def build_contention_network() -> Network:
    """Two sources share a bottleneck toward t; both have +5 ms detours."""
    net = Network("contention")
    for name in ("s1", "s2", "m", "t", "d1", "d2"):
        net.add_node(Node(name))
    net.add_duplex_link("s1", "m", Gbps(20), ms(1))
    net.add_duplex_link("s2", "m", Gbps(20), ms(1))
    net.add_duplex_link("m", "t", Gbps(10), ms(1))
    net.add_duplex_link("s1", "d1", Gbps(20), ms(3))
    net.add_duplex_link("d1", "t", Gbps(20), ms(3))
    net.add_duplex_link("s2", "d2", Gbps(20), ms(3))
    net.add_duplex_link("d2", "t", Gbps(20), ms(3))
    return net


class TestPriorityRouting:
    def setup_method(self):
        self.net = build_contention_network()
        self.tm = TrafficMatrix(
            {("s1", "t"): Gbps(8), ("s2", "t"): Gbps(8)},
            flow_counts={("s1", "t"): 10, ("s2", "t"): 10},
        )

    def test_sensitive_class_stays_on_shortest(self):
        """With symmetric demands and detours, the latency-sensitive
        aggregate keeps the bottleneck and best-effort detours."""
        scheme = PriorityLatencyOptimalRouting(
            classes={("s1", "t"): LATENCY_SENSITIVE},
        )
        placement = scheme.place(self.net, self.tm)
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        sensitive_detour = sum(
            alloc.fraction
            for alloc in placement.paths_for(by_pair[("s1", "t")])
            if "d1" in alloc.path
        )
        besteffort_detour = sum(
            alloc.fraction
            for alloc in placement.paths_for(by_pair[("s2", "t")])
            if "d2" in alloc.path
        )
        assert sensitive_detour < 0.1
        assert besteffort_detour > 0.5
        assert placement.fits_all_traffic

    def test_per_class_stretch_ordering(self):
        scheme = PriorityLatencyOptimalRouting(
            classes={("s1", "t"): LATENCY_SENSITIVE},
        )
        placement = scheme.place(self.net, self.tm)
        stretch = scheme.per_class_stretch(placement)
        assert stretch["latency-sensitive"] < stretch["best-effort"]

    def test_uniform_classes_match_unprioritized(self, gts):
        """If every aggregate is in the same class, prioritized routing
        equals plain latency-optimal routing."""
        tm = loaded_gts_tm(gts)
        uniform = PriorityLatencyOptimalRouting(classes={}).place(gts, tm)
        plain = LatencyOptimalRouting().place(gts, tm)
        assert uniform.total_latency_stretch() == pytest.approx(
            plain.total_latency_stretch(), rel=1e-6
        )

    def test_placement_preserves_demands(self):
        scheme = PriorityLatencyOptimalRouting(
            classes={("s1", "t"): LATENCY_SENSITIVE}
        )
        placement = scheme.place(self.net, self.tm)
        for agg in placement.aggregates:
            assert agg.demand_bps == self.tm.demand(*agg.pair)
            assert agg.n_flows == self.tm.flows(*agg.pair)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            PriorityLatencyOptimalRouting(classes={}, headroom=1.5)


class TestStretchBoundedMinMax:
    def test_mutually_exclusive_with_k(self):
        with pytest.raises(ValueError):
            MinMaxRouting(k=10, stretch_bound=1.4)

    def test_bound_below_one_rejected(self):
        with pytest.raises(ValueError):
            MinMaxRouting(stretch_bound=0.9)

    def test_name(self):
        assert MinMaxRouting(stretch_bound=1.4).name == "MinMaxS1.4"

    def test_limits_max_path_stretch(self, gts, gts_tm):
        """The §8 idea: bounding the path set by stretch caps the worst
        detour MinMax can choose."""
        bound = 2.0
        bounded = MinMaxRouting(stretch_bound=bound).place(gts, gts_tm)
        full = MinMaxRouting().place(gts, gts_tm)
        assert bounded.max_path_stretch() <= bound + 1e-6
        assert full.max_path_stretch() > bounded.max_path_stretch()

    def test_congestion_free_once_bound_wide_enough(self, gts, gts_tm):
        """A tight bound loses capacity (exactly like MinMaxK on diverse
        networks); widening it restores congestion freedom at the true
        optimal utilization."""
        tight = MinMaxRouting(stretch_bound=1.3)
        tight_placement = tight.place(gts, gts_tm)
        wide = MinMaxRouting(stretch_bound=2.0)
        wide_placement = wide.place(gts, gts_tm)
        assert tight.last_max_utilization > wide.last_max_utilization
        assert wide_placement.congested_pair_fraction() == 0.0
        assert wide.last_max_utilization == pytest.approx(1 / 1.3, rel=0.01)

    def test_falls_back_to_shortest_when_bound_tight(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(5)})
        placement = MinMaxRouting(stretch_bound=1.0).place(diamond, tm)
        agg = placement.aggregates[0]
        assert placement.paths_for(agg)[0].path == ("s", "x", "t")

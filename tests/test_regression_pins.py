"""Regression pins: exact values that must stay stable across refactors.

Everything here is deterministic (fixed seeds, exact LP optima).  If a
change moves one of these numbers, it changed behaviour — intentionally or
not — and this file makes that visible at review time.
"""

import numpy as np
import pytest

from repro.core.metrics import llpd
from repro.net.zoo import (
    cogent_like,
    generate_zoo,
    globalcenter_like,
    google_like,
    gts_like,
)
from repro.routing import LatencyOptimalRouting, MinMaxRouting
from tests.conftest import loaded_gts_tm


class TestNamedReplicaPins:
    def test_llpd_values(self):
        assert llpd(gts_like()) == pytest.approx(0.5833, abs=1e-3)
        assert llpd(cogent_like()) == pytest.approx(0.5579, abs=1e-3)
        assert llpd(globalcenter_like()) == pytest.approx(0.5, abs=1e-3)
        assert llpd(google_like()) == pytest.approx(0.8406, abs=1e-3)

    def test_topology_sizes(self):
        assert (gts_like().num_nodes, gts_like().num_links) == (24, 80)
        assert google_like().num_nodes == 24

    def test_zoo_generation_stable(self):
        zoo = generate_zoo(5, seed=0, include_named=False)
        assert [net.name.split("-", 2)[2] for net in zoo] == [
            "sparse-mesh",
            "sparse-mesh",
            "dense-mesh",
            "dense-mesh",
            "star",
        ]


class TestWorkloadPins:
    @pytest.fixture(scope="class")
    def case(self):
        network = gts_like()
        return network, loaded_gts_tm(network, seed=0)

    def test_tm_totals(self, case):
        network, tm = case
        assert tm.total_demand_bps / 1e9 == pytest.approx(210.38, abs=0.05)
        assert len(tm.aggregates()) == 260

    def test_optimal_stretch(self, case):
        network, tm = case
        placement = LatencyOptimalRouting().place(network, tm)
        assert placement.total_latency_stretch() == pytest.approx(
            1.0486, abs=2e-3
        )

    def test_minmax_utilization_exact(self, case):
        network, tm = case
        scheme = MinMaxRouting()
        scheme.place(network, tm)
        assert scheme.last_max_utilization == pytest.approx(1 / 1.3, abs=1e-4)

"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.multiplexing import exceedance_probability, transient_queue_delay_s
from repro.core.prediction import MeanRatePredictor
from repro.net.flows import max_flow_bps
from repro.net.geo import great_circle_km
from repro.net.graph import Network, Node
from repro.net.paths import (
    KspCache,
    NoPathError,
    is_simple,
    k_shortest_paths,
    path_bottleneck_bps,
    path_delay_s,
    shortest_path,
)
from repro.net.units import Gbps
from repro.tm.matrix import TrafficMatrix

# ----------------------------------------------------------------------
# Random-network strategy
# ----------------------------------------------------------------------


@st.composite
def random_networks(draw, min_nodes=3, max_nodes=8):
    """Connected random networks with random capacities and delays."""
    n = draw(st.integers(min_nodes, max_nodes))
    names = [f"n{i}" for i in range(n)]
    net = Network("hypothesis")
    for name in names:
        net.add_node(Node(name))
    # Random spanning tree guarantees connectivity.
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        capacity = draw(st.sampled_from([Gbps(1), Gbps(10), Gbps(40)]))
        delay = draw(st.floats(1e-4, 2e-2))
        net.add_duplex_link(names[i], names[j], capacity, delay)
    # Extra random links.
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j and not net.has_link(names[i], names[j]):
            capacity = draw(st.sampled_from([Gbps(1), Gbps(10)]))
            delay = draw(st.floats(1e-4, 2e-2))
            net.add_duplex_link(names[i], names[j], capacity, delay)
    return net


class TestPathProperties:
    @given(random_networks())
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_is_lower_bound_of_ksp(self, net):
        names = net.node_names
        src, dst = names[0], names[-1]
        paths = []
        for i, path in enumerate(k_shortest_paths(net, src, dst)):
            paths.append(path)
            if i >= 4:
                break
        assert paths, "spanning tree guarantees connectivity"
        delays = [path_delay_s(net, p) for p in paths]
        assert delays == sorted(delays)
        assert all(is_simple(p) for p in paths)
        assert len(set(paths)) == len(paths)
        assert paths[0] == shortest_path(net, src, dst)

    @given(random_networks())
    @settings(max_examples=30, deadline=None)
    def test_ksp_cache_equals_generator(self, net):
        names = net.node_names
        src, dst = names[0], names[1]
        cache = KspCache(net)
        direct = []
        for i, path in enumerate(k_shortest_paths(net, src, dst)):
            direct.append(path)
            if i >= 5:
                break
        assert cache.get(src, dst, 6) == direct

    @given(random_networks())
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_of_shortest_delays(self, net):
        from repro.net.paths import shortest_path_delays

        names = net.node_names
        d_from = {name: shortest_path_delays(net, name) for name in names}
        for a in names:
            for b in names:
                for c in names:
                    if len({a, b, c}) < 3:
                        continue
                    assert (
                        d_from[a][c]
                        <= d_from[a][b] + d_from[b][c] + 1e-12
                    )


class TestFlowProperties:
    @given(random_networks())
    @settings(max_examples=25, deadline=None)
    def test_max_flow_bounded_by_cuts(self, net):
        names = net.node_names
        src, dst = names[0], names[-1]
        flow = max_flow_bps(net, src, dst)
        out_capacity = sum(link.capacity_bps for link in net.out_links(src))
        in_capacity = sum(link.capacity_bps for link in net.in_links(dst))
        assert flow <= out_capacity + 1e-6
        assert flow <= in_capacity + 1e-6
        # At least the bottleneck of the shortest path must flow.
        path = shortest_path(net, src, dst)
        assert flow >= path_bottleneck_bps(net, path) - 1e-6

    @given(random_networks())
    @settings(max_examples=25, deadline=None)
    def test_max_flow_symmetric_on_duplex(self, net):
        # Every link here is duplex with equal capacities, so flow is
        # symmetric.
        names = net.node_names
        src, dst = names[0], names[-1]
        assert max_flow_bps(net, src, dst) == pytest.approx(
            max_flow_bps(net, dst, src), rel=1e-9
        )


class TestGeoProperties:
    @given(
        st.floats(-89, 89),
        st.floats(-179, 179),
        st.floats(-89, 89),
        st.floats(-179, 179),
    )
    @settings(max_examples=100)
    def test_distance_symmetric_nonnegative(self, lat1, lon1, lat2, lon2):
        d12 = great_circle_km(lat1, lon1, lat2, lon2)
        d21 = great_circle_km(lat2, lon2, lat1, lon1)
        assert d12 >= 0.0
        assert d12 == pytest.approx(d21, abs=1e-6)
        assert d12 <= 20_016.0  # half the circumference, with slack


class TestPredictorProperties:
    @given(st.lists(st.floats(0.0, 1e10), min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_prediction_at_least_hedged_value(self, values):
        predictor = MeanRatePredictor()
        for value in values:
            prediction = predictor.update(value)
            # Core guarantee of Algorithm 1: room for 10% growth.
            assert prediction >= value * 1.1 - 1e-6

    @given(st.lists(st.floats(0.0, 1e10), min_size=2, max_size=60))
    @settings(max_examples=100)
    def test_decay_bounded(self, values):
        predictor = MeanRatePredictor()
        previous = None
        for value in values:
            prediction = predictor.update(value)
            if previous is not None:
                # The prediction never drops faster than the decay rate.
                assert prediction >= previous * 0.98 - 1e-6 or prediction >= value * 1.1 - 1e-6
            previous = prediction


class TestMultiplexingProperties:
    @given(
        st.lists(
            st.lists(st.floats(0.0, 100.0), min_size=5, max_size=30),
            min_size=1,
            max_size=4,
        ),
        st.floats(1.0, 400.0),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.filter_too_much])
    def test_exceedance_is_probability(self, samples, capacity):
        lengths = {len(s) for s in samples}
        arrays = [np.array(s) for s in samples if len(s) == max(lengths)]
        probability = exceedance_probability(arrays, capacity)
        assert -1e-9 <= probability <= 1.0 + 1e-9

    @given(
        st.lists(st.floats(0.0, 50.0), min_size=5, max_size=40),
        st.floats(10.0, 100.0),
    )
    @settings(max_examples=60)
    def test_queue_delay_monotone_in_capacity(self, samples, capacity):
        trace = [np.array(samples)]
        tight = transient_queue_delay_s(trace, capacity)
        loose = transient_queue_delay_s(trace, capacity * 2)
        assert loose <= tight + 1e-12
        assert tight >= 0.0


class TestTrafficMatrixProperties:
    @given(
        st.dictionaries(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.sampled_from(["a", "b", "c", "d"]),
            ).filter(lambda p: p[0] != p[1]),
            st.floats(0.0, 1e9),
            min_size=1,
            max_size=12,
        ),
        st.floats(0.01, 100.0),
    )
    @settings(max_examples=80)
    def test_scaling_scales_totals(self, demands, factor):
        tm = TrafficMatrix(demands)
        scaled = tm.scaled(factor)
        assert scaled.total_demand_bps == pytest.approx(
            tm.total_demand_bps * factor, rel=1e-9, abs=1e-6
        )
        for node in "abcd":
            assert scaled.ingress_bps(node) == pytest.approx(
                tm.ingress_bps(node) * factor, rel=1e-9, abs=1e-6
            )

"""Parity and behavior tests for the integer-indexed sparse graph core.

The indexed core (:mod:`repro.net.index`) must be *bit-identical* to the
legacy name-keyed algorithms it replaced — same paths, same tie-breaks,
same float sums, same dict insertion order, same exceptions.  The legacy
implementations are kept in :mod:`repro.net.paths` as ``legacy_*`` exactly
so these tests can use them as a parity oracle.
"""

import itertools
import pickle

import pytest

from repro.net.graph import Network, Node
from repro.net.index import GraphIndex, LocalityPruner, graph_index
from repro.net.ingest import synthesize_internet_like
from repro.net.paths import (
    KspCache,
    NoPathError,
    all_pairs_shortest_paths,
    k_shortest_paths,
    legacy_all_pairs_shortest_paths,
    legacy_k_shortest_paths,
    legacy_shortest_path,
    legacy_shortest_path_delays,
    path_delay_s,
    shortest_path,
    shortest_path_delays,
)
from repro.net.zoo import generate_zoo
from repro.net.units import Gbps, ms


def parity_networks():
    """Zoo ensemble plus seeded Internet-like graphs: the parity corpus."""
    networks = generate_zoo(n_networks=12, seed=5, include_named=True)
    networks.append(synthesize_internet_like(120, seed=2))
    networks.append(synthesize_internet_like(250, seed=9))
    return networks


@pytest.fixture(scope="module")
def corpus():
    return parity_networks()


class TestIndexStructure:
    def test_ids_follow_sorted_name_order(self, gts):
        index = GraphIndex(gts)
        assert index.names == sorted(gts.node_names)
        for i, name in enumerate(index.names):
            assert index.node_id(name) == i
            assert index.node_name(i) == name

    def test_csr_shape(self, gts):
        index = GraphIndex(gts)
        assert index.num_nodes == gts.num_nodes
        assert index.num_edges == gts.num_links
        assert len(index.indptr_array) == index.num_nodes + 1
        assert len(index.neighbor_array) == index.num_edges
        assert len(index.delay_array) == index.num_edges
        assert len(index.capacity_array) == index.num_edges

    def test_csr_rows_preserve_adjacency_order(self, gts):
        # Per-node neighbor runs must keep the Network's adjacency
        # insertion order — Yen's exclusion masks depend on edge position.
        index = GraphIndex(gts)
        for name in index.names:
            u = index.node_id(name)
            start, end = index.indptr_array[u], index.indptr_array[u + 1]
            run = [index.node_name(v) for v in index.neighbor_array[start:end]]
            assert run == gts.successors(name)


class TestShortestPathParity:
    def test_paths_identical_across_corpus(self, corpus):
        for network in corpus:
            assert all_pairs_shortest_paths(
                network
            ) == legacy_all_pairs_shortest_paths(network)

    def test_all_pairs_dict_order_identical(self, corpus):
        for network in corpus[:4]:
            fast = list(all_pairs_shortest_paths(network))
            slow = list(legacy_all_pairs_shortest_paths(network))
            assert fast == slow

    def test_delays_identical_including_order(self, corpus):
        for network in corpus:
            for src in sorted(network.node_names)[:5]:
                fast = shortest_path_delays(network, src)
                slow = legacy_shortest_path_delays(network, src)
                assert fast == slow
                assert list(fast) == list(slow)

    def test_single_pair_matches_legacy(self, corpus):
        for network in corpus[:6]:
            names = sorted(network.node_names)
            for src, dst in itertools.islice(
                itertools.permutations(names, 2), 12
            ):
                assert shortest_path(network, src, dst) == legacy_shortest_path(
                    network, src, dst
                )

    def test_error_parity(self, triangle):
        for func in (shortest_path, legacy_shortest_path):
            with pytest.raises(ValueError):
                func(triangle, "a", "a")
            with pytest.raises(KeyError):
                func(triangle, "nope", "a")
            with pytest.raises(NoPathError):
                func(triangle, "a", "nope")

    def test_unreachable_destination_parity(self):
        net = Network("split")
        for name in ("a", "b", "c", "d"):
            net.add_node(Node(name))
        net.add_duplex_link("a", "b", Gbps(1), ms(1))
        net.add_duplex_link("c", "d", Gbps(1), ms(1))
        with pytest.raises(NoPathError):
            shortest_path(net, "a", "c")
        assert shortest_path_delays(net, "a") == legacy_shortest_path_delays(
            net, "a"
        )


class TestKspParity:
    def test_first_k_identical(self, corpus):
        for network in corpus:
            names = sorted(network.node_names)
            src, dst = names[0], names[-1]
            fast = list(itertools.islice(k_shortest_paths(network, src, dst), 8))
            slow = list(
                itertools.islice(legacy_k_shortest_paths(network, src, dst), 8)
            )
            assert fast == slow

    def test_exhaustion_identical(self, square):
        assert list(k_shortest_paths(square, "a", "c")) == list(
            legacy_k_shortest_paths(square, "a", "c")
        )

    def test_delays_non_decreasing(self, gts):
        names = sorted(gts.node_names)
        paths = list(
            itertools.islice(k_shortest_paths(gts, names[0], names[-1]), 10)
        )
        delays = [path_delay_s(gts, p) for p in paths]
        assert delays == sorted(delays)

    def test_generator_is_lazy_on_errors(self, triangle):
        # Errors must surface at first next(), not at call time — exactly
        # like the legacy generator.
        gen = k_shortest_paths(triangle, "nope", "a")
        with pytest.raises(KeyError):
            next(gen)
        gen = legacy_k_shortest_paths(triangle, "nope", "a")
        with pytest.raises(KeyError):
            next(gen)


class TestExclusionParity:
    def test_excluded_links_and_nodes(self, corpus):
        for network in corpus[:8]:
            names = sorted(network.node_names)
            src, dst = names[0], names[-1]
            index = graph_index(network)
            base = index.shortest_path(src, dst)
            # Exclude the first hop's link, then the first intermediate node,
            # and check the masked indexed query against a rebuilt network.
            u, v = base[0], base[1]
            reduced = network.without_duplex_link(u, v)
            try:
                expected = legacy_shortest_path(reduced, src, dst)
            except NoPathError:
                expected = None
            excluded = {(u, v), (v, u)}
            if expected is None:
                with pytest.raises(NoPathError):
                    index.shortest_path(src, dst, excluded_links=excluded)
            else:
                assert (
                    index.shortest_path(src, dst, excluded_links=excluded)
                    == expected
                )

    def test_node_mask_matches_spur_semantics(self, square):
        index = graph_index(square)
        path = index.shortest_path("a", "c", excluded_nodes={"b"})
        assert "b" not in path

    def test_unknown_names_in_masks_ignored(self, triangle):
        index = graph_index(triangle)
        assert index.shortest_path(
            "a", "b", excluded_links={("x", "y")}
        ) == ("a", "b")


class TestMemoization:
    def test_same_object_until_mutation(self, gts):
        first = graph_index(gts)
        assert graph_index(gts) is first
        link = next(gts.links())
        gts.remove_duplex_link(link.src, link.dst)
        gts.add_duplex_link(link.src, link.dst, link.capacity_bps, link.delay_s)
        rebuilt = graph_index(gts)
        assert rebuilt is not first
        # Mutate-and-undo still yields an equivalent index.
        assert rebuilt.names == first.names

    def test_pickle_drops_index(self, gts):
        graph_index(gts)
        clone = pickle.loads(pickle.dumps(gts))
        assert clone._graph_index is None
        # And the clone can build a fresh one with identical results.
        assert all_pairs_shortest_paths(clone) == all_pairs_shortest_paths(gts)


class TestLocalityPruner:
    def test_lower_bound_never_exceeds_true_delay(self, corpus):
        for network in corpus[:6]:
            pruner = LocalityPruner(network, radius_s=ms(1))
            names = sorted(network.node_names)
            src = names[0]
            true = shortest_path_delays(network, src)
            for dst, delay in list(true.items())[:10]:
                assert pruner.lower_bound_s(src, dst) <= delay + 1e-12

    def test_admits_is_radius_cut(self, gts):
        # a huge radius admits everything; a zero one admits nothing
        # (except unknown names, whose errors belong to the algorithms).
        names = sorted(gts.node_names)
        wide = LocalityPruner(gts, radius_s=1e6)
        assert wide.admits(names[0], names[-1])
        narrow = LocalityPruner(gts, radius_s=0.0)
        assert not narrow.admits(names[0], names[-1])
        assert narrow.admits("nope", "also-nope")

    def test_landmarks_deterministic(self, gts):
        first = LocalityPruner(gts, radius_s=ms(5))
        second = LocalityPruner(gts, radius_s=ms(5))
        assert first.landmarks == second.landmarks
        assert len(first.landmarks) == len(set(first.landmarks))

    def test_pruned_cache_clamps_to_single_path(self, gts):
        names = sorted(gts.node_names)
        src, dst = names[0], names[-1]
        pruned = KspCache(gts, pruner=LocalityPruner(gts, radius_s=0.0))
        exact = KspCache(gts)
        assert pruned.get(src, dst, 4) == exact.get(src, dst, 1)
        # The single shortest path itself is never approximated.
        assert pruned.get(src, dst, 1) == exact.get(src, dst, 1)

    def test_pruned_metric_recorded(self, gts, tmp_path):
        from repro.experiments import telemetry

        names = sorted(gts.node_names)
        telemetry.configure(tmp_path)
        try:
            cache = KspCache(gts, pruner=LocalityPruner(gts, radius_s=0.0))
            cache.get(names[0], names[-1], 4)
            telemetry.recorder().flush()
            trace = telemetry.load_trace(tmp_path)
            assert trace.counters.get("ksp.pruned", 0) >= 1
        finally:
            telemetry.disable()


class TestIngestScaleSmoke:
    def test_indexed_sweep_matches_legacy_at_scale(self):
        network = synthesize_internet_like(400, seed=4)
        src = sorted(network.node_names)[0]
        assert shortest_path_delays(network, src) == legacy_shortest_path_delays(
            network, src
        )

"""Focused tests on LDR result structure and controller internals."""

import numpy as np
import pytest

from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController
from repro.net.units import Gbps


def flat(pair, rate, n=600):
    return AggregateTraffic(pair[0], pair[1], np.full(n, rate), [rate])


class TestResultStructure:
    def test_failed_history_one_entry_per_round(self, diamond, rng):
        # A bursty aggregate near the fast path's capacity forces at
        # least one tweak round.
        samples = np.where(rng.random(600) < 0.3, Gbps(12), Gbps(6))
        traffic = [
            AggregateTraffic("s", "t", samples, [float(samples.mean())])
        ]
        controller = LdrController(diamond, LdrConfig(max_rounds=8))
        result = controller.route(traffic)
        assert len(result.failed_links_history) == result.rounds
        if result.converged:
            assert result.failed_links_history[-1] == []

    def test_link_checks_exclude_peak_filtered(self, triangle):
        controller = LdrController(triangle)
        result = controller.route(
            [flat(("a", "b"), Gbps(1)), flat(("b", "c"), Gbps(1))]
        )
        # Flat light traffic passes the peak filter everywhere: no full
        # checks should be recorded.
        assert result.link_checks == {}

    def test_demands_cover_every_pair(self, triangle):
        controller = LdrController(triangle)
        traffic = [flat(("a", "b"), Gbps(1)), flat(("c", "a"), Gbps(2))]
        result = controller.route(traffic)
        assert set(result.demands_bps) == {("a", "b"), ("c", "a")}

    def test_placement_covers_every_pair(self, triangle):
        controller = LdrController(triangle)
        traffic = [flat(("a", "b"), Gbps(1)), flat(("b", "c"), Gbps(2))]
        result = controller.route(traffic)
        pairs = {agg.pair for agg in result.placement.aggregates}
        assert pairs == {("a", "b"), ("b", "c")}

    def test_warm_counts_persist_across_calls(self, diamond):
        controller = LdrController(diamond)
        heavy = [flat(("s", "t"), Gbps(12))]
        controller.route(heavy)
        warm = dict(controller._warm_counts)
        assert warm.get(("s", "t"), 1) > 1  # needed the second path
        controller.route(heavy)
        assert controller._warm_counts[("s", "t")] >= warm[("s", "t")]

    def test_warm_counts_initialized_empty(self, diamond):
        assert LdrController(diamond)._warm_counts == {}

    def test_no_stale_link_checks_when_demands_stop_fitting(self, diamond):
        """A round-1 placement can record failing link checks, the tweak
        scales demands beyond what the network fits, and round 2 breaks
        out on the not-fits path.  The checks from round 1 describe a
        different placement and must not survive into the result."""
        # Mean 40 Gbps (hedged to 44) fits the 50 Gbps s-cut in round 1;
        # the 80/0 alternation makes every carrying link fail the temporal
        # test, and the 2x tweak pushes round 2 to 88 Gbps — unroutable.
        samples = np.tile([Gbps(80), 0.0], 300)
        traffic = [
            AggregateTraffic("s", "t", samples, [float(samples.mean())])
        ]
        controller = LdrController(
            diamond, LdrConfig(max_rounds=6, scale_up=2.0)
        )
        result = controller.route(traffic)
        assert not result.converged
        # The final round's LP did not fit, so no appraise ran on the
        # returned placement: stale round-1 checks must have been cleared.
        assert result.rounds >= 2
        assert result.link_checks == {}


class TestScalingBehaviour:
    def test_smooth_traffic_never_scaled(self, triangle):
        controller = LdrController(triangle)
        result = controller.route([flat(("a", "b"), Gbps(2))])
        # Prediction = hedge * rate exactly; no multiplexing scaling.
        assert result.demands_bps[("a", "b")] == pytest.approx(
            Gbps(2) * 1.1
        )

    def test_scaling_grows_geometrically(self, diamond, rng):
        config = LdrConfig(max_rounds=3, scale_up=1.25)
        controller = LdrController(diamond, config)
        samples = np.where(rng.random(600) < 0.5, Gbps(13), Gbps(4))
        traffic = [
            AggregateTraffic("s", "t", samples, [float(samples.mean())])
        ]
        result = controller.route(traffic)
        base = float(samples.mean()) * 1.1
        demand = result.demands_bps[("s", "t")]
        # Demand is base * 1.25^k for some integer k in [0, rounds].
        k = np.log(demand / base) / np.log(1.25)
        assert k == pytest.approx(round(k), abs=1e-6)
        assert 0 <= round(k) <= result.rounds

"""Tests for the telemetry layer: recorder, shards, merge, analysis, feeds.

Four layers mirror the module's contract:

* recorder mechanics — span nesting, metrics aggregation, shard rolling,
  the no-op path's zero-allocation guarantee;
* durability — torn trailing lines and unknown record kinds are
  tolerated exactly like the result store's reader tolerates them;
* cross-process merge — fork pools, fresh interpreters joining through
  the environment, and dispatch worker subprocesses all land in ONE
  trace keyed by the workload;
* feeds — tracing never changes results, task spans replay through the
  cost model, and the CLI's ``trace`` views render.
"""

import json
import os
import subprocess
import sys
import tracemalloc
from pathlib import Path

import pytest

from repro.experiments import telemetry
from repro.experiments.engine import ExperimentEngine
from repro.experiments.plan import EvalPlan, execute_plan
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import build_zoo_workload

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def reset_recorder():
    """Every test starts and ends with tracing off and no env leakage."""
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture(scope="module")
def workload():
    # Built once at module scope so per-test configure() calls never see
    # the LP solves of workload construction as ad-hoc spans.
    return build_zoo_workload(
        n_networks=4, n_matrices=1, seed=3, include_named=False
    )


# ----------------------------------------------------------------------
# Recorder mechanics
# ----------------------------------------------------------------------
class TestNoopPath:
    def test_default_recorder_is_disabled_noop(self):
        recorder = telemetry.recorder()
        assert recorder is telemetry.NOOP
        assert recorder.enabled is False
        assert recorder.trace_dir is None

    def test_span_returns_shared_singleton(self):
        recorder = telemetry.recorder()
        first = recorder.span("a", {"k": 1})
        second = recorder.span("b")
        assert first is second is telemetry._NOOP_SPAN

    def test_disabled_hot_path_allocates_nothing(self):
        recorder = telemetry.recorder()
        # Warm up so no lazy first-call state is charged to the loop.
        with recorder.span("warm"):
            recorder.counter("warm")
            recorder.gauge("warm", 1.0)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(200):
            with recorder.span("hot"):
                recorder.counter("hits")
                recorder.gauge("depth", 3.0)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grew = [
            stat
            for stat in after.compare_to(before, "filename")
            if stat.size_diff > 0
            and stat.traceback[0].filename == telemetry.__file__
        ]
        assert grew == []


class TestTraceRecorder:
    def test_spans_nest_and_round_trip(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        with recorder.span("outer", {"k": "v"}):
            with recorder.span("inner"):
                pass
        recorder.counter("hits", 3)
        recorder.gauge("depth", 2.0)
        recorder.flush()
        trace = telemetry.load_trace(tmp_path)
        assert trace.trace_id == telemetry.ADHOC_TRACE
        (outer,) = trace.by_name("outer")
        (inner,) = trace.by_name("inner")
        assert outer.parent is None
        assert inner.parent == outer.span_id
        assert outer.attrs == {"k": "v"}
        assert outer.t0 <= inner.t0 <= inner.t1 <= outer.t1
        assert trace.counters["hits"] == 3
        assert trace.gauges["depth"] == 2.0
        assert trace.wall_start > 0

    def test_configure_exports_env_and_disable_clears_it(self, tmp_path):
        telemetry.configure(tmp_path, trace="abc")
        assert os.environ[telemetry.TRACE_DIR_ENV] == os.fspath(tmp_path)
        assert os.environ[telemetry.TRACE_ID_ENV] == "abc"
        telemetry.disable()
        assert telemetry.TRACE_DIR_ENV not in os.environ
        assert telemetry.TRACE_ID_ENV not in os.environ
        assert telemetry.recorder() is telemetry.NOOP

    def test_begin_trace_rolls_to_a_new_shard(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        with recorder.span("before"):
            pass
        recorder.begin_trace("feed0")
        with recorder.span("after"):
            pass
        recorder.flush()
        assert telemetry.list_traces(tmp_path) == [
            telemetry.ADHOC_TRACE, "feed0"
        ]
        adhoc = telemetry.load_trace(tmp_path, telemetry.ADHOC_TRACE)
        named = telemetry.load_trace(tmp_path, "feed0")
        assert [s.name for s in adhoc.spans] == ["before"]
        assert [s.name for s in named.spans] == ["after"]

    def test_begin_trace_same_id_keeps_the_shard(self, tmp_path):
        recorder = telemetry.configure(tmp_path, trace="t1")
        with recorder.span("a"):
            pass
        recorder.begin_trace("t1")
        with recorder.span("b"):
            pass
        recorder.flush()
        trace = telemetry.load_trace(tmp_path, "t1")
        assert trace.n_shards == 1
        assert sorted(s.name for s in trace.spans) == ["a", "b"]

    def test_gauge_keeps_high_water_mark(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        recorder.gauge("queue", 5.0)
        recorder.gauge("queue", 2.0)
        recorder.flush()
        trace = telemetry.load_trace(tmp_path)
        assert trace.gauges["queue"] == 2.0
        assert trace.gauges["queue.max"] == 5.0

    def test_counters_are_cumulative_last_record_wins(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        recorder.counter("n", 2)
        recorder.flush()  # first metrics record: n=2
        recorder.counter("n", 3)
        recorder.flush()  # second metrics record: n=5 (cumulative)
        trace = telemetry.load_trace(tmp_path)
        assert trace.counters["n"] == 5


# ----------------------------------------------------------------------
# Durability: torn tails and unknown kinds
# ----------------------------------------------------------------------
class TestShardReader:
    def shard_path(self, trace_dir):
        (shard,) = Path(trace_dir).glob("*/spans-*.jsonl")
        return shard

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        with recorder.span("kept"):
            pass
        recorder.flush()
        telemetry.disable()
        shard = self.shard_path(tmp_path)
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "trace": "adh')  # torn write
        trace = telemetry.load_trace(tmp_path)
        assert [s.name for s in trace.spans] == ["kept"]

    def test_torn_line_ends_the_shard_not_the_trace(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        with recorder.span("kept"):
            pass
        recorder.flush()
        telemetry.disable()
        shard = self.shard_path(tmp_path)
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write("NOT JSON AT ALL\n")
            handle.write(
                json.dumps(
                    {
                        "kind": "span",
                        "trace": "adhoc",
                        "run": "x",
                        "pid": 1,
                        "id": "1:9",
                        "parent": None,
                        "name": "after_torn",
                        "t0": 0.0,
                        "t1": 1.0,
                    }
                )
                + "\n"
            )
        trace = telemetry.load_trace(tmp_path)
        # Everything after the first unparseable line is dropped: with an
        # append-only writer that can only be a torn tail.
        assert [s.name for s in trace.spans] == ["kept"]

    def test_unknown_record_kind_is_skipped_not_fatal(self, tmp_path):
        recorder = telemetry.configure(tmp_path)
        with recorder.span("first"):
            pass
        recorder.flush()
        telemetry.disable()
        shard = self.shard_path(tmp_path)
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write(
                '{"kind": "annotation", "note": "from a newer writer"}\n'
            )
            handle.write(
                json.dumps(
                    {
                        "kind": "span",
                        "trace": "adhoc",
                        "run": "x",
                        "pid": 1,
                        "id": "1:9",
                        "parent": None,
                        "name": "second",
                        "t0": 0.0,
                        "t1": 1.0,
                    }
                )
                + "\n"
            )
        trace = telemetry.load_trace(tmp_path)
        assert sorted(s.name for s in trace.spans) == ["first", "second"]

    def test_resolve_trace_id_prefix_and_ambiguity(self, tmp_path):
        recorder = telemetry.configure(tmp_path, trace="feed00aa")
        with recorder.span("a"):
            pass
        recorder.begin_trace("feed11bb")
        with recorder.span("b"):
            pass
        recorder.flush()
        telemetry.disable()
        assert telemetry.resolve_trace_id(tmp_path, "feed00") == "feed00aa"
        with pytest.raises(telemetry.TraceError):
            telemetry.resolve_trace_id(tmp_path)  # two candidates
        with pytest.raises(telemetry.TraceError):
            telemetry.resolve_trace_id(tmp_path, "feed")  # ambiguous prefix
        with pytest.raises(telemetry.TraceError):
            telemetry.resolve_trace_id(tmp_path / "missing")


# ----------------------------------------------------------------------
# Trace identity
# ----------------------------------------------------------------------
class TestTraceIdentity:
    def test_id_is_order_independent_and_deterministic(self):
        pairs = [("B4", "sig1"), ("LDR", "sig2")]
        assert telemetry.trace_id_for_streams(
            pairs
        ) == telemetry.trace_id_for_streams(reversed(pairs))
        assert telemetry.trace_id_for_streams(
            pairs
        ) != telemetry.trace_id_for_streams([("B4", "sig1")])

    def test_plan_trace_id_matches_manual_pairs(self, workload):
        from repro.experiments.store import workload_signature

        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("ECMP", SchemeSpec("ECMP"), workload)
        expected = telemetry.trace_id_for_streams(
            [
                ("SP", workload_signature(workload, None)),
                ("ECMP", workload_signature(workload, None)),
            ]
        )
        assert telemetry.plan_trace_id(plan) == expected


# ----------------------------------------------------------------------
# Cross-process merge
# ----------------------------------------------------------------------
class TestProcessMerge:
    def test_fork_pool_children_merge_into_one_trace(self, tmp_path, workload):
        telemetry.configure(tmp_path)
        report = ExperimentEngine(n_workers=2).run(SchemeSpec("SP"), workload)
        telemetry.disable()
        (trace_id,) = telemetry.list_traces(tmp_path)
        trace = telemetry.load_trace(tmp_path, trace_id)
        # One shard per process that wrote spans; pool children write
        # their own shards and the parent its own.
        assert trace.n_shards == len(trace.pids) >= 2
        tasks = trace.by_name("task")
        assert len(tasks) == len(workload.networks)
        assert all(t.attrs.get("network_signature") for t in tasks)
        assert trace.counters.get("ksp.cache_miss", 0) > 0
        assert len(report.results) == len(workload.networks)

    def test_fresh_interpreter_joins_through_environment(self, tmp_path):
        env = dict(os.environ)
        env[telemetry.TRACE_DIR_ENV] = os.fspath(tmp_path)
        env[telemetry.TRACE_ID_ENV] = "envtrace"
        env["PYTHONPATH"] = os.fspath(REPO / "src")
        subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.experiments import telemetry\n"
                "recorder = telemetry.recorder()\n"
                "assert recorder.enabled\n"
                "with recorder.span('child_work'):\n"
                "    pass\n",
            ],
            check=True,
            env=env,
        )
        trace = telemetry.load_trace(tmp_path, "envtrace")
        assert [s.name for s in trace.spans] == ["child_work"]

    def test_dispatched_plan_converges_on_one_trace(self, tmp_path, workload):
        from repro.experiments.dispatch import dispatch_plan

        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("ECMP", SchemeSpec("ECMP"), workload)
        trace_dir = tmp_path / "traces"
        telemetry.configure(trace_dir)
        report = dispatch_plan(plan, 2, tmp_path / "store")
        telemetry.disable()
        (trace_id,) = telemetry.list_traces(trace_dir)
        assert trace_id == telemetry.plan_trace_id(plan)
        trace = telemetry.load_trace(trace_dir, trace_id)
        workers = trace.by_name("worker")
        assert len(workers) == 2
        assert sorted(w.attrs["shard_index"] for w in workers) == [0, 1]
        assert len(trace.by_name("manifest_write")) == 2
        assert len(trace.by_name("merge")) == 2
        tasks = trace.by_name("task")
        assert len(tasks) == 2 * len(workload.networks)
        assert {t.attrs["scheme"] for t in tasks} == {"SP", "ECMP"}
        # Dispatched results equal an untraced in-process run.
        direct = execute_plan(plan)
        assert report.all_outcomes() == direct.all_outcomes()

    def test_critical_path_attributes_worker_time(self, tmp_path, workload):
        from repro.experiments.dispatch import dispatch_plan

        plan = EvalPlan()
        plan.add("LDR", SchemeSpec("LDR", {"headroom": 0.1}), workload)
        trace_dir = tmp_path / "traces"
        telemetry.configure(trace_dir)
        dispatch_plan(plan, 2, tmp_path / "store")
        telemetry.disable()
        trace = telemetry.load_trace(trace_dir)
        data = telemetry.critical_path(trace)
        assert len(data["workers"]) >= 3  # coordinator + 2 workers
        for worker in data["workers"]:
            assert worker["window_s"] >= worker["busy_s"] >= 0.0
            assert worker["idle_s"] == pytest.approx(
                worker["window_s"] - worker["busy_s"], abs=1e-9
            )
            assert set(worker["phases"]) == set(
                telemetry.PHASE_NAMES
            ) | {"other"}
            busy = sum(worker["phases"].values())
            assert busy == pytest.approx(worker["busy_s"], rel=1e-6, abs=1e-9)
        # The LP-backed scheme must show lp_solve time somewhere.
        total_lp = sum(
            worker["phases"]["lp_solve"] for worker in data["workers"]
        )
        assert total_lp > 0.0
        rendered = telemetry.render_critical_path(trace)
        assert "lp_solve" in rendered and "idle" in rendered


# ----------------------------------------------------------------------
# Feeds: results untouched, cost replay, phase breakdowns
# ----------------------------------------------------------------------
class TestFeeds:
    def test_tracing_never_changes_results(self, tmp_path, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        plan.add("B4", SchemeSpec("B4", {"headroom": 0.1}), workload)
        baseline = execute_plan(plan)
        telemetry.configure(tmp_path)
        traced = execute_plan(plan)
        telemetry.disable()
        assert traced.all_outcomes() == baseline.all_outcomes()

    def test_task_spans_replay_through_cost_model(self, tmp_path, workload):
        from repro.experiments.cost import CostModel

        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        telemetry.configure(tmp_path)
        execute_plan(plan)
        telemetry.disable()
        timings = list(telemetry.task_timings(tmp_path))
        assert len(timings) == len(workload.networks)
        assert all(
            scheme == "SP" and seconds >= 0.0 and signature
            for signature, scheme, seconds in timings
        )
        model = CostModel(trace_dir=tmp_path)
        learned = model.learned_seconds()
        assert set(learned) == {
            (signature, "SP") for signature, _, _ in timings
        }
        # Learned (span-derived) predictions win over the static model.
        item = workload.networks[0]
        predicted = model.predict_item(
            SchemeSpec("SP"), item, scheme="SP"
        )
        signature = model._network_signature(item)
        assert predicted == learned[(signature, "SP")]

    def test_cost_report_carries_phase_breakdowns(self, tmp_path, workload):
        plan = EvalPlan()
        plan.add("LDR", SchemeSpec("LDR", {"headroom": 0.1}), workload)
        telemetry.configure(tmp_path)
        report = execute_plan(plan, scheduler="lpt")
        telemetry.disable()
        rows = report.cost_report(trace_dir=tmp_path)
        assert len(rows) == len(workload.networks)
        for key, network_id, predicted, actual, phases in rows:
            assert key == "LDR"
            assert predicted > 0 and actual >= 0
            assert phases, f"no phases for {network_id}"
            assert set(phases) <= set(telemetry.PHASE_NAMES) | {"other"}
        assert any(row[4].get("lp_solve", 0.0) > 0.0 for row in rows)
        # Without a trace dir the rows still come back, phases empty.
        bare = report.cost_report()
        assert all(row[4] == {} for row in bare)

    def test_phase_breakdown_groups_by_scheme_and_network(
        self, tmp_path, workload
    ):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        telemetry.configure(tmp_path)
        execute_plan(plan)
        telemetry.disable()
        trace = telemetry.load_trace(tmp_path)
        breakdown = telemetry.phase_breakdown(trace)
        assert set(breakdown) == {"SP"}
        assert len(breakdown["SP"]) == len(workload.networks)
        folded = telemetry.scheme_phases(trace)["SP"]
        # ksp may be absent when earlier tests warmed the shared
        # workload's path caches; place always runs.
        assert folded.get("place", 0.0) > 0.0
        rendered = telemetry.format_phases(folded)
        assert "place=" in rendered

    def test_summary_and_tree_render(self, tmp_path, workload):
        plan = EvalPlan()
        plan.add("SP", SchemeSpec("SP"), workload)
        telemetry.configure(tmp_path)
        execute_plan(plan)
        telemetry.disable()
        trace = telemetry.load_trace(tmp_path)
        data = telemetry.summary(trace)
        assert data["spans"]["task"]["count"] == len(workload.networks)
        assert data["spans"]["run_plan"]["count"] == 1
        text = telemetry.render_summary(trace)
        assert "task" in text and "counter" in text
        lines = telemetry.tree_lines(trace, max_lines=50)
        assert any(line.startswith("process ") for line in lines)
        assert any("run_plan" in line for line in lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    def run_cli(self, argv, capsys):
        from repro.experiments.__main__ import main

        code = main(argv)
        out = capsys.readouterr()
        return code, out.out, out.err

    def test_trace_cli_views(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        store_dir = tmp_path / "store"
        code, out, err = self.run_cli(
            [
                "fig03",
                "--networks", "3",
                "--tms", "1",
                "--store-dir", os.fspath(store_dir),
                "--trace-dir", os.fspath(trace_dir),
            ],
            capsys,
        )
        telemetry.disable()
        assert code == 0, err
        figure_text = out

        code, out, _ = self.run_cli(
            ["trace", "ls", "--trace-dir", os.fspath(trace_dir)], capsys
        )
        assert code == 0
        assert "span(s)" in out

        # The run may leave an "adhoc" trace (pre-plan workload spans)
        # next to the workload-keyed one; analyze the run trace.
        code, out, _ = self.run_cli(
            [
                "trace", "ls",
                "--trace-dir", os.fspath(trace_dir),
                "--format", "json",
            ],
            capsys,
        )
        assert code == 0
        trace_ids = json.loads(out)
        (run_id,) = [t for t in trace_ids if t != telemetry.ADHOC_TRACE]

        code, out, _ = self.run_cli(
            [
                "trace", "summary",
                "--trace-dir", os.fspath(trace_dir),
                "--trace", run_id,
            ],
            capsys,
        )
        assert code == 0
        assert "task" in out

        code, out, _ = self.run_cli(
            [
                "trace", "critical-path",
                "--trace-dir", os.fspath(trace_dir),
                "--trace", run_id,
            ],
            capsys,
        )
        assert code == 0
        assert "idle" in out

        code, out, _ = self.run_cli(
            [
                "trace", "summary",
                "--trace-dir", os.fspath(trace_dir),
                "--trace", run_id,
                "--format", "json",
            ],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["n_spans"] > 0

        code, out, _ = self.run_cli(
            [
                "trace", "tree",
                "--trace-dir", os.fspath(trace_dir),
                "--trace", run_id,
                "--format", "json",
            ],
            capsys,
        )
        assert code == 0
        assert json.loads(out)["spans"]

        # store ls --timings gains the span-derived phase column.
        code, out, _ = self.run_cli(
            [
                "store", "ls",
                "--store-dir", os.fspath(store_dir),
                "--timings",
                "--trace-dir", os.fspath(trace_dir),
            ],
            capsys,
        )
        assert code == 0
        assert "ksp=" in out

        # A traced run rendered the same figure text as an untraced one.
        code, out, err = self.run_cli(
            [
                "render", "fig03",
                "--networks", "3",
                "--tms", "1",
                "--store-dir", os.fspath(store_dir),
            ],
            capsys,
        )
        assert code == 0, err
        assert out == figure_text

    def test_trace_cli_errors(self, tmp_path, capsys):
        code, _, err = self.run_cli(
            ["trace", "summary", "--trace-dir", os.fspath(tmp_path)], capsys
        )
        assert code == 1
        assert "no traces" in err
        code, _, err = self.run_cli(["trace", "summary"], capsys)
        assert code == 2
        assert "--trace-dir" in err
        code, _, err = self.run_cli(
            ["trace", "explode", "--trace-dir", os.fspath(tmp_path)], capsys
        )
        assert code == 2

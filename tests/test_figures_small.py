"""Small-scale unit tests for the heavier figure functions.

The benchmarks exercise these at evaluation scale; here each runs on a
minimal workload so `pytest tests/` covers the code paths quickly.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig08_headroom_sweep,
    fig15_runtimes,
    fig16_max_stretch_cdfs,
    fig17_load_sweep,
    fig18_locality_sweep,
    fig20_growth_benefit,
    scheme_factories,
)
from repro.experiments.workloads import (
    NetworkWorkload,
    ZooWorkload,
    build_traffic_matrices,
)
from repro.net.zoo import grid_network, gts_like, ring_network


@pytest.fixture(scope="module")
def mini_items():
    rng = np.random.default_rng(5)
    items = []
    for network, llpd_value in (
        (gts_like(), 0.58),
        (grid_network(3, 4, np.random.default_rng(2), name="mini-grid"), 0.5),
    ):
        items.append(
            NetworkWorkload(
                network=network,
                llpd=llpd_value,
                matrices=build_traffic_matrices(
                    network, 1, rng, locality=1.0, growth_factor=1.3
                ),
            )
        )
    return items


@pytest.fixture(scope="module")
def mini_workload(mini_items):
    rng = np.random.default_rng(9)
    ring = ring_network(8, rng)
    low = NetworkWorkload(
        network=ring,
        llpd=0.1,
        matrices=build_traffic_matrices(ring, 1, rng, 1.0, 1.3),
    )
    return ZooWorkload(
        networks=[low] + mini_items, locality=1.0, growth_factor=1.3
    )


class TestFig15:
    def test_runtimes_structure(self, mini_items):
        times = fig15_runtimes(mini_items, include_link_based=True)
        assert len(times["ldr"]) == 2
        assert len(times["link_based"]) == 2
        assert all(t > 0 for t in times["ldr"])

    def test_skip_link_based(self, mini_items):
        times = fig15_runtimes(mini_items, include_link_based=False)
        assert times["link_based"] == []


class TestFig16:
    def test_classes_partition(self, mini_workload):
        results = fig16_max_stretch_cdfs(mini_workload, llpd_split=0.4)
        assert set(results) == {"low_h0", "high_h0", "high_h10"}
        for by_scheme in results.values():
            assert set(by_scheme) == set(scheme_factories())
            for data in by_scheme.values():
                assert 0.0 <= data["unroutable_fraction"] <= 1.0
                assert data["stretches"] == sorted(data["stretches"])


class TestFig17:
    def test_load_sweep_rows(self, mini_items):
        results = fig17_load_sweep(mini_items[:1], loads=(0.6, 0.9))
        for name, points in results.items():
            assert [x for x, _ in points] == [0.6, 0.9]
            assert all(y >= 1.0 - 1e-9 for _, y in points)


class TestFig18:
    def test_locality_sweep_rows(self, mini_items):
        networks = [item.network for item in mini_items[:1]]
        results = fig18_locality_sweep(
            networks, localities=(0.0, 1.0), n_matrices=1
        )
        for name, points in results.items():
            assert [x for x, _ in points] == [0.0, 1.0]


class TestFig20:
    def test_growth_benefit_structure(self):
        rng = np.random.default_rng(11)
        ring = ring_network(8, rng)
        item = NetworkWorkload(
            network=ring,
            llpd=0.1,
            matrices=build_traffic_matrices(ring, 2, rng, 1.0, 1.3),
        )
        results = fig20_growth_benefit(
            [item], growth_fraction=0.2, max_candidates=6
        )
        for name, data in results.items():
            assert len(data["median"]) == 1
            assert len(data["p90"]) == 1
            before, after = data["median"][0]
            assert before >= 1.0 - 1e-9 and after >= 1.0 - 1e-9


class TestFig08Small:
    def test_headroom_keys(self, mini_workload):
        results = fig08_headroom_sweep(mini_workload, headrooms=(0.0, 0.2))
        assert set(results) == {0.0, 0.2}
        for points in results.values():
            assert len(points) == len(mini_workload.networks)


class TestStoreBackedSweeps:
    """Figures 17/18/20 run on the engine now: stored re-renders must
    reproduce a fresh run's data points with zero scheme evaluations."""

    def test_fig17_render_matches_fresh(self, mini_items, tmp_path):
        fresh = fig17_load_sweep(mini_items[:1], loads=(0.6, 0.9))
        stored = fig17_load_sweep(
            mini_items[:1], loads=(0.6, 0.9), store_dir=str(tmp_path)
        )
        rendered = fig17_load_sweep(
            mini_items[:1],
            loads=(0.6, 0.9),
            store_dir=str(tmp_path),
            store_only=True,
        )
        assert stored == fresh
        assert rendered == fresh

    def test_fig18_render_matches_fresh(self, mini_items, tmp_path):
        networks = [item.network for item in mini_items[:1]]
        kwargs = dict(localities=(0.0, 1.0), n_matrices=1)
        fresh = fig18_locality_sweep(networks, **kwargs)
        stored = fig18_locality_sweep(
            networks, store_dir=str(tmp_path), **kwargs
        )
        rendered = fig18_locality_sweep(
            networks, store_dir=str(tmp_path), store_only=True, **kwargs
        )
        assert stored == fresh
        assert rendered == fresh

    def test_fig20_render_matches_fresh(self, tmp_path):
        rng = np.random.default_rng(11)
        ring = ring_network(8, rng)
        item = NetworkWorkload(
            network=ring,
            llpd=0.1,
            matrices=build_traffic_matrices(ring, 2, rng, 1.0, 1.3),
        )
        kwargs = dict(growth_fraction=0.2, max_candidates=6)
        fresh = fig20_growth_benefit([item], **kwargs)
        stored = fig20_growth_benefit(
            [item], store_dir=str(tmp_path), **kwargs
        )
        rendered = fig20_growth_benefit(
            [item], store_dir=str(tmp_path), store_only=True, **kwargs
        )
        assert stored == fresh
        assert rendered == fresh

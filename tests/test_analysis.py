"""Tests for the static analyzer (``repro.analysis``).

Three layers:

* fixture snippets with seeded violations, one per rule — each pass must
  demonstrably catch what it claims to catch, and must stay quiet on the
  corresponding clean spelling;
* the baseline and CLI machinery (fingerprints, count budgets, exit
  codes, JSON output, pragmas);
* the no-false-positive sweep: the committed tree must analyze clean,
  which is exactly the CI gate.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_passes, analyze_paths, collect_modules, rule_table
from repro.analysis.base import Finding, Severity, fingerprint
from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.determinism import DeterminismPass
from repro.analysis.schema import SchemaDriftPass
from repro.analysis.spawnsafe import SpawnSafetyPass
from repro.analysis.__main__ import main as analysis_main

REPO = Path(__file__).resolve().parents[1]


def rules_in(tmp_path, source, passes, name="snippet.py"):
    """Analyze one dedented snippet; return the list of rule ids found."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings = analyze_paths([str(path)], passes=passes, root=str(tmp_path))
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# Determinism pass
# ----------------------------------------------------------------------
def test_d101_unseeded_stdlib_random(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import random

        def jitter():
            return random.random() + random.uniform(0, 1)
        """,
        [DeterminismPass()],
    )
    assert rules == ["D101", "D101"]


def test_d101_seeded_random_instance_is_clean(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import random

        def jitter(seed):
            rng = random.Random(seed)
            return rng.random()
        """,
        [DeterminismPass()],
    )
    assert rules == []


def test_d101_numpy_default_rng_and_legacy(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import numpy as np

        def noise(n):
            rng = np.random.default_rng()
            legacy = np.random.rand(n)
            seeded = np.random.default_rng(42)
            return rng, legacy, seeded
        """,
        [DeterminismPass()],
    )
    assert rules == ["D101", "D101"]


def test_d102_wall_clock_and_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import time
        import datetime

        def stamp():
            t0 = time.time()
            t1 = time.perf_counter()
            t2 = datetime.datetime.now()
            t3 = time.time()  # analysis: allow[D102]
            return t0, t1, t2, t3
        """,
        [DeterminismPass()],
    )
    assert rules == ["D102", "D102"]


def test_d102_module_allowlist_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        '''
        """A module whose whole purpose is sanctioned instrumentation."""

        # analysis: allow-module[D102]

        import time

        def stamp():
            return time.time()

        def stamp_again():
            return time.time()
        ''',
        [DeterminismPass()],
    )
    assert rules == []


def test_module_allowlist_covers_only_named_rules(tmp_path):
    rules = rules_in(
        tmp_path,
        '''
        """Module pragma for D102 must not blanket other rules."""

        # analysis: allow-module[D102]

        import random
        import time

        def jitter():
            return random.random() + time.time()
        ''',
        [DeterminismPass()],
    )
    assert rules == ["D101"]


def test_module_allowlist_only_counts_in_header(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import time

        # analysis: allow-module[D102]

        def stamp():
            return time.time()
        """,
        [DeterminismPass()],
    )
    # The pragma sits after the first statement, so it is not a header
    # declaration and suppresses nothing.
    assert rules == ["D102"]


def test_allow_module_pragma_does_not_loosen_line_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # analysis: allow-module[D102]
        """,
        [DeterminismPass()],
    )
    # allow-module on a single line must NOT act as a line pragma: the
    # `allow` regex deliberately refuses the `-module` suffix.
    assert rules == ["D102"]


def test_d103_fresh_set_iteration(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        def spellings(items):
            for key in set(items):
                print(key)
            flat = list({1, 2, 3})
            comp = [x for x in frozenset(items)]
            ok = sorted(set(items))
            unordered = {x for x in set(items)}
            return flat, comp, ok, unordered
        """,
        [DeterminismPass()],
    )
    assert rules == ["D103", "D103", "D103"]


def test_d104_set_annotated_loop_feeding_output(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from typing import Dict, List, Set

        def walk(adjacency: Dict[str, Set[str]], start: str) -> List[str]:
            out: List[str] = []
            for nbr in adjacency[start]:
                out.append(nbr)
            return out

        def drain(seen: Set[str]) -> List[str]:
            return [item for item in seen]
        """,
        [DeterminismPass()],
    )
    assert rules == ["D104", "D104"]


def test_d104_membership_only_loop_is_clean(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from typing import Set

        def count_truthy(seen: Set[str]) -> int:
            count = 0
            for item in seen:
                if item:
                    count += 1
            return count
        """,
        [DeterminismPass()],
    )
    assert rules == []


def test_d105_assert_and_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        def check(value):
            assert value is not None
            assert value > 0  # analysis: allow
            return value
        """,
        [DeterminismPass()],
    )
    assert rules == ["D105"]


def test_d106_seedless_scenario_sampling(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from repro.scenarios import ScenarioGenerator, generate_scenarios

        def fleets(base):
            bad = ScenarioGenerator(base)
            also_bad = generate_scenarios(base, link_failure_k=2)
            return bad, also_bad
        """,
        [DeterminismPass()],
    )
    assert rules == ["D106", "D106"]


def test_d106_quiet_with_seed_splat_or_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from repro.scenarios import ScenarioGenerator, generate_scenarios

        def fleets(base, options):
            seeded = ScenarioGenerator(base, seed=3)
            splat = generate_scenarios(base, **options)
            waived = ScenarioGenerator(base)  # analysis: allow[D106]
            return seeded, splat, waived
        """,
        [DeterminismPass()],
    )
    assert rules == []


def test_d107_lp_rebuilt_in_loop(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from repro.lp import LinearProgram

        def sweep(points):
            results = []
            for point in points:
                lp = LinearProgram()
                lp.variable("x")
                results.append(lp.solve())
            while points:
                model = LinearProgram()
                points = points[1:] if model.solve() else []
            return results
        """,
        [DeterminismPass()],
    )
    assert rules == ["D107", "D107"]


def test_d107_quiet_on_reuse_hoist_or_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from repro.lp import LinearProgram

        def sweep(points, compiled):
            lp = LinearProgram()  # hoisted: built once, solved many
            results = []
            for point in points:
                compiled.set_rhs([point])
                results.append(compiled.solve())
                results.append(lp.solve())
            for point in points:
                fresh = LinearProgram()  # built per point, never solved here
                results.append(fresh)
            for point in points:
                waived = LinearProgram()  # analysis: allow[D107]
                results.append(waived.solve())
            return results
        """,
        [DeterminismPass()],
    )
    assert rules == []


def test_d108_dense_pair_materialization(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from repro.net.paths import all_pairs_shortest_paths

        def sweep(network):
            paths = all_pairs_shortest_paths(network)
            grid = network.node_pairs()
            return paths, grid
        """,
        [DeterminismPass()],
    )
    assert rules == ["D108", "D108"]


def test_d108_quiet_on_sparse_spellings_or_pragma(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        from repro.net.paths import shortest_path_delays

        def sweep(network, cache, sources):
            delays = [shortest_path_delays(network, src) for src in sources]
            total = cache.total_cached()
            waived = all_pairs_shortest_paths(network)  # analysis: allow[D108]
            return delays, total, waived
        """,
        [DeterminismPass()],
    )
    assert rules == []


# ----------------------------------------------------------------------
# Spawn-safety pass
# ----------------------------------------------------------------------
def test_s201_lambda_at_pool_boundary(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        def figure(engine, plan, workload):
            plan.add("B4", lambda item: object(), workload)
            return engine.run_plan(plan)
        """,
        [SpawnSafetyPass()],
    )
    assert rules == ["S201"]


def test_s202_local_def_at_pool_boundary(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        def figure(engine, plan):
            def make(item):
                return item
            return engine.run_plan(plan, make)
        """,
        [SpawnSafetyPass()],
    )
    assert rules == ["S202"]


def test_module_level_factory_is_clean(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        def make(item):
            return item

        def figure(engine, plan):
            return engine.run_plan(plan, make)
        """,
        [SpawnSafetyPass()],
    )
    assert rules == []


def spec_registry_modules():
    spec_path = REPO / "src" / "repro" / "experiments" / "spec.py"
    modules, failures = collect_modules([str(spec_path)], root=str(REPO))
    assert not failures
    return modules


def test_s203_registry_round_trips():
    findings = list(SpawnSafetyPass().check_tree(spec_registry_modules()))
    assert findings == []


def test_s203_flags_non_json_native_builder_default():
    import repro.experiments.spec as spec

    @spec.register_scheme("BadDefaultScheme")
    def _bad(item, knob=object()):  # noqa: B008 - the violation under test
        return None

    try:
        findings = list(SpawnSafetyPass().check_tree(spec_registry_modules()))
    finally:
        del spec._REGISTRY["BadDefaultScheme"]
    bad = [f for f in findings if "BadDefaultScheme" in f.message]
    assert len(bad) == 1
    assert bad[0].rule == "S203"
    assert "knob" in bad[0].message


def test_s203_skipped_on_foreign_trees(tmp_path):
    # Fixture trees without the registry module never import repro.
    rules = rules_in(tmp_path, "x = 1\n", [SpawnSafetyPass()])
    assert rules == []


# ----------------------------------------------------------------------
# Schema-drift pass
# ----------------------------------------------------------------------
def test_c301_reader_of_unwritten_field(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        def _result_to_record(result):
            return {"kind": "result", "seconds": result.seconds}

        def enrich(record):
            record["seconds_total"] = record["seconds"] * 2

        def show(record):
            return record["seconds_total"], record["missing"]
        """,
        [SchemaDriftPass()],
        name="mystore.py",
    )
    assert rules == ["C301"]


def test_c301_cross_module_reader(tmp_path):
    (tmp_path / "mystore.py").write_text(
        textwrap.dedent(
            """
            def _result_to_record(result):
                return {"kind": "result", "seconds": result.seconds}
            """
        ),
        encoding="utf-8",
    )
    (tmp_path / "view.py").write_text(
        textwrap.dedent(
            """
            from mystore import _result_to_record

            def show(record):
                return record.get("nope")
            """
        ),
        encoding="utf-8",
    )
    findings = analyze_paths(
        [str(tmp_path)], passes=[SchemaDriftPass()], root=str(tmp_path)
    )
    assert [(f.rule, f.path) for f in findings] == [("C301", "view.py")]


def test_c302_manifest_version_drift(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        FORMAT_V1 = 1
        FORMAT_V2 = 2

        def build_manifest(tasks):
            return {"version": FORMAT_V2, "tasks": tasks}

        def load_manifest(payload):
            manifest = payload
            if manifest.get("version") != FORMAT_V1:
                raise ValueError("unsupported manifest version")
            return manifest
        """,
        [SchemaDriftPass()],
    )
    assert rules == ["C302"]


def test_c302_matching_version_is_clean(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        FORMAT_V1 = 1

        def build_manifest(tasks):
            return {"version": FORMAT_V1, "tasks": tasks}

        def load_manifest(payload):
            manifest = payload
            if manifest.get("version") != FORMAT_V1:
                raise ValueError("unsupported manifest version")
            return manifest
        """,
        [SchemaDriftPass()],
    )
    assert rules == []


def test_c303_argparse_dest_drift(tmp_path):
    rules = rules_in(
        tmp_path,
        """
        import argparse

        def main(argv=None):
            parser = argparse.ArgumentParser()
            parser.add_argument("--n-workers", type=int)
            parser.add_argument("figure")
            args = parser.parse_args(argv)
            args.extra = 1
            return args.n_workers, args.figure, args.extra, args.missing
        """,
        [SchemaDriftPass()],
    )
    assert rules == ["C303"]


# ----------------------------------------------------------------------
# Parse failures, baseline machinery
# ----------------------------------------------------------------------
def test_e001_unparseable_file(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    findings = analyze_paths([str(tmp_path)], root=str(tmp_path))
    assert [f.rule for f in findings] == ["E001"]
    assert findings[0].severity is Severity.ERROR


def _finding(line, rule="D105", path="a.py", context="assert x"):
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        message="m",
        context=context,
    )


def test_fingerprint_ignores_line_numbers():
    assert fingerprint(_finding(3)) == fingerprint(_finding(40))
    assert fingerprint(_finding(3)) != fingerprint(_finding(3, rule="D103"))


def test_baseline_round_trip_and_count_budget(tmp_path):
    base = tmp_path / "base.json"
    write_baseline(str(base), [_finding(1), _finding(5)])
    loaded = load_baseline(str(base))
    assert loaded == {"D105|a.py|assert x": 2}
    # Two occurrences absorbed, the third (new duplicate) stays live.
    fresh, suppressed = apply_baseline(
        [_finding(1), _finding(5), _finding(9)], loaded
    )
    assert suppressed == 2
    assert [f.line for f in fresh] == [9]


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(str(bad))
    bad.write_text(
        json.dumps({"format": 1, "findings": {"k": 0}}), encoding="utf-8"
    )
    with pytest.raises(BaselineError):
        load_baseline(str(bad))
    with pytest.raises(BaselineError):
        load_baseline(str(tmp_path / "does-not-exist.json"))


def test_rule_table_covers_every_pass():
    table = rule_table()
    for rule in (
        "E001", "D101", "D102", "D103", "D104", "D105", "D106",
        "D107", "D108",
        "S201", "S202", "S203", "C301", "C302", "C303",
    ):
        assert rule in table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
VIOLATION = "def check(value):\n    assert value\n    return value\n"


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert analysis_main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_violation_gates_and_renders(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(VIOLATION, encoding="utf-8")
    assert analysis_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "[D105]" in out


def test_cli_json_report(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(VIOLATION, encoding="utf-8")
    assert analysis_main([str(tmp_path), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["counts"]["total"] == 1
    assert report["counts"]["gating"] == 1
    assert report["counts"]["by_rule"] == {"D105": 1}
    (finding,) = report["findings"]
    assert finding["rule"] == "D105"
    assert finding["severity"] == "error"


def test_cli_baseline_workflow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert analysis_main(
        [str(tmp_path), "--write-baseline", str(baseline)]
    ) == 0
    # Baselined legacy finding no longer gates ...
    assert analysis_main([str(tmp_path), "--baseline", str(baseline)]) == 0
    # ... but one *more* occurrence of the same violation does.
    bad.write_text(VIOLATION + "\n\nassert True\n", encoding="utf-8")
    assert analysis_main([str(tmp_path), "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_cli_error_paths(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert analysis_main([str(tmp_path), "--min-severity", "bogus"]) == 2
    assert analysis_main(
        [str(tmp_path), "--baseline", str(tmp_path / "missing.json")]
    ) == 2
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "D105" in out


# ----------------------------------------------------------------------
# The committed tree must be clean (the CI gate)
# ----------------------------------------------------------------------
def test_repo_tree_has_no_findings():
    findings = analyze_paths(
        [str(REPO / "src" / "repro")], passes=all_passes(), root=str(REPO)
    )
    assert [f.render() for f in findings] == []


def test_committed_baseline_is_empty():
    baseline = load_baseline(str(REPO / "analysis-baseline.json"))
    assert baseline == {}


# ----------------------------------------------------------------------
# mypy strict surface (runs only where mypy is installed, e.g. CI)
# ----------------------------------------------------------------------
def test_mypy_strict_scheduling_stack():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [
            sys.executable, "-m", "mypy", "--strict",
            "src/repro/experiments/cost.py",
            "src/repro/experiments/plan.py",
            "src/repro/experiments/spec.py",
            "src/repro/lp/model.py",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr

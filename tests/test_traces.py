"""Unit tests for synthetic traces and their statistics."""

import numpy as np
import pytest

from repro.traces import (
    SyntheticTraceConfig,
    minute_means,
    minute_sigma_pairs,
    per_minute_sigma,
    resample_to_interval,
    synthesize_trace,
    trace_ensemble,
)


class TestConfig:
    def test_defaults_valid(self):
        config = SyntheticTraceConfig()
        assert config.samples_per_minute == 60_000

    def test_coarse_sampling(self):
        config = SyntheticTraceConfig(sample_ms=100)
        assert config.samples_per_minute == 600

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(mean_bps=0.0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(minutes=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(burst_correlation=1.0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(sample_ms=7)


class TestSynthesize:
    def test_shape(self, rng):
        config = SyntheticTraceConfig(minutes=3, sample_ms=100)
        trace = synthesize_trace(config, rng)
        assert trace.shape == (3 * 600,)

    def test_nonnegative(self, rng):
        config = SyntheticTraceConfig(
            minutes=2, sample_ms=10, burst_sigma_fraction=0.8
        )
        trace = synthesize_trace(config, rng)
        assert (trace >= 0).all()

    def test_mean_near_configured(self, rng):
        config = SyntheticTraceConfig(
            mean_bps=2e9, minutes=5, sample_ms=100, mean_drift=0.01
        )
        trace = synthesize_trace(config, rng)
        assert trace.mean() == pytest.approx(2e9, rel=0.2)

    def test_deterministic(self):
        config = SyntheticTraceConfig(minutes=2, sample_ms=100)
        a = synthesize_trace(config, np.random.default_rng(3))
        b = synthesize_trace(config, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_minute_means_drift_mildly(self, rng):
        """Google WAN observation: minute-to-minute change < ~10%."""
        config = SyntheticTraceConfig(minutes=20, sample_ms=100, mean_drift=0.03)
        trace = synthesize_trace(config, rng)
        means = minute_means(trace, 600)
        changes = np.abs(np.diff(means)) / means[:-1]
        assert np.median(changes) < 0.1

    def test_sigma_persistent(self, rng):
        """Figure 10's property: sigma(t+1) is close to sigma(t)."""
        config = SyntheticTraceConfig(minutes=20, sample_ms=10)
        trace = synthesize_trace(config, rng)
        pairs = minute_sigma_pairs(trace, 6000)
        xs = np.array([p[0] for p in pairs])
        ys = np.array([p[1] for p in pairs])
        relative = np.abs(ys - xs) / xs
        assert np.median(relative) < 0.3

    def test_burst_correlation_positive(self, rng):
        config = SyntheticTraceConfig(minutes=2, sample_ms=1)
        trace = synthesize_trace(config, rng)
        x = trace[:-1] - trace[:-1].mean()
        y = trace[1:] - trace[1:].mean()
        lag1 = float((x * y).mean() / (x.std() * y.std()))
        assert lag1 > 0.9


class TestEnsemble:
    def test_count_and_range(self, rng):
        traces = trace_ensemble(4, rng, minutes=2, sample_ms=100)
        assert len(traces) == 4
        for trace in traces:
            assert 0.3e9 < trace.mean() < 6e9

    def test_rejects_zero(self, rng):
        with pytest.raises(ValueError):
            trace_ensemble(0, rng)


class TestStats:
    def test_minute_means(self):
        trace = np.concatenate([np.full(600, 1.0), np.full(600, 3.0)])
        means = minute_means(trace, 600)
        assert means == pytest.approx([1.0, 3.0])

    def test_truncates_partial_minute(self):
        trace = np.ones(1500)
        assert len(minute_means(trace, 600)) == 2

    def test_sigma(self):
        minute = np.tile([0.0, 2.0], 300)
        assert per_minute_sigma(minute, 600)[0] == pytest.approx(1.0)

    def test_sigma_pairs(self):
        trace = np.concatenate(
            [np.tile([0.0, 2.0], 300), np.tile([0.0, 4.0], 300)]
        )
        pairs = minute_sigma_pairs(trace, 600)
        assert pairs == [(pytest.approx(1.0), pytest.approx(2.0))]

    def test_resample(self):
        trace = np.arange(10, dtype=float)
        coarse = resample_to_interval(trace, 5)
        assert coarse == pytest.approx([2.0, 7.0])

    def test_stats_validation(self):
        with pytest.raises(ValueError):
            minute_means(np.ones(10), 600)
        with pytest.raises(ValueError):
            minute_means(np.ones((2, 2)), 1)
        with pytest.raises(ValueError):
            resample_to_interval(np.ones(3), 0)

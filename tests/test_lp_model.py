"""Unit tests for the LP modelling layer."""

import pytest

from repro.lp import (
    InfeasibleError,
    LinearProgram,
    LinExpr,
    UnboundedError,
)


class TestLinExpr:
    def test_add_term_accumulates(self):
        lp = LinearProgram()
        x = lp.variable("x")
        expr = LinExpr()
        expr.add_term(x, 1.0)
        expr.add_term(x, 2.0)
        assert expr.terms[x] == 3.0

    def test_addition(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        expr = LinExpr({x: 1.0}) + LinExpr({y: 2.0})
        assert expr.terms == {x: 1.0, y: 2.0}

    def test_add_variable(self):
        lp = LinearProgram()
        x, y = lp.variable("x"), lp.variable("y")
        expr = LinExpr({x: 1.0}) + y
        assert expr.terms == {x: 1.0, y: 1.0}

    def test_scalar_multiplication(self):
        lp = LinearProgram()
        x = lp.variable("x")
        expr = LinExpr({x: 2.0}) * 3.0
        assert expr.terms[x] == 6.0

    def test_variable_times_scalar(self):
        lp = LinearProgram()
        x = lp.variable("x")
        assert (x * 4.0).terms[x] == 4.0
        assert (4.0 * x).terms[x] == 4.0


class TestSolve:
    def test_simple_minimization(self):
        lp = LinearProgram()
        x = lp.variable("x")
        y = lp.variable("y")
        lp.add_constraint(LinExpr({x: 1.0, y: 1.0}), ">=", 1.0)
        lp.minimize(LinExpr({x: 1.0, y: 2.0}))
        solution = lp.solve()
        assert solution.objective == pytest.approx(1.0)
        assert solution.value(x) == pytest.approx(1.0)
        assert solution.value(y) == pytest.approx(0.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.variable("x")
        y = lp.variable("y")
        lp.add_constraint(LinExpr({x: 1.0, y: 1.0}), "==", 5.0)
        lp.minimize(LinExpr({x: 3.0, y: 1.0}))
        solution = lp.solve()
        assert solution.value(y) == pytest.approx(5.0)

    def test_upper_bounds_respected(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=2.0)
        y = lp.variable("y")
        lp.add_constraint(LinExpr({x: 1.0, y: 1.0}), ">=", 5.0)
        lp.minimize(LinExpr({x: 1.0, y: 10.0}))
        solution = lp.solve()
        assert solution.value(x) == pytest.approx(2.0)
        assert solution.value(y) == pytest.approx(3.0)

    def test_lower_bounds(self):
        lp = LinearProgram()
        x = lp.variable("x", lower=1.5)
        lp.minimize(LinExpr({x: 1.0}))
        assert lp.solve().value(x) == pytest.approx(1.5)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        x = lp.variable("x", upper=1.0)
        lp.add_constraint(LinExpr({x: 1.0}), ">=", 2.0)
        lp.minimize(LinExpr({x: 1.0}))
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.minimize(LinExpr({x: -1.0}))
        with pytest.raises(UnboundedError):
            lp.solve()

    def test_no_objective_raises(self):
        lp = LinearProgram()
        lp.variable("x")
        with pytest.raises(ValueError, match="objective"):
            lp.solve()

    def test_constraint_on_bare_variable(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.add_constraint(x, ">=", 3.0)
        lp.minimize(LinExpr({x: 1.0}))
        assert lp.solve().value(x) == pytest.approx(3.0)

    def test_invalid_sense_rejected(self):
        lp = LinearProgram()
        x = lp.variable("x")
        with pytest.raises(ValueError, match="sense"):
            lp.add_constraint(x, "<", 1.0)

    def test_invalid_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.variable("x", lower=2.0, upper=1.0)

    def test_variables_helper(self):
        lp = LinearProgram()
        xs = lp.variables("x", 5)
        assert len(xs) == 5
        assert lp.num_variables == 5
        assert xs[3].name == "x[3]"

    def test_counts(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.add_constraint(x, ">=", 0.0)
        lp.add_constraint(x, "<=", 5.0)
        assert lp.num_constraints == 2

    def test_values_batch(self):
        lp = LinearProgram()
        x, y = lp.variable("x", lower=1.0), lp.variable("y", lower=2.0)
        lp.minimize(LinExpr({x: 1.0, y: 1.0}))
        solution = lp.solve()
        assert solution.values([x, y]) == pytest.approx([1.0, 2.0])

    def test_degenerate_transport_problem(self):
        # Classic 2x2 transportation LP with a known optimum.
        lp = LinearProgram()
        x11, x12 = lp.variable("x11"), lp.variable("x12")
        x21, x22 = lp.variable("x21"), lp.variable("x22")
        lp.add_constraint(LinExpr({x11: 1.0, x12: 1.0}), "==", 10.0)
        lp.add_constraint(LinExpr({x21: 1.0, x22: 1.0}), "==", 20.0)
        lp.add_constraint(LinExpr({x11: 1.0, x21: 1.0}), "==", 15.0)
        lp.add_constraint(LinExpr({x12: 1.0, x22: 1.0}), "==", 15.0)
        lp.minimize(LinExpr({x11: 1.0, x12: 4.0, x21: 2.0, x22: 1.0}))
        solution = lp.solve()
        # Ship as much as possible on the cheap arcs: x11=10, x21=5, x22=15.
        assert solution.objective == pytest.approx(10 + 10 + 15)

"""Unit tests for Placement and its metrics."""

import pytest

from repro.net.units import Gbps, ms
from repro.routing.base import (
    PathAllocation,
    Placement,
    normalize_allocations,
)
from repro.tm.matrix import Aggregate


def make_placement(network, allocs, unplaced=None):
    return Placement(network, allocs, unplaced_bps=unplaced)


class TestValidation:
    def test_fractions_must_sum_to_one(self, triangle):
        agg = Aggregate("a", "b", Gbps(1))
        with pytest.raises(ValueError, match="sum"):
            make_placement(triangle, {agg: [PathAllocation(("a", "b"), 0.5)]})

    def test_path_endpoints_must_match(self, triangle):
        agg = Aggregate("a", "b", Gbps(1))
        with pytest.raises(ValueError, match="assigned path"):
            make_placement(triangle, {agg: [PathAllocation(("a", "c"), 1.0)]})

    def test_split_allocation_valid(self, triangle):
        agg = Aggregate("a", "b", Gbps(1))
        placement = make_placement(
            triangle,
            {
                agg: [
                    PathAllocation(("a", "b"), 0.6),
                    PathAllocation(("a", "c", "b"), 0.4),
                ]
            },
        )
        assert len(placement.paths_for(agg)) == 2


class TestLinkMetrics:
    def test_link_loads(self, triangle):
        agg = Aggregate("a", "b", Gbps(4))
        placement = make_placement(
            triangle,
            {
                agg: [
                    PathAllocation(("a", "b"), 0.75),
                    PathAllocation(("a", "c", "b"), 0.25),
                ]
            },
        )
        loads = placement.link_loads_bps()
        assert loads[("a", "b")] == pytest.approx(Gbps(3))
        assert loads[("a", "c")] == pytest.approx(Gbps(1))
        assert loads[("c", "b")] == pytest.approx(Gbps(1))
        assert loads[("b", "a")] == 0.0

    def test_max_utilization(self, triangle):
        agg = Aggregate("a", "b", Gbps(5))
        placement = make_placement(
            triangle, {agg: [PathAllocation(("a", "b"), 1.0)]}
        )
        assert placement.max_utilization() == pytest.approx(0.5)

    def test_saturated_links(self, triangle):
        agg = Aggregate("a", "b", Gbps(12))
        placement = make_placement(
            triangle, {agg: [PathAllocation(("a", "b"), 1.0)]}
        )
        assert placement.saturated_links() == [("a", "b")]

    def test_exactly_full_is_not_saturated(self, triangle):
        agg = Aggregate("a", "b", Gbps(10))
        placement = make_placement(
            triangle, {agg: [PathAllocation(("a", "b"), 1.0)]}
        )
        assert placement.saturated_links() == []


class TestPairMetrics:
    def test_congested_pair_fraction(self, triangle):
        heavy = Aggregate("a", "b", Gbps(12))
        light = Aggregate("b", "c", Gbps(1))
        placement = make_placement(
            triangle,
            {
                heavy: [PathAllocation(("a", "b"), 1.0)],
                light: [PathAllocation(("b", "c"), 1.0)],
            },
        )
        assert placement.congested_pair_fraction() == pytest.approx(0.5)

    def test_no_congestion_zero(self, triangle, triangle_tm):
        allocs = {
            agg: [PathAllocation((agg.src, agg.dst), 1.0)]
            for agg in triangle_tm.aggregates()
        }
        placement = make_placement(triangle, allocs)
        assert placement.congested_pair_fraction() == 0.0

    def test_stretch_on_shortest_paths_is_one(self, triangle, triangle_tm):
        allocs = {
            agg: [PathAllocation((agg.src, agg.dst), 1.0)]
            for agg in triangle_tm.aggregates()
        }
        placement = make_placement(triangle, allocs)
        assert placement.total_latency_stretch() == pytest.approx(1.0)

    def test_stretch_counts_detours(self, triangle):
        agg = Aggregate("a", "b", Gbps(1), n_flows=1)
        placement = make_placement(
            triangle, {agg: [PathAllocation(("a", "c", "b"), 1.0)]}
        )
        # 2 ms path over a 1 ms shortest path.
        assert placement.total_latency_stretch() == pytest.approx(2.0)

    def test_stretch_weighted_by_flows(self, triangle):
        detoured = Aggregate("a", "b", Gbps(1), n_flows=3)
        direct = Aggregate("b", "c", Gbps(1), n_flows=1)
        placement = make_placement(
            triangle,
            {
                detoured: [PathAllocation(("a", "c", "b"), 1.0)],
                direct: [PathAllocation(("b", "c"), 1.0)],
            },
        )
        # (3*2ms + 1*1ms) / (3*1ms + 1*1ms) = 7/4.
        assert placement.total_latency_stretch() == pytest.approx(1.75)

    def test_max_path_stretch(self, diamond):
        agg = Aggregate("s", "t", Gbps(1))
        placement = make_placement(
            diamond,
            {
                agg: [
                    PathAllocation(("s", "x", "t"), 0.9),
                    PathAllocation(("s", "y", "t"), 0.1),
                ]
            },
        )
        # Slow route is 10 ms vs 2 ms shortest.
        assert placement.max_path_stretch() == pytest.approx(5.0)

    def test_per_aggregate_stretch(self, diamond):
        agg = Aggregate("s", "t", Gbps(1))
        placement = make_placement(
            diamond,
            {
                agg: [
                    PathAllocation(("s", "x", "t"), 0.5),
                    PathAllocation(("s", "y", "t"), 0.5),
                ]
            },
        )
        stretches = placement.per_aggregate_stretch()
        assert stretches[agg] == pytest.approx(3.0)  # (1+5)/2 ms over 2 ms

    def test_fits_all_traffic_flag(self, triangle):
        agg = Aggregate("a", "b", Gbps(1))
        fitted = make_placement(
            triangle, {agg: [PathAllocation(("a", "b"), 1.0)]}
        )
        assert fitted.fits_all_traffic
        overloaded = make_placement(
            triangle,
            {agg: [PathAllocation(("a", "b"), 1.0)]},
            unplaced={agg: Gbps(0.5)},
        )
        assert not overloaded.fits_all_traffic


class TestNormalizeAllocations:
    def test_drops_tiny_fractions(self):
        agg = Aggregate("a", "b", Gbps(1))
        cleaned = normalize_allocations(
            {agg: [(("a", "b"), 0.9999999), (("a", "c", "b"), 1e-9)]}
        )
        assert len(cleaned[agg]) == 1
        assert cleaned[agg][0].fraction == pytest.approx(1.0)

    def test_renormalizes(self):
        agg = Aggregate("a", "b", Gbps(1))
        cleaned = normalize_allocations(
            {agg: [(("a", "b"), 0.6), (("a", "c", "b"), 0.3)]}
        )
        total = sum(alloc.fraction for alloc in cleaned[agg])
        assert total == pytest.approx(1.0)

    def test_keeps_largest_when_all_tiny(self):
        agg = Aggregate("a", "b", Gbps(1))
        cleaned = normalize_allocations(
            {agg: [(("a", "b"), 1e-9), (("a", "c", "b"), 1e-8)]}
        )
        assert cleaned[agg][0].path == ("a", "c", "b")
        assert cleaned[agg][0].fraction == pytest.approx(1.0)

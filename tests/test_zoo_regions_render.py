"""Remaining small units: region sampling and renderer formatting."""

import numpy as np
import pytest

from repro.experiments.render import render_series
from repro.net.zoo import CENTRAL_EUROPE, EUROPE, NORTH_AMERICA, Region


class TestRegionSampling:
    def test_samples_within_bounds(self, rng):
        for region in (EUROPE, NORTH_AMERICA, CENTRAL_EUROPE):
            for lat, lon in region.sample(rng, 50):
                assert region.lat_min <= lat <= region.lat_max
                assert region.lon_min <= lon <= region.lon_max

    def test_sample_count(self, rng):
        assert len(EUROPE.sample(rng, 7)) == 7

    def test_custom_region(self, rng):
        tiny = Region("tiny", 10.0, 11.0, 20.0, 21.0)
        lat, lon = tiny.sample(rng, 1)[0]
        assert 10.0 <= lat <= 11.0 and 20.0 <= lon <= 21.0


class TestRenderSeriesFormatting:
    def test_missing_cells_blank(self):
        text = render_series(
            "t", {"a": [(1.0, 2.0)], "b": [(3.0, 4.0)]}
        )
        rows = text.splitlines()[2:]
        assert len(rows) == 2
        # Each series appears only on its own x row.
        assert "2.000" in rows[0] and "4.000" not in rows[0]
        assert "4.000" in rows[1] and "2.000" not in rows[1]

    def test_custom_format(self):
        text = render_series(
            "t", {"a": [(1.0, 0.123456)]}, y_format="{:.1f}"
        )
        assert "0.1" in text
        assert "0.123" not in text

    def test_shared_x_merges(self):
        text = render_series(
            "t", {"a": [(1.0, 2.0)], "b": [(1.0, 3.0)]}
        )
        rows = text.splitlines()[2:]
        assert len(rows) == 1
        assert "2.000" in rows[0] and "3.000" in rows[0]

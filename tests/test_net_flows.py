"""Unit tests for max-flow / min-cut."""

import pytest

from repro.net.flows import max_flow_bps, min_cut_bps
from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms


class TestMaxFlow:
    def test_single_path(self, line4):
        assert max_flow_bps(line4, "n0", "n3") == pytest.approx(Gbps(10))

    def test_parallel_paths_add(self, diamond):
        assert max_flow_bps(diamond, "s", "t") == pytest.approx(Gbps(50))

    def test_triangle(self, triangle):
        # Direct link plus two-hop path.
        assert max_flow_bps(triangle, "a", "b") == pytest.approx(Gbps(20))

    def test_disconnected_zero(self):
        net = Network("disc")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        assert max_flow_bps(net, "a", "b") == 0.0

    def test_same_endpoints_rejected(self, triangle):
        with pytest.raises(ValueError):
            max_flow_bps(triangle, "a", "a")

    def test_bottleneck_in_middle(self):
        net = Network("bottleneck")
        for name in "abcd":
            net.add_node(Node(name))
        net.add_duplex_link("a", "b", Gbps(100), ms(1))
        net.add_duplex_link("b", "c", Gbps(1), ms(1))
        net.add_duplex_link("c", "d", Gbps(100), ms(1))
        assert max_flow_bps(net, "a", "d") == pytest.approx(Gbps(1))

    def test_restricted_links(self, diamond):
        # Restricting to the fast path's links excludes the fat path.
        flow = max_flow_bps(
            diamond, "s", "t", restrict_links=[("s", "x"), ("x", "t")]
        )
        assert flow == pytest.approx(Gbps(10))

    def test_restricted_links_disconnected(self, diamond):
        assert max_flow_bps(diamond, "s", "t", restrict_links=[("s", "x")]) == 0.0

    def test_directionality(self):
        net = Network("one-way")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        from repro.net.graph import Link

        net.add_link(Link("a", "b", Gbps(5), ms(1)))
        assert max_flow_bps(net, "a", "b") == pytest.approx(Gbps(5))
        assert max_flow_bps(net, "b", "a") == 0.0

    def test_min_cut_equals_max_flow(self, diamond):
        assert min_cut_bps(diamond, "s", "t") == pytest.approx(
            max_flow_bps(diamond, "s", "t")
        )

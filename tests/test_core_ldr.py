"""Tests for the LDR controller and headroom utilities."""

import numpy as np
import pytest

from repro.core.headroom import headroom_sweep, minmax_equivalent_headroom
from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController
from repro.net.units import Gbps
from repro.tm import TrafficMatrix
from repro.traces import SyntheticTraceConfig, minute_means, synthesize_trace


def smooth_traffic(pairs, rate_bps, n_samples=600):
    """Perfectly flat aggregates: every check passes trivially."""
    return [
        AggregateTraffic(src, dst, np.full(n_samples, rate_bps), [rate_bps])
        for src, dst in pairs
    ]


def bursty_traffic(pairs, mean_bps, rng, sigma_fraction=0.3):
    items = []
    for src, dst in pairs:
        config = SyntheticTraceConfig(
            mean_bps=mean_bps,
            minutes=2,
            sample_ms=100,
            burst_sigma_fraction=sigma_fraction,
        )
        trace = synthesize_trace(config, rng)
        items.append(
            AggregateTraffic(src, dst, trace[-600:], minute_means(trace, 600))
        )
    return items


class TestLdrConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LdrConfig(scale_up=1.0)
        with pytest.raises(ValueError):
            LdrConfig(max_rounds=0)


class TestAggregateTraffic:
    def test_validation(self):
        with pytest.raises(ValueError):
            AggregateTraffic("a", "a", np.ones(3), [1.0])
        with pytest.raises(ValueError):
            AggregateTraffic("a", "b", np.array([]), [1.0])
        with pytest.raises(ValueError):
            AggregateTraffic("a", "b", np.ones(3), [])


class TestPredictDemands:
    def test_hedge_applied(self, triangle):
        controller = LdrController(triangle)
        traffic = smooth_traffic([("a", "b")], Gbps(1))
        demands = controller.predict_demands(traffic)
        assert demands[("a", "b")] == pytest.approx(Gbps(1) * 1.1)

    def test_state_persists_across_calls(self, triangle):
        controller = LdrController(triangle)
        controller.predict_demands(smooth_traffic([("a", "b")], Gbps(2)))
        # A drop decays slowly from the earlier high prediction.
        demands = controller.predict_demands(smooth_traffic([("a", "b")], Gbps(1)))
        assert demands[("a", "b")] == pytest.approx(Gbps(2) * 1.1 * 0.98)


class TestRoute:
    def test_smooth_traffic_one_round(self, triangle):
        controller = LdrController(triangle)
        traffic = smooth_traffic(
            [("a", "b"), ("b", "c"), ("a", "c")], Gbps(1)
        )
        result = controller.route(traffic)
        assert result.converged
        assert result.rounds == 1
        assert result.placement.total_latency_stretch() == pytest.approx(1.0)

    def test_converges_on_loaded_network(self, gts):
        from tests.conftest import loaded_gts_tm

        # Lighter load (min-cut 60%) and mild burstiness: LDR's regime.
        tm = loaded_gts_tm(gts, growth_factor=1.65)
        rng = np.random.default_rng(11)
        traffic = []
        last_means = {}
        for agg in tm.aggregates():
            config = SyntheticTraceConfig(
                mean_bps=agg.demand_bps,
                minutes=2,
                sample_ms=100,
                burst_sigma_fraction=0.15,
            )
            trace = synthesize_trace(config, rng)
            means = minute_means(trace, 600)
            last_means[agg.pair] = float(means[-1])
            traffic.append(
                AggregateTraffic(agg.src, agg.dst, trace[-600:], means)
            )
        controller = LdrController(gts, LdrConfig(max_rounds=20))
        result = controller.route(traffic)
        assert result.converged
        # No link may be overloaded by the (hedged) demand estimates.
        assert result.placement.max_utilization() <= 1.0 + 1e-4
        # Algorithm 1 guarantees prediction >= hedge * last measured mean,
        # and the multiplexing loop only ever scales demands up.
        for pair, mean in last_means.items():
            assert result.demands_bps[pair] >= mean * 1.1 * 0.999

    def test_bursty_elephant_gets_split_or_scaled(self, diamond, rng):
        """A single bursty elephant near the fast path's capacity should
        force LDR to reserve headroom (scale up) and spill to the slow
        path, where a mean-rate-only optimizer would pack the fast path
        full."""
        traffic = bursty_traffic([("s", "t")], Gbps(8.5), rng, sigma_fraction=0.4)
        controller = LdrController(diamond, LdrConfig(max_rounds=15))
        result = controller.route(traffic)
        agg = result.placement.aggregates[0]
        used_slow = any(
            "y" in alloc.path for alloc in result.placement.paths_for(agg)
        )
        scaled_up = result.demands_bps[("s", "t")] > Gbps(8.5) * 1.1 * 1.05
        assert used_slow or scaled_up

    def test_unroutable_demands_stop_early(self, triangle):
        controller = LdrController(triangle, LdrConfig(max_rounds=5))
        traffic = smooth_traffic([("a", "b")], Gbps(25))
        result = controller.route(traffic)
        assert not result.converged
        assert result.rounds <= 5

    def test_empty_traffic_rejected(self, triangle):
        controller = LdrController(triangle)
        with pytest.raises(ValueError):
            controller.route([])


class TestHeadroom:
    def test_minmax_equivalent_headroom(self, gts, gts_tm):
        headroom = minmax_equivalent_headroom(gts, gts_tm)
        # Traffic scaled for growth factor 1.3: min-cut at 77% -> 23% free.
        assert headroom == pytest.approx(1 - 1 / 1.3, rel=1e-3)

    def test_headroom_zero_when_unroutable(self, triangle):
        tm = TrafficMatrix({("a", "b"): Gbps(30)})
        assert minmax_equivalent_headroom(triangle, tm) == 0.0

    def test_sweep(self):
        values = headroom_sweep(0.4, 5)
        assert values == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        with pytest.raises(ValueError):
            headroom_sweep(0.4, 1)
        with pytest.raises(ValueError):
            headroom_sweep(1.0, 3)

    def test_latency_optimal_converges_to_minmax_at_full_headroom(
        self, gts, gts_tm
    ):
        """The paper's §4 observation: with headroom set to MinMax's free
        capacity, latency-optimal placement matches MinMax's stretch."""
        from repro.routing import LatencyOptimalRouting, MinMaxRouting

        headroom = minmax_equivalent_headroom(gts, gts_tm)
        ldr_at_max = LatencyOptimalRouting(headroom=headroom).place(gts, gts_tm)
        minmax = MinMaxRouting().place(gts, gts_tm)
        assert ldr_at_max.total_latency_stretch() == pytest.approx(
            minmax.total_latency_stretch(), rel=0.02
        )
        assert ldr_at_max.max_utilization() <= 1 / 1.3 * 1.01

"""Tests for the concurrent-flow machinery and the CLI entry point."""

import numpy as np
import pytest

from repro.net.paths import path_delay_s, path_links
from repro.net.units import Gbps
from repro.routing.minmax import mcf_seed_paths, optimal_max_utilization
from repro.tm import TrafficMatrix
from repro.tm.scale import max_scale_flows


class TestMaxScaleFlows:
    def test_flows_route_the_matrix(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(20)})
        lam, flows = max_scale_flows(diamond, tm)
        assert lam == pytest.approx(2.5)  # 50G of s-t capacity / 20G demand
        per_link = flows["s"]
        # Conservation at the source: everything leaves s.
        out = per_link.get(("s", "x"), 0.0) + per_link.get(("s", "y"), 0.0)
        assert out == pytest.approx(Gbps(20), rel=1e-6)

    def test_flows_respect_scaled_capacity(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(20)})
        lam, flows = max_scale_flows(diamond, tm)
        for key, value in flows["s"].items():
            capacity = diamond.link(*key).capacity_bps
            # Flow at scale 1 on a link is at most capacity / lambda.
            assert value <= capacity / lam * (1 + 1e-6)

    def test_want_flows_false_skips(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(1)})
        lam, flows = max_scale_flows(diamond, tm, want_flows=False)
        assert flows is None
        assert lam > 0


class TestMcfSeedPaths:
    def test_seeds_achieve_optimum(self, gts, gts_tm):
        target, seeds = mcf_seed_paths(gts, gts_tm)
        assert target == pytest.approx(1 / 1.3, rel=1e-3)
        assert seeds
        # Every seed path connects its pair.
        for (src, dst), paths in seeds.items():
            for path in paths:
                assert path[0] == src and path[-1] == dst

    def test_seed_paths_are_simple(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(30)})
        target, seeds = mcf_seed_paths(diamond, tm)
        for paths in seeds.values():
            for path in paths:
                assert len(set(path)) == len(path)

    def test_split_demand_gets_both_paths(self, diamond):
        # 30G cannot fit on either route alone: the seed decomposition
        # must use both.
        tm = TrafficMatrix({("s", "t"): Gbps(30)})
        _, seeds = mcf_seed_paths(diamond, tm)
        assert len(seeds[("s", "t")]) == 2

    def test_matches_optimal_max_utilization(self, gts, gts_tm):
        target, _ = mcf_seed_paths(gts, gts_tm)
        assert target == pytest.approx(
            optimal_max_utilization(gts, gts_tm), rel=1e-9
        )


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out

    def test_unknown_figure(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2

    def test_fig09_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig09", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "measured/predicted" in out

    def test_fig07_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig07"]) == 0
        out = capsys.readouterr().out
        assert "minmax" in out

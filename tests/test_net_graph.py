"""Unit tests for the network graph model."""

import pytest

from repro.net.graph import Link, Network, Node
from repro.net.units import Gbps, ms


class TestLink:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link("a", "a", Gbps(1), ms(1))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Link("a", "b", 0.0, ms(1))

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Link("a", "b", -1.0, ms(1))

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Link("a", "b", Gbps(1), -ms(1))

    def test_zero_delay_allowed(self):
        link = Link("a", "b", Gbps(1), 0.0)
        assert link.delay_s == 0.0

    def test_key(self):
        assert Link("a", "b", 1.0, 0.0).key == ("a", "b")

    def test_reversed_swaps_endpoints(self):
        link = Link("a", "b", Gbps(1), ms(2))
        rev = link.reversed()
        assert rev.src == "b" and rev.dst == "a"
        assert rev.capacity_bps == link.capacity_bps
        assert rev.delay_s == link.delay_s


class TestNetworkConstruction:
    def test_add_node_and_lookup(self):
        net = Network("n")
        net.add_node(Node("a", 1.0, 2.0))
        assert net.has_node("a")
        assert net.node("a").lat_deg == 1.0
        assert "a" in net

    def test_add_link_requires_nodes(self):
        net = Network("n")
        net.add_node(Node("a"))
        with pytest.raises(KeyError):
            net.add_link(Link("a", "b", Gbps(1), ms(1)))

    def test_duplicate_link_rejected(self):
        net = Network("n")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        net.add_link(Link("a", "b", Gbps(1), ms(1)))
        with pytest.raises(ValueError, match="duplicate"):
            net.add_link(Link("a", "b", Gbps(2), ms(2)))

    def test_duplex_adds_both_directions(self):
        net = Network("n")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        net.add_duplex_link("a", "b", Gbps(1), ms(1))
        assert net.has_link("a", "b")
        assert net.has_link("b", "a")
        assert net.num_links == 2

    def test_remove_link(self):
        net = Network("n")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        net.add_duplex_link("a", "b", Gbps(1), ms(1))
        net.remove_link("a", "b")
        assert not net.has_link("a", "b")
        assert net.has_link("b", "a")

    def test_remove_missing_link_raises(self):
        net = Network("n")
        net.add_node(Node("a"))
        net.add_node(Node("b"))
        with pytest.raises(KeyError):
            net.remove_link("a", "b")


class TestNetworkQueries:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_links == 6

    def test_successors(self, triangle):
        assert set(triangle.successors("a")) == {"b", "c"}

    def test_out_links(self, triangle):
        out = triangle.out_links("a")
        assert {link.dst for link in out} == {"b", "c"}
        assert all(link.src == "a" for link in out)

    def test_in_links(self, triangle):
        incoming = triangle.in_links("a")
        assert {link.src for link in incoming} == {"b", "c"}

    def test_degree(self, triangle, line4):
        assert triangle.degree("a") == 2
        assert line4.degree("n0") == 1
        assert line4.degree("n1") == 2

    def test_node_pairs(self, triangle):
        pairs = triangle.node_pairs()
        assert len(pairs) == 6
        assert ("a", "b") in pairs and ("b", "a") in pairs
        assert all(u != v for u, v in pairs)

    def test_duplex_pairs(self, square):
        pairs = square.duplex_pairs()
        assert len(pairs) == 4
        assert all(u < v for u, v in pairs)

    def test_total_capacity(self, triangle):
        assert triangle.total_capacity_bps() == pytest.approx(6 * Gbps(10))


class TestDerivedNetworks:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_link("a", "b")
        assert triangle.has_link("a", "b")
        assert not clone.has_link("a", "b")

    def test_with_capacity_factor(self, triangle):
        scaled = triangle.with_capacity_factor(0.5)
        assert scaled.link("a", "b").capacity_bps == pytest.approx(Gbps(5))
        # Delay untouched.
        assert scaled.link("a", "b").delay_s == triangle.link("a", "b").delay_s

    def test_with_capacity_factor_rejects_nonpositive(self, triangle):
        with pytest.raises(ValueError):
            triangle.with_capacity_factor(0.0)

    def test_without_duplex_link(self, triangle):
        reduced = triangle.without_duplex_link("a", "b")
        assert not reduced.has_link("a", "b")
        assert not reduced.has_link("b", "a")
        assert triangle.has_link("a", "b")

    def test_subgraph_with_links(self, triangle):
        sub = triangle.subgraph_with_links([("a", "b"), ("b", "c")])
        assert sub.num_links == 2
        assert sub.has_link("a", "b")
        assert not sub.has_link("b", "a")
        assert sub.num_nodes == 3

"""Final coverage batch: GraphML corner cases, link-based headroom,
decomposition robustness, CLI figure runners."""

import textwrap

import numpy as np
import pytest

from repro.net.io import from_graphml
from repro.net.units import Gbps, ms
from repro.routing import LinkBasedOptimalRouting
from repro.routing.decompose import decompose_flow
from repro.tm import TrafficMatrix

DUPLICATED_GRAPHML = textwrap.dedent(
    """\
    <?xml version="1.0" encoding="utf-8"?>
    <graphml xmlns="http://graphml.graphdrawing.org/xmlns">
      <key id="d0" for="node" attr.name="Latitude" attr.type="double"/>
      <key id="d1" for="node" attr.name="Longitude" attr.type="double"/>
      <key id="d2" for="node" attr.name="label" attr.type="string"/>
      <key id="d3" for="edge" attr.name="LinkSpeedRaw" attr.type="double"/>
      <graph edgedefault="undirected">
        <node id="0">
          <data key="d0">50.0</data><data key="d1">8.0</data>
          <data key="d2">Frankfurt</data>
        </node>
        <node id="1">
          <data key="d0">48.1</data><data key="d1">11.6</data>
          <data key="d2">Munich</data>
        </node>
        <node id="2">
          <data key="d0">48.2</data><data key="d1">11.7</data>
          <data key="d2">Munich</data>
        </node>
        <edge source="0" target="1">
          <data key="d3">5000000000</data>
        </edge>
        <edge source="0" target="1">
          <data key="d3">5000000000</data>
        </edge>
        <edge source="0" target="2"/>
      </graph>
    </graphml>
    """
)


class TestGraphmlCorners:
    @pytest.fixture
    def path(self, tmp_path):
        p = tmp_path / "dup.graphml"
        p.write_text(DUPLICATED_GRAPHML)
        return str(p)

    def test_duplicate_labels_disambiguated(self, path):
        net = from_graphml(path)
        assert sorted(net.node_names) == ["Frankfurt", "Munich", "Munich#2"]

    def test_parallel_edges_sum_capacity(self, path):
        net = from_graphml(path)
        assert net.link("Frankfurt", "Munich").capacity_bps == pytest.approx(
            Gbps(10)
        )

    def test_missing_speed_uses_default(self, path):
        net = from_graphml(path, default_capacity_bps=Gbps(40))
        assert net.link("Frankfurt", "Munich#2").capacity_bps == pytest.approx(
            Gbps(40)
        )


class TestLinkBasedHeadroom:
    def test_headroom_shifts_traffic(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(10)})
        plain = LinkBasedOptimalRouting().place(diamond, tm)
        reserved = LinkBasedOptimalRouting(headroom=0.2).place(diamond, tm)
        # 20% headroom leaves 8G on the fast path: 2G must detour.
        assert (
            reserved.total_latency_stretch()
            > plain.total_latency_stretch()
        )
        loads = reserved.link_loads_bps()
        assert loads[("s", "x")] == pytest.approx(Gbps(8), rel=0.01)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            LinkBasedOptimalRouting(headroom=1.0)


class TestDecomposeRobustness:
    def test_flow_with_spurious_cycle(self, square):
        """A cycle superimposed on a path flow must not break the
        decomposition or inflate the delivered volume."""
        flows = {
            ("a", "b"): 5.0,
            # Cycle b->c->d->a->b carrying 1 unit plus path flow overlap.
            ("b", "c"): 1.0,
            ("c", "d"): 1.0,
            ("d", "a"): 1.0,
            ("a", "b", ): 5.0,
        }
        # Path a->b carries 5 (the demand); the rest is a cycle.
        splits = decompose_flow(square, "a", "b", flows, demand_bps=5.0)
        delivered = sum(fraction for _, fraction in splits)
        assert delivered == pytest.approx(1.0, abs=1e-6)
        assert splits[0][0] == ("a", "b")


class TestCliRunners:
    def test_fig01_small(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig01", "--networks", "3", "--tms", "1"]) == 0
        assert "APA" in capsys.readouterr().out

    def test_fig08_small(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig08", "--networks", "3", "--tms", "1"]) == 0
        out = capsys.readouterr().out
        assert "h=0%" in out and "h=40%" in out

    def test_fig10_small(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig10", "--seed", "2"]) == 0
        assert "corr" in capsys.readouterr().out

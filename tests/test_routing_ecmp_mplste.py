"""Tests for the ECMP and MPLS-TE schemes."""

import pytest

from repro.net.graph import Network, Node
from repro.net.units import Gbps, ms
from repro.routing import (
    B4Routing,
    EcmpRouting,
    LatencyOptimalRouting,
    MplsTeRouting,
    ShortestPathRouting,
)
from repro.tm import TrafficMatrix


def build_parallel_paths() -> Network:
    """Two exactly equal-delay two-hop routes between s and t."""
    net = Network("parallel")
    for name in ("s", "t", "p", "q"):
        net.add_node(Node(name))
    net.add_duplex_link("s", "p", Gbps(10), ms(1))
    net.add_duplex_link("p", "t", Gbps(10), ms(1))
    net.add_duplex_link("s", "q", Gbps(10), ms(1))
    net.add_duplex_link("q", "t", Gbps(10), ms(1))
    return net


class TestEcmp:
    def test_splits_evenly_across_ties(self):
        net = build_parallel_paths()
        tm = TrafficMatrix({("s", "t"): Gbps(10)})
        placement = EcmpRouting().place(net, tm)
        agg = placement.aggregates[0]
        allocs = placement.paths_for(agg)
        assert len(allocs) == 2
        for alloc in allocs:
            assert alloc.fraction == pytest.approx(0.5)
        # Splitting halves utilization relative to plain SP.
        sp = ShortestPathRouting().place(net, tm)
        assert placement.max_utilization() == pytest.approx(
            sp.max_utilization() / 2
        )

    def test_single_shortest_behaves_like_sp(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(4)})
        ecmp = EcmpRouting().place(diamond, tm)
        agg = ecmp.aggregates[0]
        assert [a.path for a in ecmp.paths_for(agg)] == [("s", "x", "t")]

    def test_still_load_oblivious(self):
        net = build_parallel_paths()
        tm = TrafficMatrix({("s", "t"): Gbps(30)})
        placement = EcmpRouting().place(net, tm)
        assert placement.congested_pair_fraction() == 1.0

    def test_stretch_is_one(self, gts, gts_tm):
        placement = EcmpRouting().place(gts, gts_tm)
        assert placement.total_latency_stretch() == pytest.approx(1.0)


class TestMplsTe:
    def test_whole_aggregate_on_one_path_when_possible(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(8)})
        placement = MplsTeRouting().place(diamond, tm)
        agg = placement.aggregates[0]
        allocs = placement.paths_for(agg)
        assert len(allocs) == 1
        assert allocs[0].path == ("s", "x", "t")

    def test_takes_next_path_when_shortest_full(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(8), ("x", "t"): Gbps(9)})
        placement = MplsTeRouting().place(diamond, tm)
        by_pair = {agg.pair: agg for agg in placement.aggregates}
        # x->t (9G, placed first by demand order) hogs the x-t link, so
        # the s->t aggregate no longer fits there whole and single-path
        # preference pushes it onto the slow route.
        st_paths = [a.path for a in placement.paths_for(by_pair[("s", "t")])]
        assert st_paths == [("s", "y", "t")]
        assert placement.fits_all_traffic

    def test_splits_when_no_single_path_fits(self, diamond):
        tm = TrafficMatrix({("s", "t"): Gbps(45)})
        placement = MplsTeRouting().place(diamond, tm)
        agg = placement.aggregates[0]
        assert len(placement.paths_for(agg)) == 2
        assert placement.fits_all_traffic

    def test_forces_residual_when_stuck(self, line4):
        tm = TrafficMatrix({("n0", "n3"): Gbps(15)})
        placement = MplsTeRouting().place(line4, tm)
        assert not placement.fits_all_traffic
        assert placement.max_utilization() == pytest.approx(1.5)

    def test_order_dependence(self):
        """The sequential greedy is order-dependent — the pathology the
        paper attributes to one-at-a-time allocation."""
        net = build_parallel_paths()
        # Add a third, longer escape route so nothing is force-placed.
        net.add_node(Node("z"))
        net.add_duplex_link("s", "z", Gbps(10), ms(5))
        net.add_duplex_link("z", "t", Gbps(10), ms(5))
        tm = TrafficMatrix(
            {("s", "t"): Gbps(10), ("p", "t"): Gbps(10), ("q", "t"): Gbps(10)}
        )
        by_demand = MplsTeRouting(order="demand").place(net, tm)
        by_given = MplsTeRouting(order="given").place(net, tm)
        # Both are valid placements; stretch may differ by order but the
        # schemes must at least agree on total volume placed.
        assert by_demand.fits_all_traffic == by_given.fits_all_traffic

    def test_greedy_worse_than_optimal_on_gts(self, gts, gts_tm):
        mpls = MplsTeRouting().place(gts, gts_tm)
        optimal = LatencyOptimalRouting().place(gts, gts_tm)
        worse = (
            not mpls.fits_all_traffic
            or mpls.total_latency_stretch()
            > optimal.total_latency_stretch() - 1e-9
        )
        assert worse

    def test_same_observations_as_b4_on_trap(self):
        """The paper: "the same observations also hold for MPLS-TE" —
        the Figure 5 trap catches the sequential greedy too."""
        from tests.test_b4_pathologies import (
            build_congestion_trap,
            trap_traffic_matrix,
        )

        net = build_congestion_trap()
        tm = trap_traffic_matrix()
        mpls = MplsTeRouting(order="given").place(net, tm)
        optimal = LatencyOptimalRouting().place(net, tm)
        assert optimal.fits_all_traffic
        # Greedy either strands traffic or pays extra latency.
        assert (
            not mpls.fits_all_traffic
            or mpls.total_latency_stretch()
            > optimal.total_latency_stretch() + 1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MplsTeRouting(headroom=1.0)
        with pytest.raises(ValueError):
            MplsTeRouting(order="random")

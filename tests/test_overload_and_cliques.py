"""Tests for the Figure 12 overload-spreading objective and the clique
observation from Figure 1."""

import numpy as np
import pytest

from repro.core.metrics import apa_all_pairs
from repro.net.units import Gbps
from repro.net.zoo import clique_network
from repro.routing import LatencyOptimalRouting
from repro.tm import TrafficMatrix


class TestOverloadSpreading:
    def test_unavoidable_congestion_spread_equally(self, diamond):
        """Figure 12's last objective layer: "If aggregates' demands
        globally exceed the capacity of possible paths, congestion cannot
        be avoided.  In this case the formulation spreads traffic as
        equally as possible across all links."

        60G into 50G of s-t capacity: the optimum overloads both routes
        to the same 1.2 utilization rather than crushing one of them.
        """
        tm = TrafficMatrix({("s", "t"): Gbps(60)})
        placement = LatencyOptimalRouting().place(diamond, tm)
        assert not placement.fits_all_traffic
        utils = placement.link_utilizations()
        assert utils[("s", "x")] == pytest.approx(1.2, rel=0.01)
        assert utils[("s", "y")] == pytest.approx(1.2, rel=0.01)

    def test_partial_overload_spares_disjoint_links(self, diamond):
        """Only links on the congested pair's paths take overload."""
        tm = TrafficMatrix(
            {("s", "t"): Gbps(60), ("x", "y"): Gbps(1)}
        )
        placement = LatencyOptimalRouting().place(diamond, tm)
        utils = placement.link_utilizations()
        # The cross traffic's own links are not dragged beyond capacity.
        assert utils[("x", "s")] <= 1.2 + 0.01


class TestCliqueApa:
    def test_clique_apa_is_two_level(self):
        """Figure 1: "A few curves are horizontal lines; these are clique
        topologies" — with single-link shortest paths, APA per pair is
        exactly 0 or 1, so the CDF has at most two levels."""
        net = clique_network(7, np.random.default_rng(21))
        values = set(apa_all_pairs(net).values())
        assert values <= {0.0, 1.0}

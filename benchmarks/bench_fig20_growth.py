"""Figure 20: latency benefits of LLPD-guided network growth.

The paper takes hard-to-route (non-clique) networks, repeatedly adds the
candidate link that most increases LLPD until link count grows 5%, and
compares each scheme's latency stretch before and after.

Paper shape: LDR exploits the added links fully (median stretch close to
1 after growth); B4 benefits partially; the MinMax variants benefit least
and can even get *worse*, because they use new links to load-balance more
widely.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.figures import fig20_growth_benefit
from repro.experiments.render import render_scatter_summary

N_HARD_NETWORKS = 3


def pick_hard_items(workload):
    """Non-clique networks with the worst optimal-routing stretch."""
    from repro.routing import LatencyOptimalRouting

    scored = []
    for item in workload.networks:
        n = item.network.num_nodes
        if item.network.num_links >= n * (n - 1):
            continue  # clique: nothing to add
        placement = LatencyOptimalRouting(cache=item.cache).place(
            item.network, item.matrices[0]
        )
        scored.append((placement.total_latency_stretch(), item))
    scored.sort(key=lambda pair: -pair[0])
    return [item for _, item in scored[:N_HARD_NETWORKS]]


def test_fig20_growth(benchmark, standard_workload):
    items = pick_hard_items(standard_workload)
    assert items

    results = benchmark.pedantic(
        fig20_growth_benefit,
        args=(items,),
        kwargs={"max_candidates": 12},
        rounds=1,
        iterations=1,
    )

    # LDR profits from growth at least as much as MinMax does (the
    # paper's central claim: the routing scheme determines which links
    # are worth adding).
    def median_improvement(scheme):
        pairs = results[scheme]["median"]
        return float(np.mean([before - after for before, after in pairs]))

    assert median_improvement("LDR") >= median_improvement("MinMax") - 1e-6
    # After growth, LDR's stretch is the lowest of all schemes (Fig 20:
    # "For three of the networks, LDR's 90th percentile is less than all
    # other routing systems' median latency").  Note stretch is measured
    # against each topology's own shortest paths, which the added links
    # shorten, so "close to 1" depends on how much the baseline moved.
    mean_after = {
        scheme: float(np.mean([after for _, after in data["median"]]))
        for scheme, data in results.items()
    }
    assert mean_after["LDR"] == min(mean_after.values())

    sections = []
    for scheme, data in results.items():
        sections.append(
            render_scatter_summary(
                f"{scheme}: stretch before (x) vs after (y), medians",
                data["median"],
            )
        )
        pairs = ", ".join(
            f"({before:.3f} -> {after:.3f})" for before, after in data["median"]
        )
        sections.append(f"  per-network medians: {pairs}")
    emit("fig20_growth", "\n".join(sections))

"""Telemetry overhead: a traced run must cost within 5% of an untraced one.

The tracer's contract is "off by default, cheap when on": the no-op
recorder makes instrumented call sites free, and the active recorder
only appends one JSONL line per span at top-level flush boundaries.
This benchmark enforces the "cheap when on" half — the same plan runs
untraced and traced (interleaved, medians of several rounds, so a CI
noise spike on one round cannot decide the verdict), and the traced
median must stay within 5% plus a small absolute epsilon.

The epsilon matters at this benchmark's laptop scale: a run measured in
hundreds of milliseconds can swing more than 5% on scheduler jitter
alone, and the guard is after *proportional* overhead (span writes per
task), not a fixed floor.  Outcome equality rides along: tracing must
never change a result.  Everything lands in ``BENCH_obs.json``.
"""

import statistics
import time

from benchmarks.conftest import record_bench_json
from repro.experiments import telemetry
from repro.experiments.plan import EvalPlan, execute_plan
from repro.experiments.spec import SchemeSpec

ROUNDS = 5
#: Allowed overhead: 5% relative plus CI-noise epsilon.
MAX_RELATIVE_OVERHEAD = 0.05
ABS_EPSILON_S = 0.15


def _build_plan(workload) -> EvalPlan:
    plan = EvalPlan()
    plan.add("SP", SchemeSpec("SP"), workload)
    plan.add("B4", SchemeSpec("B4", {"headroom": 0.1}), workload)
    return plan


def _timed_run(plan):
    start = time.perf_counter()
    report = execute_plan(plan)
    return time.perf_counter() - start, report


def test_tracing_overhead_within_five_percent(
    standard_workload, tmp_path, benchmark
):
    plan = _build_plan(standard_workload)

    # Warm-up: pay one-time costs (KSP materialization memoized on the
    # shared workload's networks) outside the measured rounds, so both
    # sides time the same steady-state work.
    _, baseline_report = _timed_run(plan)

    trace_dir = tmp_path / "traces"
    untraced_s = []
    traced_s = []
    traced_report = None
    try:
        # Interleave the two conditions so slow drift (thermal, page
        # cache) lands evenly on both medians instead of on whichever
        # condition ran last.
        for _ in range(ROUNDS):
            seconds, report = _timed_run(plan)
            untraced_s.append(seconds)
            assert report.all_outcomes() == baseline_report.all_outcomes()

            telemetry.configure(trace_dir)
            seconds, traced_report = _timed_run(plan)
            telemetry.disable()
            traced_s.append(seconds)
            assert (
                traced_report.all_outcomes() == baseline_report.all_outcomes()
            ), "tracing changed results"
    finally:
        telemetry.disable()

    untraced_median = statistics.median(untraced_s)
    traced_median = statistics.median(traced_s)
    overhead = (
        traced_median / untraced_median - 1.0 if untraced_median > 0 else 0.0
    )

    trace = telemetry.load_trace(trace_dir)
    n_tasks = sum(len(r) for r in baseline_report.results.values())
    assert len(trace.by_name("task")) == ROUNDS * n_tasks

    # One representative traced round through pytest-benchmark, for the
    # timing machinery's own record.
    telemetry.configure(trace_dir)
    benchmark.pedantic(lambda: execute_plan(plan), rounds=1, iterations=1)
    telemetry.disable()

    record_bench_json(
        "obs",
        {
            "rounds": ROUNDS,
            "n_tasks_per_round": n_tasks,
            "untraced_s": untraced_s,
            "traced_s": traced_s,
            "untraced_median_s": untraced_median,
            "traced_median_s": traced_median,
            "overhead_fraction": overhead,
            "max_relative_overhead": MAX_RELATIVE_OVERHEAD,
            "abs_epsilon_s": ABS_EPSILON_S,
            "n_spans": len(trace.spans),
        },
    )
    assert traced_median <= (
        untraced_median * (1.0 + MAX_RELATIVE_OVERHEAD) + ABS_EPSILON_S
    ), (
        f"tracing overhead {overhead:+.1%} "
        f"(traced {traced_median:.3f}s vs untraced {untraced_median:.3f}s) "
        f"exceeds the {MAX_RELATIVE_OVERHEAD:.0%} budget — the recorder "
        f"has gotten too expensive for hot paths"
    )

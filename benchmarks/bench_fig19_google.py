"""Figure 19: the Figure 3 shortest-path congestion plot with a
Google-SNet-like enterprise topology added.

Paper shape: the Google-like network has the highest LLPD of the whole
ensemble (the paper measures 0.875) and, unsurprisingly, cannot be routed
with shortest paths alone.
"""

from benchmarks.conftest import N_MATRICES, emit
from repro.core.metrics import llpd
from repro.experiments.figures import fig19_google
from repro.experiments.render import render_series
from repro.experiments.workloads import NetworkWorkload, ZooWorkload, build_traffic_matrices
from repro.net.zoo import google_like

import numpy as np


def test_fig19_google(benchmark, standard_workload):
    google = google_like()
    google_llpd = llpd(google)
    rng = np.random.default_rng(19)
    google_item = NetworkWorkload(
        network=google,
        llpd=google_llpd,
        matrices=build_traffic_matrices(
            google, N_MATRICES, rng, locality=1.0, growth_factor=1.3
        ),
    )
    augmented = ZooWorkload(
        networks=standard_workload.networks + [google_item],
        locality=1.0,
        growth_factor=1.3,
    )

    result = benchmark.pedantic(
        fig19_google, args=(augmented,), rounds=1, iterations=1
    )

    median = result["median"]
    # The Google-like point has the greatest LLPD of the ensemble...
    assert median[-1][0] == max(x for x, _ in median)
    assert median[-1][0] > 0.75
    # ...and shortest paths congest it.
    assert median[-1][1] > 0.0

    emit(
        "fig19_google",
        render_series(
            f"Fig 19: SP congestion vs LLPD with google-like "
            f"(LLPD={google_llpd:.3f}) added",
            result,
            x_label="LLPD",
        ),
    )

"""Result store: cold evaluation vs serving a fully-stored run.

Complements ``bench_fig15_runtime.py``'s KSP cold/warm numbers with the
next caching layer up: with a populated result store, re-rendering a
figure's data performs *zero* scheme evaluations, so the stored pass must
beat the cold pass by a wide margin.  Records ``BENCH_store.json`` at the
repo root, alongside ``BENCH_fig15.json``.
"""

import time

from benchmarks.conftest import (
    N_WORKERS,
    assert_warm_beats_cold,
    record_bench_json,
)
from repro.experiments.runner import evaluate_scheme
from repro.routing import ShortestPathRouting


def sp_factory(item):
    return ShortestPathRouting(item.cache)


def test_store_cold_vs_stored(benchmark, standard_workload, tmp_path_factory):
    store_dir = str(tmp_path_factory.mktemp("result-store"))

    start = time.perf_counter()
    cold = evaluate_scheme(
        sp_factory,
        standard_workload,
        n_workers=N_WORKERS,
        store_dir=store_dir,
        scheme="SP",
    )
    cold_s = time.perf_counter() - start

    stored = benchmark.pedantic(
        evaluate_scheme,
        args=(sp_factory, standard_workload),
        kwargs={"store_dir": store_dir, "scheme": "SP", "store_only": True},
        rounds=1,
        iterations=1,
    )
    stored_s = benchmark.stats.stats.total

    assert stored == cold  # bit-identical round trip through the store
    record_bench_json(
        "store",
        {
            "n_networks": len(standard_workload.networks),
            "n_workers": N_WORKERS,
            "cold_s": cold_s,
            "stored_s": stored_s,
            "stored_speedup": cold_s / stored_s if stored_s > 0 else float("inf"),
        },
    )
    assert_warm_beats_cold(cold_s, stored_s, "result store")

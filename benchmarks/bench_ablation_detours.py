"""Ablation: targeted detour paths in the iterative latency LP.

The paper's Figure 13 grows path sets with "shortest paths for an
increasing k".  On multi-continent topologies pure k-shortest-path growth
can need combinatorially many paths before it finds one avoiding a hot
transoceanic link, so our implementation additionally adds, per overloaded
link, each crossing aggregate's shortest path *around* that link.  This
bench quantifies that design choice: fit rate and LP-solve counts with and
without detour augmentation.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.routing.optimal import solve_iterative_latency


def run_variants(items):
    outcomes = {}
    for use_detours in (True, False):
        label = "with-detours" if use_detours else "ksp-only"
        fits = 0
        total = 0
        solves = []
        paths = []
        for item in items:
            for tm in item.matrices:
                result, stats = solve_iterative_latency(
                    item.network, tm, cache=item.cache, use_detours=use_detours
                )
                total += 1
                fits += int(stats.fits)
                solves.append(stats.lp_solves)
                paths.append(stats.total_paths)
        outcomes[label] = {
            "fit_rate": fits / total,
            "median_solves": float(np.median(solves)),
            "median_paths": float(np.median(paths)),
        }
    return outcomes


def test_ablation_detours(benchmark, high_llpd_items):
    outcomes = benchmark.pedantic(
        run_variants, args=(high_llpd_items,), rounds=1, iterations=1
    )

    with_detours = outcomes["with-detours"]
    ksp_only = outcomes["ksp-only"]
    # Detours never hurt the fit rate and reach feasibility with no more
    # LP solves than blind growth.
    assert with_detours["fit_rate"] >= ksp_only["fit_rate"]
    assert with_detours["fit_rate"] == 1.0
    assert with_detours["median_solves"] <= ksp_only["median_solves"] + 1e-9

    lines = [f"{'variant':>14s} {'fit rate':>9s} {'med solves':>11s} "
             f"{'med paths':>10s}"]
    for label, row in outcomes.items():
        lines.append(
            f"{label:>14s} {row['fit_rate']:>9.2f} "
            f"{row['median_solves']:>11.1f} {row['median_paths']:>10.0f}"
        )
    emit("ablation_detours", "\n".join(lines))

"""Figure 10: minute-to-minute change of the standard deviation of the
traffic rate.

Paper shape: absolute sigma spans a wide range across traces, but the
(sigma_t, sigma_{t+1}) points cluster tightly around the x = y line —
variability is predictable, so a routing system can use it to size
headroom.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.figures import fig10_sigma_scatter
from repro.experiments.render import render_scatter_summary
from repro.traces import trace_ensemble

N_TRACES = 8
MINUTES = 20


def test_fig10_sigma(benchmark):
    rng = np.random.default_rng(10)
    traces = trace_ensemble(N_TRACES, rng, minutes=MINUTES, sample_ms=10)

    points = benchmark.pedantic(
        fig10_sigma_scatter, args=(traces, 6000), rounds=1, iterations=1
    )

    assert len(points) == N_TRACES * (MINUTES - 1)
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    # Tight clustering around x = y.
    assert float(np.corrcoef(xs, ys)[0, 1]) > 0.8
    relative = np.abs(ys - xs) / xs
    assert float(np.median(relative)) < 0.25
    # Wide absolute range across traces (different colours in the paper).
    assert xs.max() / xs.min() > 2.0

    emit(
        "fig10_sigma",
        render_scatter_summary(
            "Fig 10: sigma(t) vs sigma(t+1) across traces", points
        ),
    )

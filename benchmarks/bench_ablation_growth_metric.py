"""Ablation: LLPD-guided vs LDR-objective-guided topology growth.

The paper's §8 caveat: "We don't believe LLPD is always the best
instrument for predicting which evolved versions of a topology offer the
lowest latency [...] the optimized value of LDR's objective in Figure 12
provides a better metric."  This bench grows the same networks with the
same link budget under both metrics and compares the realized
flow-weighted delay under latency-optimal routing.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.metrics import llpd
from repro.net.mutate import grow_by_ldr_objective, grow_by_llpd
from repro.net.zoo import ring_network
from repro.routing import LatencyOptimalRouting
from repro.tm import (
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)

N_NETWORKS = 3


def build_cases():
    cases = []
    for seed in range(N_NETWORKS):
        rng = np.random.default_rng(30 + seed)
        network = ring_network(int(rng.integers(8, 12)), rng)
        tm = gravity_traffic_matrix(network, rng)
        tm = apply_locality(network, tm, 1.0)
        tm = scale_to_growth_headroom(network, tm, 1.3)
        cases.append((network, tm))
    return cases


def run_comparison(cases):
    rows = []
    for network, tm in cases:
        baseline = (
            LatencyOptimalRouting().place(network, tm).total_weighted_delay_s()
        )
        by_llpd, _ = grow_by_llpd(
            network, llpd, growth_fraction=0.2, max_candidates=10
        )
        by_objective, _ = grow_by_ldr_objective(
            network, tm, growth_fraction=0.2, max_candidates=10
        )
        delay_llpd = (
            LatencyOptimalRouting().place(by_llpd, tm).total_weighted_delay_s()
        )
        delay_objective = (
            LatencyOptimalRouting()
            .place(by_objective, tm)
            .total_weighted_delay_s()
        )
        rows.append(
            {
                "network": network.name,
                "llpd_saving": 1 - delay_llpd / baseline,
                "objective_saving": 1 - delay_objective / baseline,
            }
        )
    return rows


def test_ablation_growth_metric(benchmark):
    cases = build_cases()
    rows = benchmark.pedantic(run_comparison, args=(cases,), rounds=1,
                              iterations=1)

    # Targeting realized delay directly never does worse than the proxy.
    for row in rows:
        assert row["objective_saving"] >= row["llpd_saving"] - 1e-9
        assert row["objective_saving"] >= 0.0

    lines = [f"{'network':>12s} {'LLPD-guided':>12s} {'objective':>12s}"]
    for row in rows:
        lines.append(
            f"{row['network']:>12s} {row['llpd_saving']:>11.1%} "
            f"{row['objective_saving']:>11.1%}"
        )
    lines.append("\n(delay saved vs. un-grown topology, same +20% link budget)")
    emit("ablation_growth_metric", "\n".join(lines))

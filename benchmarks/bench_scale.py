"""Scaling curve for the integer-indexed sparse graph core.

Synthesizes Internet-like topologies at 100 / 1 000 / 10 000 nodes and
records, per size:

* ``GraphIndex`` build time (and nodes/second),
* a single-source shortest-path sweep, legacy vs indexed — the indexed
  core must be at least as fast at *every* size (the whole point of the
  CSR rewrite), verified path-for-path against the legacy oracle,
* Yen's KSP cold vs warm through a locality-pruned :class:`KspCache`
  (warm must beat cold; the pruned-pair count is recorded),
* an end-to-end single-scheme (SP) evaluation over a region-aggregated
  sparse gravity matrix — the "a 10k-node eval actually completes"
  criterion.

The numeric series lands in ``BENCH_scale.json`` at the repo root.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import assert_warm_beats_cold, record_bench_json
from repro.net.index import GraphIndex, LocalityPruner
from repro.net.ingest import synthesize_internet_like
from repro.net.paths import KspCache, legacy_shortest_path_delays
from repro.routing.shortest_path import ShortestPathRouting
from repro.tm.gravity import sparse_gravity_traffic_matrix
from repro.tm.regions import maybe_aggregate

SIZES = [100, 1_000, 10_000]
SEED = 42
N_SWEEP_SOURCES = 5
SWEEP_REPEATS = 3
KSP_PAIRS = 4
KSP_K = 2
#: Pair budget for the end-to-end eval: small enough that the 10k-node
#: run finishes in seconds, large enough to exercise aggregation.
EVAL_MAX_PAIRS = 512


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(n_nodes: int) -> dict:
    network = synthesize_internet_like(n_nodes, seed=SEED)
    names = sorted(network.node_names)

    t0 = time.perf_counter()
    index = GraphIndex(network)
    build_s = time.perf_counter() - t0

    sources = names[:N_SWEEP_SOURCES]
    legacy_sweep_s = _best_of(
        SWEEP_REPEATS,
        lambda: [legacy_shortest_path_delays(network, src) for src in sources],
    )
    sparse_sweep_s = _best_of(
        SWEEP_REPEATS,
        lambda: [index.shortest_path_delays(src) for src in sources],
    )
    # Parity spot-check: the speedup must not change a single answer.
    assert index.shortest_path_delays(sources[0]) == legacy_shortest_path_delays(
        network, sources[0]
    )

    # KSP cold vs warm through a locality-pruned cache.  The radius is the
    # median single-sweep delay, so distant pairs genuinely get clamped.
    delays = index.shortest_path_delays(sources[0])
    radius_s = float(np.median(list(delays.values())))
    pruner = LocalityPruner(network, radius_s=radius_s)
    pairs = [(names[i], names[-1 - i]) for i in range(KSP_PAIRS)]
    cache = KspCache(network, pruner=pruner)
    t0 = time.perf_counter()
    for src, dst in pairs:
        cache.get(src, dst, KSP_K)
    ksp_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for src, dst in pairs:
        cache.get(src, dst, KSP_K)
    ksp_warm_s = time.perf_counter() - t0
    assert_warm_beats_cold(ksp_cold_s, ksp_warm_s, f"scale[{n_nodes}]")
    pruned_pairs = sum(1 for src, dst in pairs if not pruner.admits(src, dst))

    # End-to-end: sparse gravity demands, region aggregation when the pair
    # count exceeds the budget, one SP placement over the routed matrix.
    t0 = time.perf_counter()
    rng = np.random.default_rng(SEED)
    tm = sparse_gravity_traffic_matrix(
        network, rng, n_pairs=min(20 * n_nodes, n_nodes * (n_nodes - 1))
    )
    routed, regional = maybe_aggregate(network, tm, max_pairs=EVAL_MAX_PAIRS)
    placement = ShortestPathRouting().place(network, routed)
    eval_s = time.perf_counter() - t0

    return {
        "nodes": n_nodes,
        "directed_links": network.num_links,
        "index_build_s": build_s,
        "index_build_nodes_per_s": n_nodes / build_s,
        "sweep_sources": N_SWEEP_SOURCES,
        "legacy_sweep_s": legacy_sweep_s,
        "sparse_sweep_s": sparse_sweep_s,
        "sweep_speedup": legacy_sweep_s / sparse_sweep_s,
        "ksp_pairs": KSP_PAIRS,
        "ksp_k": KSP_K,
        "ksp_cold_s": ksp_cold_s,
        "ksp_warm_s": ksp_warm_s,
        "ksp_pruned_pairs": pruned_pairs,
        "eval_demand_pairs": len(tm),
        "eval_routed_pairs": len(routed),
        "eval_regions": regional.n_regions if regional is not None else None,
        "eval_max_utilization": placement.max_utilization(),
        "eval_s": eval_s,
    }


def test_scale_curve(benchmark):
    records = benchmark.pedantic(
        lambda: [_measure(n) for n in SIZES],
        rounds=1,
        iterations=1,
    )

    for record in records:
        # The guard of this benchmark: the indexed core must sustain at
        # least legacy throughput at every size, or the rewrite has
        # regressed into a slower path somewhere.
        assert record["sparse_sweep_s"] <= record["legacy_sweep_s"], (
            f"{record['nodes']} nodes: indexed sweep "
            f"({record['sparse_sweep_s']:.4f}s) slower than legacy "
            f"({record['legacy_sweep_s']:.4f}s)"
        )
    # The 10k-node end-to-end evaluation must complete — and do so on a
    # bounded column budget, which is what region aggregation is for.
    largest = records[-1]
    assert largest["nodes"] == SIZES[-1]
    assert largest["eval_routed_pairs"] <= EVAL_MAX_PAIRS
    assert largest["eval_regions"] is not None

    record_bench_json(
        "scale",
        {
            "seed": SEED,
            "sizes": SIZES,
            "eval_max_pairs": EVAL_MAX_PAIRS,
            "records": records,
        },
    )

"""Ablation: Algorithm 1's hedge and decay parameters.

The paper fixes ``fixed_hedge = 1.1`` and ``decay_multiplier = 0.98``.
This bench sweeps both and reports the two quantities they trade off:

* *exceed fraction* — how often the measured rate beats the prediction
  (headroom shortfall; the paper reports ~0.5% at the defaults);
* *over-provisioning* — mean prediction / mean rate (capacity wasted).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.prediction import predict_series
from repro.traces import minute_means, trace_ensemble


def sweep(traces):
    rows = {}
    for hedge in (1.0, 1.05, 1.1, 1.2):
        for decay in (0.90, 0.98, 1.0):
            exceed = []
            waste = []
            for trace in traces:
                means = minute_means(trace, 600)
                predictions = predict_series(
                    means, decay_multiplier=decay, fixed_hedge=hedge
                )
                ratio = means[1:] / predictions[:-1]
                exceed.append(np.mean(ratio > 1.0))
                waste.append(np.mean(predictions[:-1] / means[1:]))
            rows[(hedge, decay)] = (
                float(np.mean(exceed)),
                float(np.mean(waste)),
            )
    return rows


def test_ablation_prediction(benchmark):
    rng = np.random.default_rng(42)
    traces = trace_ensemble(10, rng, minutes=40, sample_ms=100)
    rows = benchmark.pedantic(sweep, args=(traces,), rounds=1, iterations=1)

    # The paper's defaults keep exceedances rare at modest overhead.
    exceed_default, waste_default = rows[(1.1, 0.98)]
    assert exceed_default < 0.02
    assert waste_default < 1.35
    # No hedge -> much more frequent exceedance.
    exceed_none, _ = rows[(1.0, 0.98)]
    assert exceed_none > exceed_default
    # A bigger hedge trades less exceedance for more over-provisioning.
    exceed_big, waste_big = rows[(1.2, 0.98)]
    assert exceed_big <= exceed_default + 1e-9
    assert waste_big > waste_default

    lines = [f"{'hedge':>6s} {'decay':>6s} {'exceed':>8s} {'overprov':>9s}"]
    for (hedge, decay), (exceed, waste) in sorted(rows.items()):
        lines.append(
            f"{hedge:>6.2f} {decay:>6.2f} {exceed:>8.4f} {waste:>9.4f}"
        )
    emit("ablation_prediction", "\n".join(lines))

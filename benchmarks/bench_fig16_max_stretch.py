"""Figure 16: CDFs of maximum path stretch per traffic matrix, split by
LLPD class and headroom.

Paper shapes:
* (a) LLPD < 0.5, no headroom: little separates the schemes (few routing
  options), with very high tail stretch possible;
* (b) LLPD > 0.5, no headroom: B4 and MinMaxK10 fail to fit some
  scenarios (their CDFs do not reach 1.0);
* (c) LLPD > 0.5, 10% headroom: B4 fits a wider range of scenarios than
  without headroom; LDR-with-headroom and MinMax give similar maxima.
"""

import numpy as np

from benchmarks.conftest import N_WORKERS, emit
from repro.experiments.figures import fig16_max_stretch_cdfs
from repro.experiments.render import render_cdf


def test_fig16_max_stretch(benchmark, standard_workload):
    results = benchmark.pedantic(
        fig16_max_stretch_cdfs,
        args=(standard_workload,),
        kwargs={"n_workers": N_WORKERS},
        rounds=1,
        iterations=1,
    )

    assert set(results) == {"low_h0", "high_h0", "high_h10"}
    # (b): on high-LLPD networks without headroom, the restricted schemes
    # fail to fit some scenarios while MinMax and LDR fit everything.
    assert results["high_h0"]["MinMax"]["unroutable_fraction"] == 0.0
    assert results["high_h0"]["LDR"]["unroutable_fraction"] == 0.0
    restricted_failures = (
        results["high_h0"]["B4"]["unroutable_fraction"]
        + results["high_h0"]["MinMaxK10"]["unroutable_fraction"]
    )
    # (c): headroom lets B4 fit at least as many scenarios as without.
    assert (
        results["high_h10"]["B4"]["unroutable_fraction"]
        <= results["high_h0"]["B4"]["unroutable_fraction"] + 1e-9
    )

    sections = []
    for key, by_scheme in results.items():
        for scheme, data in sorted(by_scheme.items()):
            title = (
                f"{key} / {scheme} (unroutable "
                f"{data['unroutable_fraction']:.2f})"
            )
            sections.append(render_cdf(title, data["stretches"]))
    emit("fig16_max_stretch", "\n\n".join(sections))

"""Figure 15: run time of the optimization algorithms on the networks with
LLPD > 0.5 (the hardest to route).

Paper shape: the iterative path-based LP ("LDR") solves in well under a
second; a cold k-shortest-paths cache costs noticeably more than a warm
one; and the per-aggregate link-based formulation is around two orders of
magnitude slower.
"""

import numpy as np

from benchmarks.conftest import (
    RESULTS_DIR,
    assert_warm_beats_cold,
    emit,
    record_bench_json,
)
from repro.experiments.figures import fig15_runtimes
from repro.experiments.render import render_cdf
from repro.experiments.workloads import NetworkWorkload, build_traffic_matrices
from repro.net.zoo import grid_network


def larger_grids():
    """Bigger grid-class networks, closing in on the paper's scale.

    The paper's Figure 15 networks reach 197 nodes; the link-based LP's
    disadvantage grows with size (its model is aggregates x links), so we
    add 35- and 48-node grids to the ensemble.  Grids of this density are
    high-LLPD by construction (verified for smaller instances in the test
    suite), so the expensive LLPD computation is skipped here.
    """
    rng = np.random.default_rng(15)
    items = []
    for rows, cols in ((5, 7), (6, 8)):
        network = grid_network(
            rows, cols, np.random.default_rng(rows * cols),
            name=f"grid-{rows}x{cols}",
        )
        items.append(
            NetworkWorkload(
                network=network,
                llpd=0.6,  # grid-class placeholder; not used by fig15
                matrices=build_traffic_matrices(
                    network, 1, rng, locality=1.0, growth_factor=1.3
                ),
            )
        )
    return items


def test_fig15_runtime(benchmark, high_llpd_items):
    items = list(high_llpd_items) + larger_grids()
    cache_dir = RESULTS_DIR / "ksp-cache"
    # First pass persists every network's KSP cache to disk; the timed
    # pass then exercises the real cross-run warm start (``ldr_persisted``)
    # alongside the in-process cold/warm split.
    fig15_runtimes(items, include_link_based=False, cache_dir=str(cache_dir))
    times = benchmark.pedantic(
        fig15_runtimes,
        args=(items,),
        kwargs={"cache_dir": str(cache_dir)},
        rounds=1,
        iterations=1,
    )

    warm = np.array(times["ldr"])
    cold = np.array(times["ldr_cold"])
    persisted = np.array(times["ldr_persisted"])
    link_based = np.array(times["link_based"])
    assert len(warm) == len(items)
    assert len(persisted) == len(items)  # every cache file was accepted
    # Record first: if the warm<cold guard below fires, the artifact must
    # show the regressed numbers, not the previous run's healthy ones.
    record_bench_json(
        "fig15",
        {
            "n_networks": len(items),
            "cold_median_s": float(np.median(cold)),
            "warm_median_s": float(np.median(warm)),
            "persisted_median_s": float(np.median(persisted)),
            "cold_total_s": float(np.sum(cold)),
            "warm_total_s": float(np.sum(warm)),
            "persisted_total_s": float(np.sum(persisted)),
            "warm_speedup": float(np.median(cold) / np.median(warm)),
            "persisted_speedup": float(np.median(cold) / np.median(persisted)),
        },
    )
    # Warm-cache runs beat cold-cache runs (medians), both for the
    # in-process reuse and the persisted caches loaded from disk.
    assert_warm_beats_cold(
        float(np.median(cold)), float(np.median(warm)), "fig15 in-process"
    )
    assert_warm_beats_cold(
        float(np.median(cold)), float(np.median(persisted)), "fig15 persisted"
    )
    # The link-based LP's handicap grows with network size; on the larger
    # networks it exceeds an order of magnitude (the paper, with networks
    # up to 197 nodes, reports about two orders).
    ratios = link_based / warm
    assert float(np.max(ratios)) > 10.0, f"best ratio only {ratios.max():.1f}x"
    assert float(np.median(ratios)) > 3.0
    # LDR itself is fast enough for online use.
    assert np.median(warm) < 2.0
    ratio = float(np.median(ratios))

    emit(
        "fig15_runtime",
        "\n\n".join(
            [
                render_cdf("LDR (warm cache) runtime [s]", warm),
                render_cdf("LDR (cold cache) runtime [s]", cold),
                render_cdf("link-based runtime [s]", link_based),
                f"median link-based / median warm LDR = {ratio:.1f}x",
            ]
        ),
    )

"""Figure 8: median latency stretch vs LLPD as headroom grows.

The paper runs this at a lighter load (min-cut 60%, so 40% headroom is the
MinMax-equivalent extreme).  Shape: stretch changes little up to mid
headroom values and only rises substantially at the 40% (MinMax) end.
"""

import numpy as np

from benchmarks.conftest import N_WORKERS, emit
from repro.experiments.figures import fig08_headroom_sweep
from repro.experiments.render import render_series

HEADROOMS = (0.0, 0.11, 0.23, 0.40)


def _mean(points):
    return float(np.mean([y for _, y in points]))


def test_fig08_headroom(benchmark, light_workload):
    results = benchmark.pedantic(
        fig08_headroom_sweep,
        args=(light_workload,),
        kwargs={"headrooms": HEADROOMS, "n_workers": N_WORKERS},
        rounds=1,
        iterations=1,
    )

    means = [_mean(results[h]) for h in HEADROOMS]
    # Weakly increasing in headroom overall.
    assert means[0] <= means[-1] + 1e-6
    # Little stretch cost at 11% headroom...
    assert means[1] - means[0] < 0.05
    # ...and the 0->23% increase is smaller than half the total climb to
    # the MinMax end, i.e. the curve steepens late (the paper's message
    # that moderate headroom is nearly free).
    if means[-1] - means[0] > 1e-6:
        assert (means[2] - means[0]) <= 0.75 * (means[-1] - means[0]) + 1e-9

    emit(
        "fig08_headroom",
        render_series(
            "Fig 8: median latency stretch vs LLPD per headroom "
            "(min-cut load 60%)",
            {f"h={h:.0%}": results[h] for h in HEADROOMS},
            x_label="LLPD",
        ),
    )

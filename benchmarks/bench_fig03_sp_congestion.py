"""Figure 3: fraction of congested pairs vs LLPD under shortest-path
routing.

Paper shape: networks with high LLPD tend to concentrate traffic when
using SP routing — the congested fraction trends upward with LLPD, while
low-LLPD (tree-like) networks show almost none.
"""

import numpy as np

from benchmarks.conftest import N_WORKERS, emit
from repro.experiments.figures import fig03_sp_congestion
from repro.experiments.render import render_series


def test_fig03_sp_congestion(benchmark, standard_workload):
    result = benchmark.pedantic(
        fig03_sp_congestion,
        args=(standard_workload,),
        kwargs={"n_workers": N_WORKERS},
        rounds=1,
        iterations=1,
    )

    median = result["median"]
    # Shape check: mean congested fraction in the top LLPD third exceeds
    # the bottom third (the paper's upward trend).
    third = max(1, len(median) // 3)
    low = float(np.mean([y for _, y in median[:third]]))
    high = float(np.mean([y for _, y in median[-third:]]))
    assert high > low, f"expected congestion to grow with LLPD ({low=} {high=})"
    # Tree-like networks (SP is the only routing) show zero congestion.
    assert min(y for _, y in median) == 0.0

    emit(
        "fig03_sp_congestion",
        render_series(
            "Fig 3: congested-pair fraction vs LLPD (SP routing)",
            result,
            x_label="LLPD",
        ),
    )

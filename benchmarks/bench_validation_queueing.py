"""Validation: do LDR's multiplexing checks actually prevent queueing?

Not a paper figure, but the experiment that closes the paper's loop: route
the same bursty traffic (a) with the latency-optimal LP fed raw mean rates
and zero headroom ("living on the edge", §4) and (b) with the full LDR
controller (Algorithm 1 hedge + multiplexing loop); then *replay* the
actual rate samples through both placements and measure the transient
queues that really form.

Expected shape: the mean-based edge placement shows queueing delays well
beyond LDR's 10 ms budget on its hottest links; the LDR placement stays
within budget.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController
from repro.experiments.workloads import build_traffic_matrices
from repro.net.zoo import gts_like
from repro.routing import LatencyOptimalRouting
from repro.sim import replay_placement
from repro.tm import TrafficMatrix
from repro.traces import SyntheticTraceConfig, minute_means, synthesize_trace


def run_validation():
    network = gts_like()
    rng = np.random.default_rng(99)
    # The paper's lighter-load regime (min-cut 60%): enough slack exists
    # for LDR to find a queue-free placement; the edge placement wastes it.
    tm = build_traffic_matrices(
        network, 1, rng, locality=1.0, growth_factor=1.65
    )[0]

    traffic = []
    samples = {}
    measured_means = {}
    for agg in tm.aggregates():
        config = SyntheticTraceConfig(
            mean_bps=agg.demand_bps,
            minutes=2,
            sample_ms=100,
            burst_sigma_fraction=float(rng.uniform(0.10, 0.25)),
        )
        trace = synthesize_trace(config, rng)
        window = trace[-600:]
        samples[agg.pair] = window
        measured_means[agg.pair] = float(window.mean())
        traffic.append(
            AggregateTraffic(agg.src, agg.dst, window, minute_means(trace, 600))
        )

    # (a) the edge: optimize for the measured means, no headroom at all.
    edge_tm = TrafficMatrix(measured_means)
    edge_placement = LatencyOptimalRouting().place(network, edge_tm)
    edge_replay = replay_placement(edge_placement, samples)

    # (b) LDR: hedged prediction + multiplexing loop.
    controller = LdrController(network, LdrConfig(max_rounds=20))
    result = controller.route(traffic)
    ldr_replay = replay_placement(result.placement, samples)

    return {
        "edge_max_queue_ms": edge_replay.max_queue_delay_s * 1000,
        "ldr_max_queue_ms": ldr_replay.max_queue_delay_s * 1000,
        "edge_links_over_budget": len(edge_replay.links_exceeding(0.010)),
        "ldr_links_over_budget": len(ldr_replay.links_exceeding(0.010)),
        "ldr_converged": result.converged,
        "ldr_rounds": result.rounds,
        "edge_stretch": edge_placement.total_latency_stretch(),
        "ldr_stretch": result.placement.total_latency_stretch(),
    }


def test_validation_queueing(benchmark):
    stats = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    assert stats["ldr_converged"]
    # LDR keeps every link within its queue budget...
    assert stats["ldr_links_over_budget"] == 0
    assert stats["ldr_max_queue_ms"] <= 10.0 + 1e-6
    # ...while the mean-based edge placement does not.
    assert stats["edge_max_queue_ms"] > stats["ldr_max_queue_ms"]

    lines = [
        "replayed transient queueing (budget 10 ms):",
        f"  mean-based, zero headroom: max queue "
        f"{stats['edge_max_queue_ms']:.2f} ms on "
        f"{stats['edge_links_over_budget']} link(s) over budget, "
        f"stretch {stats['edge_stretch']:.4f}",
        f"  LDR ({stats['ldr_rounds']} round(s)): max queue "
        f"{stats['ldr_max_queue_ms']:.2f} ms, "
        f"{stats['ldr_links_over_budget']} link(s) over budget, "
        f"stretch {stats['ldr_stretch']:.4f}",
    ]
    emit("validation_queueing", "\n".join(lines))

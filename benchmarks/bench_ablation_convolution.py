"""Ablation: cost and accuracy of the FFT multiplexing check.

The paper claims all needed convolutions run "in milliseconds" thanks to
the FFT and reports that 1024 quantization levels "yields good
performance".  This bench measures the check's wall-clock cost as the
number of co-located aggregates grows, and the exceedance-probability
error across quantization levels against a Monte-Carlo reference.
"""

import time

import numpy as np

from benchmarks.conftest import emit
from repro.core.multiplexing import exceedance_probability


def build_aggregates(n_aggregates: int, rng) -> list:
    """Bursty 100 ms samples for one measurement minute per aggregate."""
    samples = []
    for _ in range(n_aggregates):
        mean = rng.uniform(0.5e9, 2e9)
        sigma = mean * rng.uniform(0.1, 0.3)
        samples.append(np.maximum(rng.normal(mean, sigma, size=600), 0.0))
    return samples


def sweep(rng):
    timings = {}
    for n in (2, 8, 32, 128):
        aggregates = build_aggregates(n, rng)
        capacity = sum(s.mean() for s in aggregates) * 1.2
        start = time.perf_counter()
        probability = exceedance_probability(aggregates, capacity)
        timings[n] = (time.perf_counter() - start, probability)

    # Accuracy vs quantization, against Monte-Carlo with 4 aggregates.
    aggregates = build_aggregates(4, rng)
    capacity = sum(s.mean() for s in aggregates) * 1.05
    draws = np.zeros(200_000)
    for s in aggregates:
        draws += rng.choice(s, size=draws.shape[0])
    reference = float(np.mean(draws > capacity))
    errors = {}
    for levels in (64, 256, 1024, 4096):
        probability = exceedance_probability(aggregates, capacity, levels)
        errors[levels] = abs(probability - reference)
    return timings, errors, reference


def test_ablation_convolution(benchmark):
    rng = np.random.default_rng(1024)
    timings, errors, reference = benchmark.pedantic(
        sweep, args=(rng,), rounds=1, iterations=1
    )

    # The paper's "milliseconds" claim: even 128 aggregates convolve in
    # well under 100 ms.
    assert timings[128][0] < 0.1
    # 1024 levels already track the Monte-Carlo reference closely.
    assert errors[1024] < 0.02
    # Finer quantization does not make things worse.
    assert errors[4096] <= errors[64] + 1e-9

    lines = ["aggregates -> convolution time / P[exceed]:"]
    for n, (elapsed, probability) in timings.items():
        lines.append(f"  n={n:>4d}: {elapsed * 1000:7.2f} ms  p={probability:.2e}")
    lines.append(f"\nquantization error vs Monte-Carlo (p={reference:.4f}):")
    for levels, error in errors.items():
        lines.append(f"  levels={levels:>5d}: |err|={error:.5f}")
    emit("ablation_convolution", "\n".join(lines))

"""Dispatch coordinator overhead: shard + subprocess workers + merge.

A dispatched run pays for what the in-process engine gets for free —
manifest serialization, one interpreter start per worker, and the store
merge — in exchange for crossing host boundaries.  This benchmark runs
the same (workload, scheme) through the serial in-process engine and the
two-shard subprocess coordinator, records both (plus the coordinator
overhead, their difference) to ``BENCH_dispatch.json`` at the repo root,
and asserts the dispatched outcomes are bit-identical to the in-process
ones — the determinism contract the whole subsystem rests on.

Shard count scales with ``REPRO_BENCH_WORKERS`` (min 2, so the merge path
always exercises multiple worker stores).
"""

import time

from benchmarks.conftest import N_WORKERS, record_bench_json
from repro.experiments.dispatch import dispatch_run
from repro.experiments.engine import ExperimentEngine
from repro.experiments.spec import SchemeSpec

N_SHARDS = max(2, N_WORKERS)


def test_dispatch_overhead(benchmark, standard_workload, tmp_path_factory):
    spec = SchemeSpec("SP")

    start = time.perf_counter()
    direct = ExperimentEngine(n_workers=1).run(spec, standard_workload)
    in_process_s = time.perf_counter() - start

    def dispatched_run():
        base = tmp_path_factory.mktemp("dispatch")
        return dispatch_run(
            spec,
            standard_workload,
            n_shards=N_SHARDS,
            store_dir=base / "store",
            work_dir=base / "work",
        )

    outcomes = benchmark.pedantic(dispatched_run, rounds=1, iterations=1)
    dispatched_s = benchmark.stats.stats.total

    assert outcomes == direct.outcomes  # bit-identical across the boundary
    record_bench_json(
        "dispatch",
        {
            "n_networks": len(standard_workload.networks),
            "n_shards": N_SHARDS,
            "in_process_s": in_process_s,
            "dispatched_s": dispatched_s,
            "coordinator_overhead_s": dispatched_s - in_process_s,
        },
    )

"""Cost-aware LPT scheduling vs round-robin on a skew-heavy workload.

The motivating pathology for cost-aware scheduling: an ensemble of many
small networks plus one large one, with the long pole sitting *last* in
workload order.  Round-robin interleave drains the small tasks level and
then tails on the big network alone — makespan is (small work / workers)
+ big task — while LPT (longest-predicted-first) starts the big solve
immediately and packs the small tasks into the remaining capacity.

The guard compares **simulated makespans**: both orderings are replayed
through a first-free-worker list-scheduling simulation using the *same*
measured per-task seconds (from one real run), so the comparison is
deterministic and immune to machine noise; LPT must never lose.  Wall
times of both real runs are recorded alongside for context, plus the
outcomes-equality check: scheduling is pure sequencing and must never
change a single result.  Everything lands in ``BENCH_schedule.json``.

Worker count scales with ``REPRO_BENCH_WORKERS`` (min 2, so scheduling
order can matter at all); the skew ensemble is fixed — its *shape* is
the point, not its size.
"""

import time
from typing import List

import numpy as np

from benchmarks.conftest import N_WORKERS, record_bench_json
from repro.experiments.cost import make_scheduler
from repro.experiments.plan import EvalPlan, execute_plan
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import (
    NetworkWorkload,
    ZooWorkload,
    build_traffic_matrices,
)
from repro.net.zoo import grid_network, ring_network

WORKERS = max(2, N_WORKERS)
N_SMALL = 8


def _skew_workload() -> ZooWorkload:
    """Many small rings plus one large grid — the long pole goes LAST.

    Last place is the worst case for cost-blind round-robin (the pool
    has nothing left to overlap with the big solve) and is exactly
    where a zoo generator can land a heavy topology.
    """
    rng = np.random.default_rng(11)
    networks = [
        ring_network(5, np.random.default_rng(i), name=f"skew-ring-{i}")
        for i in range(N_SMALL)
    ]
    networks.append(
        grid_network(4, 4, np.random.default_rng(99), name="skew-grid")
    )
    items = [
        NetworkWorkload(
            network=network,
            llpd=0.0,
            matrices=build_traffic_matrices(
                network, 1, rng, locality=1.0, growth_factor=1.3
            ),
        )
        for network in networks
    ]
    return ZooWorkload(networks=items, locality=1.0, growth_factor=1.3)


def _simulated_makespan(ordered_seconds: List[float], n_workers: int) -> float:
    """First-free-worker list scheduling over measured task times.

    The same greedy dispatch model a process pool implements: each task
    goes to the worker that frees up first, in the given order.
    """
    finish = [0.0] * n_workers
    for seconds in ordered_seconds:
        worker = min(range(n_workers), key=lambda j: finish[j])
        finish[worker] += seconds
    return max(finish)


def test_lpt_beats_round_robin_on_skewed_workload(benchmark):
    workload = _skew_workload()
    plan = EvalPlan()
    # MinMaxK10 is LP-backed, so per-task cost scales steeply with
    # topology size — the skew the static predictor must see.
    plan.add("MinMaxK10", SchemeSpec("MinMaxK10"), workload)
    lpt = make_scheduler("lpt")

    start = time.perf_counter()
    rr_report = execute_plan(plan, n_workers=WORKERS)
    rr_wall_s = time.perf_counter() - start

    lpt_report = benchmark.pedantic(
        lambda: execute_plan(plan, n_workers=WORKERS, scheduler=lpt),
        rounds=1,
        iterations=1,
    )
    lpt_wall_s = benchmark.stats.stats.total

    # Scheduling is pure sequencing: bit-identical keyed results.
    assert lpt_report.all_outcomes() == rr_report.all_outcomes()

    # LPT must actually front-load the long pole.
    lpt_order = plan.tasks(scheduler=lpt)
    assert lpt_order[0].index == N_SMALL, (
        "LPT did not schedule the big grid first — the static cost "
        "predictor no longer ranks it heaviest"
    )

    seconds = {
        (key, result.index): result.seconds
        for key, results in rr_report.results.items()
        for result in results
    }
    rr_makespan = _simulated_makespan(
        [seconds[(t.stream, t.index)] for t in plan.tasks()], WORKERS
    )
    lpt_makespan = _simulated_makespan(
        [seconds[(t.stream, t.index)] for t in lpt_order], WORKERS
    )

    record_bench_json(
        "schedule",
        {
            "n_networks": len(workload.networks),
            "n_small": N_SMALL,
            "big_network": "skew-grid (4x4)",
            "n_workers": WORKERS,
            "round_robin_makespan_s": rr_makespan,
            "lpt_makespan_s": lpt_makespan,
            "makespan_speedup": (
                rr_makespan / lpt_makespan if lpt_makespan > 0 else None
            ),
            "round_robin_wall_s": rr_wall_s,
            "lpt_wall_s": lpt_wall_s,
        },
    )
    assert lpt_makespan <= rr_makespan, (
        f"LPT makespan ({lpt_makespan:.3f}s) worse than round-robin "
        f"({rr_makespan:.3f}s) on the skewed workload — cost-aware "
        f"scheduling has stopped paying for itself"
    )

"""The LP hot path: structure reuse and the certified approximate solver.

A sweep solves the *same* (network, path-set) model at many traffic
scales — only the demand payload changes — so the per-path delays, link
order and matrix pattern that dominate model-*build* time should be paid
once per model, not once per solve.  This benchmark replays a small
MinMax sweep and records wall times to ``BENCH_lp.json``:

* **assembly, cold vs warm** — model assembly (builder + both MinMax
  stage models) with the structure cache disabled vs pre-warmed.  The
  cache saves exactly this work, so warm assembly must beat cold or
  reuse has silently broken; this is the CI guard least exposed to
  solver-time noise.
* **exact sweep, cold vs warm** — end-to-end solve times for context
  (solver time dominates both; recorded, not guarded).  Warm must be
  bit-identical to cold: reuse is purely a performance change.
* **approx sweep** — :func:`solve_minmax_approx` at screening settings
  over the same cases.  Its certified bounds must bracket every exact
  optimum and the whole approximate sweep must be cheaper than the
  exact one, or the fast path is no longer fast.

Scale the ensemble with ``REPRO_BENCH_NETWORKS``.
"""

import time

from benchmarks.conftest import record_bench_json
from repro.lp import resolve_backend
from repro.routing.pathlp import (
    _PathLpBuilder,
    clear_structure_cache,
    set_structure_cache_enabled,
    solve_minmax_approx,
    solve_minmax_lp,
)

SCALES = (0.6, 0.8, 1.0)
K_PATHS = 10
#: Screening settings for the approximate pass: iteration-capped, with
#: whatever certified gap that budget buys (reported, never assumed).
APPROX_TARGET_GAP = 0.05
APPROX_MAX_ITERATIONS = 150


def _sweep_cases(items):
    """(network, path_sets) per (item, scale): the sweep's exact inputs."""
    cases = []
    for item in items:
        base = item.matrices[0]
        for scale in SCALES:
            tm = base.scaled(scale)
            path_sets = {
                agg: list(item.cache.get(agg.src, agg.dst, K_PATHS))
                for agg in tm.aggregates()
            }
            cases.append((item.network, path_sets))
    return cases


def _assemble_all(cases):
    for network, path_sets in cases:
        builder = _PathLpBuilder(network, path_sets)
        builder.minmax_stage1_model()
        builder.minmax_stage2_model(1.0)


def _run_exact(cases):
    out = []
    for network, path_sets in cases:
        result, cap = solve_minmax_lp(network, path_sets)
        out.append((result.fractions, cap))
    return out


def _run_approx(cases):
    out = []
    for network, path_sets in cases:
        result, _ = solve_minmax_approx(
            network,
            path_sets,
            target_gap=APPROX_TARGET_GAP,
            max_iterations=APPROX_MAX_ITERATIONS,
        )
        out.append(result)
    return out


def test_lp_reuse_and_approx_fast_path(benchmark, standard_workload):
    items = standard_workload.networks[:6]
    cases = _sweep_cases(items)

    # Assembly alone, cold vs warm: the work the structure cache saves.
    set_structure_cache_enabled(False)
    try:
        start = time.perf_counter()
        _assemble_all(cases)
        assemble_cold_s = time.perf_counter() - start
    finally:
        set_structure_cache_enabled(True)
    clear_structure_cache()
    _assemble_all(cases)  # populate the cache
    start = time.perf_counter()
    _assemble_all(cases)
    assemble_warm_s = time.perf_counter() - start

    # Exact end-to-end sweeps (solver time dominates; context numbers).
    set_structure_cache_enabled(False)
    try:
        start = time.perf_counter()
        cold = _run_exact(cases)
        cold_s = time.perf_counter() - start
    finally:
        set_structure_cache_enabled(True)
    warm = benchmark.pedantic(
        lambda: _run_exact(cases), rounds=1, iterations=1
    )
    warm_s = benchmark.stats.stats.total

    # Reuse is purely a performance change: bit-identical results.
    assert warm == cold, "structure-cache reuse changed exact results"

    # Approx: the same sweep through the certified fast path.
    start = time.perf_counter()
    approx = _run_approx(cases)
    approx_s = time.perf_counter() - start

    worst_gap = 0.0
    for result, (_, exact_cap) in zip(approx, cold):
        lower = result.utilization_lower_bound
        upper = result.utilization_upper_bound
        assert lower - 1e-9 <= exact_cap <= upper + 1e-9, (
            f"certified bounds [{lower}, {upper}] miss the exact optimum "
            f"{exact_cap}"
        )
        worst_gap = max(worst_gap, result.certified_gap)

    record_bench_json(
        "lp",
        {
            "backend": resolve_backend(),
            "n_networks": len(items),
            "n_solves": len(cases),
            "scales": list(SCALES),
            "assemble_cold_s": assemble_cold_s,
            "assemble_warm_s": assemble_warm_s,
            "assemble_speedup": (
                assemble_cold_s / assemble_warm_s
                if assemble_warm_s > 0 else None
            ),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "approx_s": approx_s,
            "approx_max_iterations": APPROX_MAX_ITERATIONS,
            "approx_speedup": warm_s / approx_s if approx_s > 0 else None,
            "worst_certified_gap": worst_gap,
        },
    )
    assert assemble_warm_s < assemble_cold_s, (
        f"warm assembly ({assemble_warm_s:.4f}s) not faster than cold "
        f"({assemble_cold_s:.4f}s) — LP structure reuse has stopped "
        f"paying for itself"
    )
    assert approx_s <= warm_s, (
        f"approximate sweep ({approx_s:.3f}s) slower than the exact one "
        f"({warm_s:.3f}s) — the fast path is no longer fast"
    )

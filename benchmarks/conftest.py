"""Shared fixtures for the per-figure benchmark suite.

Each ``bench_figNN_*.py`` module regenerates one figure of the paper:
it runs the corresponding experiment, checks the qualitative *shape* the
paper reports, writes the numeric series to ``benchmarks/results/`` and
times the run via pytest-benchmark.

Scale: the paper uses 116 networks x 100 traffic matrices; the defaults
here are laptop-sized.  Set ``REPRO_BENCH_NETWORKS`` / ``REPRO_BENCH_TMS``
to scale the ensembles up.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.workloads import ZooWorkload, build_zoo_workload

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

N_NETWORKS = int(os.environ.get("REPRO_BENCH_NETWORKS", "18"))
N_MATRICES = int(os.environ.get("REPRO_BENCH_TMS", "2"))
N_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def emit(name: str, text: str) -> None:
    """Write a figure's series to the results directory and to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}\n{text}")


def record_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable benchmark record to the repo root.

    ``BENCH_<name>.json`` files are the artifacts CI diffs across runs
    (e.g. cold-vs-warm engine numbers for Figure 15); keep payloads flat
    and JSON-native.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[BENCH_{name}] written to {path}")
    return path


def assert_warm_beats_cold(cold_s: float, warm_s: float, label: str) -> None:
    """Benchmark guard: a warm KSP cache must actually pay for itself.

    Any change that makes warm runs as slow as cold ones has silently
    broken cache reuse — fail the benchmark rather than record it.
    """
    assert warm_s < cold_s, (
        f"{label}: warm run ({warm_s:.4f}s) is not faster than cold "
        f"({cold_s:.4f}s) — KSP cache reuse is broken"
    )


@pytest.fixture(scope="session")
def standard_workload() -> ZooWorkload:
    """The paper's default setting: locality 1, min-cut load 77%."""
    return build_zoo_workload(
        n_networks=N_NETWORKS,
        n_matrices=N_MATRICES,
        locality=1.0,
        growth_factor=1.3,
        seed=0,
    )


@pytest.fixture(scope="session")
def light_workload() -> ZooWorkload:
    """The Figure 8 setting: min-cut load 60% (traffic could grow 1.65x)."""
    return build_zoo_workload(
        n_networks=N_NETWORKS,
        n_matrices=N_MATRICES,
        locality=1.0,
        growth_factor=1.65,
        seed=0,
    )


@pytest.fixture(scope="session")
def high_llpd_items(standard_workload):
    """Networks with LLPD > 0.5 — "the hardest to route" (Figure 15)."""
    items = [w for w in standard_workload.networks if w.llpd > 0.5]
    assert items, "zoo must contain high-LLPD networks"
    return items

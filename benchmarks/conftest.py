"""Shared fixtures for the per-figure benchmark suite.

Each ``bench_figNN_*.py`` module regenerates one figure of the paper:
it runs the corresponding experiment, checks the qualitative *shape* the
paper reports, writes the numeric series to ``benchmarks/results/`` and
times the run via pytest-benchmark.

Scale: the paper uses 116 networks x 100 traffic matrices; the defaults
here are laptop-sized.  Set ``REPRO_BENCH_NETWORKS`` / ``REPRO_BENCH_TMS``
to scale the ensembles up.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.workloads import ZooWorkload, build_zoo_workload

RESULTS_DIR = Path(__file__).parent / "results"

N_NETWORKS = int(os.environ.get("REPRO_BENCH_NETWORKS", "18"))
N_MATRICES = int(os.environ.get("REPRO_BENCH_TMS", "2"))


def emit(name: str, text: str) -> None:
    """Write a figure's series to the results directory and to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}\n{text}")


@pytest.fixture(scope="session")
def standard_workload() -> ZooWorkload:
    """The paper's default setting: locality 1, min-cut load 77%."""
    return build_zoo_workload(
        n_networks=N_NETWORKS,
        n_matrices=N_MATRICES,
        locality=1.0,
        growth_factor=1.3,
        seed=0,
    )


@pytest.fixture(scope="session")
def light_workload() -> ZooWorkload:
    """The Figure 8 setting: min-cut load 60% (traffic could grow 1.65x)."""
    return build_zoo_workload(
        n_networks=N_NETWORKS,
        n_matrices=N_MATRICES,
        locality=1.0,
        growth_factor=1.65,
        seed=0,
    )


@pytest.fixture(scope="session")
def high_llpd_items(standard_workload):
    """Networks with LLPD > 0.5 — "the hardest to route" (Figure 15)."""
    items = [w for w in standard_workload.networks if w.llpd > 0.5]
    assert items, "zoo must contain high-LLPD networks"
    return items

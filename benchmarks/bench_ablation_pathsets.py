"""Ablation: how the path-set policy determines MinMax's fate.

The paper argues (§3, §8) that a *fixed* path budget k is always wrong on
some network — too small to find capacity on path-diverse topologies, too
large (hence detour-happy) on sparse ones — and suggests growing path sets
per aggregate subject to a delay-stretch bound instead.  This bench
compares, across the high-LLPD networks:

* MinMax over fixed k in {3, 10, 30};
* MinMax with a stretch bound of 2.0 (the §8 suggestion);
* full MinMax (MCF-seeded, exactly optimal utilization).

Expected shape: small k congests; large k and full MinMax never congest
but buy it with long detours; the stretch-bounded variant avoids both when
the bound is wide enough.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.routing import MinMaxRouting


def run_policies(items):
    policies = {
        "K3": dict(k=3),
        "K10": dict(k=10),
        "K30": dict(k=30),
        "S2.0": dict(stretch_bound=2.0),
        "full": dict(),
    }
    rows = {}
    for label, kwargs in policies.items():
        congested = 0
        total = 0
        stretches = []
        max_stretches = []
        for item in items:
            for tm in item.matrices:
                placement = MinMaxRouting(cache=item.cache, **kwargs).place(
                    item.network, tm
                )
                total += 1
                if placement.congested_pair_fraction() > 0:
                    congested += 1
                else:
                    stretches.append(placement.total_latency_stretch())
                    max_stretches.append(placement.max_path_stretch())
        rows[label] = {
            "congested_fraction": congested / total,
            "median_stretch": float(np.median(stretches)) if stretches else None,
            "median_max_path_stretch": (
                float(np.median(max_stretches)) if max_stretches else None
            ),
        }
    return rows


def test_ablation_pathsets(benchmark, high_llpd_items):
    rows = benchmark.pedantic(
        run_policies, args=(high_llpd_items,), rounds=1, iterations=1
    )

    # Full MinMax never congests; a small fixed k congests at least as
    # often as a big one.
    assert rows["full"]["congested_fraction"] == 0.0
    assert (
        rows["K3"]["congested_fraction"] >= rows["K30"]["congested_fraction"]
    )
    # Where both fit, the stretch-bounded variant's worst detour is no
    # longer than full MinMax's.
    if rows["S2.0"]["median_max_path_stretch"] is not None:
        assert (
            rows["S2.0"]["median_max_path_stretch"]
            <= rows["full"]["median_max_path_stretch"] + 1e-9
        )

    lines = [
        f"{'policy':>6s} {'congested':>10s} {'med stretch':>12s} "
        f"{'med max-path':>13s}"
    ]
    for label, row in rows.items():
        stretch = (
            f"{row['median_stretch']:.4f}" if row["median_stretch"] else "-"
        )
        worst = (
            f"{row['median_max_path_stretch']:.2f}"
            if row["median_max_path_stretch"]
            else "-"
        )
        lines.append(
            f"{label:>6s} {row['congested_fraction']:>10.2f} "
            f"{stretch:>12s} {worst:>13s}"
        )
    emit("ablation_pathsets", "\n".join(lines))

"""Batched plan execution vs the per-call loop it replaced.

Figure 17's grid is the motivating case: the per-call path runs one
``evaluate_scheme`` (and constructs one process pool) per (scheme, load)
cell — 8 pools for this benchmark's 4 schemes x 2 loads — while the plan
path executes the whole grid as ONE engine pass over a single shared
pool, interleaving tasks from every stream.  At bench scale pool
spin-up is a large share of each per-call invocation (see
``BENCH_dispatch.json``'s coordinator-overhead numbers), so the batched
plan must win; this benchmark records both wall times to
``BENCH_plan.json`` and fails if batching ever stops paying for itself.

Worker count scales with ``REPRO_BENCH_WORKERS`` (min 2, so both paths
actually construct pools), ensemble size with ``REPRO_BENCH_NETWORKS``.
"""

import time

from benchmarks.conftest import N_WORKERS, record_bench_json
from repro.experiments.figures import fig17_plan
from repro.experiments.plan import execute_plan
from repro.experiments.runner import evaluate_scheme

WORKERS = max(2, N_WORKERS)
LOADS = (0.6, 0.9)


def test_batched_plan_beats_per_call(benchmark, standard_workload):
    items = standard_workload.networks[:6]
    plan = fig17_plan(items, loads=LOADS)

    # The per-call baseline: the pre-refactor figure layer, one engine
    # (and one fresh pool) per stream.
    start = time.perf_counter()
    per_call = {
        key: evaluate_scheme(
            stream.factory,
            stream.workload,
            stream.matrices_per_network,
            n_workers=WORKERS,
        )
        for key, stream in plan.streams.items()
    }
    per_call_s = time.perf_counter() - start

    report = benchmark.pedantic(
        lambda: execute_plan(plan, n_workers=WORKERS), rounds=1, iterations=1
    )
    batched_s = benchmark.stats.stats.total

    # Same grid, same results, bit for bit — batching is purely a
    # scheduling change.
    assert report.all_outcomes() == per_call

    record_bench_json(
        "plan",
        {
            "n_networks": len(items),
            "n_streams": len(plan.streams),
            "n_tasks": plan.n_tasks,
            "n_workers": WORKERS,
            "per_call_s": per_call_s,
            "batched_s": batched_s,
            "speedup": per_call_s / batched_s if batched_s > 0 else None,
        },
    )
    assert batched_s <= per_call_s, (
        f"batched plan ({batched_s:.3f}s) slower than the per-call loop "
        f"({per_call_s:.3f}s) — shared-pool batching has stopped paying "
        f"for itself"
    )

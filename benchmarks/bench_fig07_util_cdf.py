"""Figure 7: link-utilization CDF in the GTS-like network's median traffic
matrix, latency-optimal vs MinMax.

Paper shape: most links are lightly loaded and look similar under both
schemes; the busiest links sit at ~100% under latency-optimal routing and
at ~77% (1 - the 23% headroom) under MinMax.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments.figures import fig07_utilization_cdf
from repro.experiments.render import render_cdf
from repro.experiments.workloads import build_traffic_matrices
from repro.net.zoo import gts_like


def test_fig07_utilization_cdf(benchmark):
    network = gts_like()
    rng = np.random.default_rng(7)
    tm = build_traffic_matrices(network, 1, rng, locality=1.0,
                                growth_factor=1.3)[0]

    result = benchmark.pedantic(
        fig07_utilization_cdf, args=(network, tm), rounds=1, iterations=1
    )

    optimal = result["latency_optimal"]
    minmax = result["minmax"]
    # Busiest links: ~1.0 for latency-optimal, ~0.77 for MinMax.
    assert optimal.max() == pytest.approx(1.0, abs=0.02)
    assert minmax.max() == pytest.approx(1 / 1.3, rel=0.02)
    # The bulk of links look alike: medians within a few points.
    assert abs(float(np.median(optimal)) - float(np.median(minmax))) < 0.15

    emit(
        "fig07_util_cdf",
        render_cdf("latency-optimal link utilization", optimal)
        + f"\n  mean: {optimal.mean():.3f}\n\n"
        + render_cdf("MinMax link utilization", minmax)
        + f"\n  mean: {minmax.mean():.3f}",
    )


"""Lazy scenario fleets vs a materialized variant list: speed and memory.

The tentpole claim of the scenarios subsystem is that a 10^5-variant
fleet *streams*: the plan's task list is an iterator, variants realize
on demand inside a bounded LRU window, and peak memory stays flat in
fleet size.  This benchmark measures exactly that, in child processes so
``ru_maxrss`` is a clean per-mode high-water mark:

* **lazy** — a fleet of ``REPRO_BENCH_SCENARIO_VARIANTS`` (default
  100 000) variants, streamed via ``plan.iter_tasks()``; the same number
  of variants as the materialized pass realize on demand, spread across
  the whole fleet, but none are retained beyond the LRU window.
* **materialized** — a fleet of ``REPRO_BENCH_SCENARIO_MATERIALIZED``
  (default 2 000) variants with ``plan.tasks()`` fully listed and every
  realized variant retained — the pre-subsystem idiom.

Both modes' task throughput and peak RSS land in
``BENCH_scenarios.json``; the benchmark FAILS if the 50x-larger lazy
fleet's peak memory ever exceeds the small materialized one's — that
would mean something started materializing the full task list again.
"""

import json
import os
import subprocess
import sys

from benchmarks.conftest import record_bench_json

N_LAZY = int(os.environ.get("REPRO_BENCH_SCENARIO_VARIANTS", "100000"))
N_MATERIALIZED = int(
    os.environ.get("REPRO_BENCH_SCENARIO_MATERIALIZED", "2000")
)

_CHILD = r"""
import json
import resource
import sys
import time

from repro.experiments.plan import EvalPlan
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import build_zoo_workload
from repro.scenarios import ScenarioGenerator, ScenarioWorkload

mode, n_variants, n_realized = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
)
workload = build_zoo_workload(
    n_networks=2, n_matrices=1, seed=0, include_named=False
)
base = max(workload.networks, key=lambda item: item.network.num_links)
fleet_set = ScenarioGenerator(base, seed=0).fleet(
    surges=n_variants - 1, surge_pairs=3
)
fleet = ScenarioWorkload(base, fleet_set.specs, seed=0)
plan = EvalPlan()
plan.add("SP", SchemeSpec("SP"), fleet, scheme="SP")

start = time.perf_counter()
realized = 0
if mode == "lazy":
    step = max(1, len(fleet.specs) // n_realized)
    n_tasks = 0
    for task in plan.iter_tasks():
        n_tasks += 1
        if task.index % step == 0 and realized < n_realized:
            item = fleet.networks[task.index]  # on-demand, LRU-windowed
            realized += 1
elif mode == "materialized":
    items = list(fleet.networks)  # realize AND retain every variant
    tasks = plan.tasks()  # the full task list, materialized
    n_tasks = len(tasks)
    realized = len(items)
else:
    raise SystemExit(f"unknown mode {mode!r}")
seconds = time.perf_counter() - start

print(json.dumps({
    "mode": mode,
    "n_variants": len(fleet.specs),
    "n_tasks": n_tasks,
    "realized_variants": realized,
    "seconds": seconds,
    "tasks_per_second": n_tasks / seconds if seconds > 0 else None,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _run_child(mode: str, n_variants: int, n_realized: int) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(n_variants), str(n_realized)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.splitlines()[-1])


def test_lazy_fleet_streams_within_materialized_memory(benchmark):
    lazy = benchmark.pedantic(
        lambda: _run_child("lazy", N_LAZY, N_MATERIALIZED),
        rounds=1,
        iterations=1,
    )
    materialized = _run_child(
        "materialized", N_MATERIALIZED, N_MATERIALIZED
    )

    assert lazy["n_tasks"] == N_LAZY
    assert materialized["n_tasks"] == N_MATERIALIZED
    # Both passes realize the same number of variants; only retention
    # (and fleet size) differs.
    assert lazy["realized_variants"] == materialized["realized_variants"]

    record_bench_json(
        "scenarios",
        {
            "lazy": lazy,
            "materialized": materialized,
            "fleet_ratio": N_LAZY / N_MATERIALIZED,
            "peak_rss_ratio": (
                lazy["peak_rss_kb"] / materialized["peak_rss_kb"]
                if materialized["peak_rss_kb"] > 0
                else None
            ),
        },
    )

    assert lazy["peak_rss_kb"] <= materialized["peak_rss_kb"], (
        f"lazy {N_LAZY}-variant fleet peaked at {lazy['peak_rss_kb']} KB, "
        f"above the {N_MATERIALIZED}-variant materialized pass "
        f"({materialized['peak_rss_kb']} KB) — streaming has started "
        f"materializing the fleet"
    )

"""Figure 17: effect of load on median maximum flow stretch, high-LLPD
networks.

Paper shape: B4 is quite sensitive to high load; the other schemes are
not.  At low load B4 is (near) optimal; at high load MinMax and the
optimal scheme converge.
"""

import numpy as np

from benchmarks.conftest import N_WORKERS, RESULTS_DIR, emit
from repro.experiments.figures import fig17_load_sweep
from repro.experiments.render import render_series

LOADS = (0.6, 0.7, 0.8, 0.9)


def test_fig17_load(benchmark, high_llpd_items):
    # Engine-backed since the result-store refactor: shards across
    # REPRO_BENCH_WORKERS and shares the persistent KSP cache directory
    # with the other benchmarks (same networks, same content hashes).
    results = benchmark.pedantic(
        fig17_load_sweep,
        args=(high_llpd_items,),
        kwargs={
            "loads": LOADS,
            "n_workers": N_WORKERS,
            "cache_dir": str(RESULTS_DIR / "ksp-cache"),
        },
        rounds=1,
        iterations=1,
    )

    def series(name):
        return [y for _, y in results[name]]

    # B4 degrades with load more than LDR does.
    b4_growth = series("B4")[-1] - series("B4")[0]
    ldr_growth = series("LDR")[-1] - series("LDR")[0]
    assert b4_growth >= ldr_growth - 1e-6
    # MinMax approaches the optimum at the highest load: the gap at 90%
    # is no bigger than the gap at 60%.
    gap_low = series("MinMax")[0] - series("LDR")[0]
    gap_high = series("MinMax")[-1] - series("LDR")[-1]
    assert gap_high <= gap_low + 1e-6

    emit(
        "fig17_load",
        render_series(
            "Fig 17: median max path stretch vs min-cut load "
            "(LLPD > 0.5 networks)",
            results,
            x_label="load",
        ),
    )

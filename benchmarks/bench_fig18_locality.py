"""Figure 18: effect of traffic locality on median maximum flow stretch.

Paper shape: low locality (more long-distance traffic) hurts every scheme
— B4 the most; all schemes improve as locality rises, with little change
beyond locality ~1.5.
"""

import numpy as np

from benchmarks.conftest import N_WORKERS, RESULTS_DIR, emit
from repro.experiments.figures import fig18_locality_sweep
from repro.experiments.render import render_series

LOCALITIES = (0.0, 0.5, 1.0, 1.5, 2.0)


def test_fig18_locality(benchmark, high_llpd_items):
    networks = [item.network for item in high_llpd_items]
    # Engine-backed since the result-store refactor: shards across
    # REPRO_BENCH_WORKERS and warm-starts from the shared KSP cache dir.
    results = benchmark.pedantic(
        fig18_locality_sweep,
        args=(networks,),
        kwargs={
            "localities": LOCALITIES,
            "n_matrices": 1,
            "n_workers": N_WORKERS,
            "cache_dir": str(RESULTS_DIR / "ksp-cache"),
        },
        rounds=1,
        iterations=1,
    )

    def at(name, locality):
        return dict(results[name])[locality]

    # B4 is the most locality-sensitive scheme: worst at locality 0 and
    # clearly better at 2 (the paper: "B4 is especially sensitive to
    # congesting the wide-area links, so a traffic matrix with low
    # locality tends to hurt latency").
    assert at("B4", 0.0) >= at("B4", 2.0) - 1e-6
    # LDR dominates B4 at every locality.
    for locality in LOCALITIES:
        assert at("LDR", locality) <= at("B4", locality) + 1e-6
    # "the MinMax curves are rather level with locality greater than 1.5".
    assert abs(at("MinMax", 2.0) - at("MinMax", 1.5)) < 0.5
    # Note: the paper's fully-monotone improvement with locality does not
    # reproduce on the synthetic zoo — when locality concentrates demand
    # onto adjacent PoP pairs, their detours carry large *relative*
    # stretch; see EXPERIMENTS.md for the discussion.

    emit(
        "fig18_locality",
        render_series(
            "Fig 18: median max path stretch vs locality "
            "(LLPD > 0.5 networks)",
            results,
            x_label="locality",
        ),
    )

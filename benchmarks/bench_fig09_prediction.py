"""Figure 9: CDF of measured/predicted mean bitrate (Algorithm 1) over the
trace corpus.

Paper shape: traffic is very predictable minute to minute; only ~0.5% of
minutes exceed the hedged prediction (ratio > 1), and never by more than
10%.  Constant traffic would sit at 1/1.1 = 0.91.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.figures import fig09_prediction_ratios
from repro.experiments.render import render_cdf
from repro.traces import trace_ensemble

N_TRACES = 12
MINUTES = 40


def test_fig09_prediction(benchmark):
    rng = np.random.default_rng(9)
    traces = trace_ensemble(N_TRACES, rng, minutes=MINUTES, sample_ms=100)

    ratios = benchmark.pedantic(
        fig09_prediction_ratios,
        args=(traces, 600),
        rounds=1,
        iterations=1,
    )

    assert len(ratios) == N_TRACES * (MINUTES - 1)
    exceed = float(np.mean(ratios > 1.0))
    assert exceed < 0.02, f"{exceed:.1%} of minutes exceeded the prediction"
    assert ratios.max() < 1.10, "never exceeds the target by more than 10%"
    # The bulk sits near 1/1.1 (tracking the hedge).
    assert abs(float(np.median(ratios)) - 1 / 1.1) < 0.05

    emit(
        "fig09_prediction",
        render_cdf(
            f"Fig 9: measured/predicted bitrate "
            f"(exceed fraction {exceed:.4f})",
            ratios,
        ),
    )

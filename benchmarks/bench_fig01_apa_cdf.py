"""Figure 1: CDFs of APA for all networks (path stretch limit 1.4).

Paper shape: networks vary widely; tree-like networks hug the top-left
(APA ~ 0 for most pairs), grid/mesh networks reach the lower right, and
clique overlays are horizontal lines.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.figures import fig01_apa_cdfs
from repro.experiments.render import render_cdf


def test_fig01_apa_cdf(benchmark, standard_workload):
    networks = [item.network for item in standard_workload.networks]

    curves = benchmark.pedantic(
        fig01_apa_cdfs, args=(networks,), rounds=1, iterations=1
    )

    # Shape: every curve is a valid CDF support and the ensemble spans a
    # wide APA range (diverse zoo, as in the paper's Figure 1).
    assert len(curves) == len(networks)
    maxima = []
    for name, cdf in curves.items():
        assert (np.diff(cdf) >= 0).all(), name
        assert 0.0 <= cdf[0] and cdf[-1] <= 1.0, name
        maxima.append(cdf[-1])
    assert min(maxima) < 0.3, "zoo should contain tree-like networks"
    assert max(maxima) == 1.0, "zoo should contain fully-diverse networks"

    lines = []
    for name, cdf in sorted(curves.items()):
        lines.append(
            render_cdf(f"APA quantiles: {name} (pairs={len(cdf)})", cdf)
        )
    emit("fig01_apa_cdf", "\n\n".join(lines))

"""Figure 4: congestion and latency stretch vs LLPD for the four active
schemes (latency-optimal, B4, MinMax, MinMax K=10).

Paper shapes:
* optimal ("LDR" engine at zero headroom): no congestion anywhere, low
  stretch even at high LLPD;
* B4: matches optimal on simple networks but induces congestion on the
  most path-diverse ones;
* MinMax: never congests, but pays clearly higher latency stretch;
* MinMax K=10: stretch between B4 and MinMax, but congestion reappears on
  high-LLPD networks.
"""

import numpy as np

from benchmarks.conftest import N_WORKERS, emit
from repro.experiments.figures import fig04_schemes
from repro.experiments.render import render_series


def _mean(points):
    return float(np.mean([y for _, y in points])) if points else 0.0


def test_fig04_schemes(benchmark, standard_workload):
    results = benchmark.pedantic(
        fig04_schemes,
        args=(standard_workload,),
        kwargs={"n_workers": N_WORKERS},
        rounds=1,
        iterations=1,
    )

    # --- Paper shape assertions -------------------------------------
    # (a) The optimal scheme never congests.
    assert all(y == 0.0 for _, y in results["LDR"]["congestion_median"])
    # (c) MinMax never congests either...
    assert all(y == 0.0 for _, y in results["MinMax"]["congestion_median"])
    # ...but pays more latency than the optimum.
    assert _mean(results["MinMax"]["stretch_median"]) > _mean(
        results["LDR"]["stretch_median"]
    )
    # (b)/(d) Greedy and k-limited schemes congest somewhere (the paper's
    # high-LLPD pathologies), mostly at the high-LLPD end.
    b4_congestion = results["B4"]["congestion_p90"]
    k10_congestion = results["MinMaxK10"]["congestion_p90"]
    assert max(y for _, y in b4_congestion + k10_congestion) > 0.0

    series = {}
    for scheme, data in results.items():
        series[f"{scheme}:cong"] = data["congestion_median"]
        series[f"{scheme}:stretch"] = data["stretch_median"]
    emit(
        "fig04_schemes",
        render_series(
            "Fig 4: median congested fraction and latency stretch vs LLPD",
            series,
            x_label="LLPD",
        ),
    )

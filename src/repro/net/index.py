"""Integer-indexed sparse graph core.

The legacy path algorithms in :mod:`repro.net.paths` key everything by node
name: string dicts, string heaps, string exclusion sets.  That is perfectly
fast at zoo scale (hundreds of nodes) and hopeless at ingest scale (10k+
nodes, the CAIDA-style graphs of :mod:`repro.net.ingest`).  This module
compiles a :class:`~repro.net.graph.Network` into a :class:`GraphIndex` —
contiguous integer node ids, CSR adjacency, flat delay/capacity arrays —
and rebuilds Dijkstra, single-source delay sweeps and Yen's k-shortest
paths on top of array heaps and bytearray exclusion masks.

**Bit-identity contract.**  The indexed algorithms return *exactly* the
paths the legacy ones do, byte for byte:

* node ids are assigned in **sorted-name order**, so the integer heap
  entries ``(dist, id)`` tie-break exactly like the legacy ``(dist, name)``
  entries;
* CSR neighbor runs preserve each node's adjacency **insertion order**, so
  relaxation visits links in the legacy sequence;
* distances accumulate in the same left-to-right float addition order, so
  every comparison sees the same ulps.

The legacy implementations survive as ``legacy_*`` parity oracles in
:mod:`repro.net.paths`, and ``tests/test_net_index.py`` asserts equality
across the whole zoo plus seeded synthetic graphs.

Indexes are memoized on the network via the existing ``_signature_memo``
invalidation hook: every :class:`Network` mutation resets the memo to
``None``, and recomputation creates a *new* string object, so an identity
check on the memoized token detects any mutation — including a
mutate-and-undo cycle that restores the same signature value.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np
import numpy.typing as npt

from repro.net.graph import Network

Path = Tuple[str, ...]
IdPath = Tuple[int, ...]
FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]

_INF = float("inf")

#: Lazily bound telemetry module (same pattern as :mod:`repro.net.paths`:
#: a top-level import would cycle through ``repro.experiments``).
_telemetry: Any = None


def _recorder() -> Any:
    global _telemetry
    if _telemetry is None:
        from repro.experiments import telemetry

        _telemetry = telemetry
    return _telemetry.recorder()


class NoPathError(Exception):
    """Raised when no path exists between the requested endpoints.

    Defined here (the lowest layer that raises it) and re-exported by
    :mod:`repro.net.paths`, which is where most callers import it from.
    """


class GraphIndex:
    """A compiled, immutable sparse view of one :class:`Network`.

    Holds the name⇄id maps, CSR adjacency (``indptr``/``neighbors``) with
    parallel per-edge delay and capacity arrays, and the integer-indexed
    path algorithms.  Build cost is O(n + m log m); obtain instances via
    :func:`graph_index`, which memoizes per network.
    """

    def __init__(self, network: Network) -> None:
        names = sorted(network.node_names)
        ids: Dict[str, int] = {name: i for i, name in enumerate(names)}
        n = len(names)
        indptr: List[int] = [0] * (n + 1)
        neighbors: List[int] = []
        delays: List[float] = []
        capacities: List[float] = []
        edge_pos: Dict[Tuple[int, int], int] = {}
        for u, name in enumerate(names):
            # Per-node adjacency insertion order is preserved so the
            # indexed relaxation sequence matches the legacy one.
            for link in network.out_links(name):
                v = ids[link.dst]
                edge_pos[(u, v)] = len(neighbors)
                neighbors.append(v)
                delays.append(link.delay_s)
                capacities.append(link.capacity_bps)
            indptr[u + 1] = len(neighbors)
        self._names: List[str] = names
        self._ids = ids
        self._indptr = indptr
        self._neighbors = neighbors
        self._delays = delays
        self._capacities = capacities
        self._edge_pos = edge_pos

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._names)

    @property
    def num_edges(self) -> int:
        return len(self._neighbors)

    @property
    def names(self) -> List[str]:
        """Node names in id order (sorted)."""
        return list(self._names)

    def node_id(self, name: str) -> int:
        return self._ids[name]

    def node_name(self, node_id: int) -> str:
        return self._names[node_id]

    @property
    def indptr_array(self) -> IntArray:
        """CSR row pointers as a numpy array (analysis/benchmark use)."""
        return np.asarray(self._indptr, dtype=np.int64)

    @property
    def neighbor_array(self) -> IntArray:
        return np.asarray(self._neighbors, dtype=np.int64)

    @property
    def delay_array(self) -> FloatArray:
        return np.asarray(self._delays, dtype=np.float64)

    @property
    def capacity_array(self) -> FloatArray:
        return np.asarray(self._capacities, dtype=np.float64)

    # ------------------------------------------------------------------
    # Exclusion-set compilation
    # ------------------------------------------------------------------
    def edge_mask(
        self, excluded_links: Optional[Set[Tuple[str, str]]]
    ) -> Optional[bytearray]:
        """A per-CSR-position bytearray mask for a name-keyed link set.

        Links absent from the graph are ignored, matching the legacy
        behavior of an exclusion set entry that never comes up.
        """
        if not excluded_links:
            return None
        mask = bytearray(len(self._neighbors))
        ids = self._ids
        edge_pos = self._edge_pos
        for src, dst in excluded_links:
            u = ids.get(src)
            v = ids.get(dst)
            if u is None or v is None:
                continue
            pos = edge_pos.get((u, v))
            if pos is not None:
                mask[pos] = 1
        return mask

    def node_mask(
        self, excluded_nodes: Optional[Set[str]]
    ) -> Optional[bytearray]:
        """A per-node bytearray mask for a name-keyed node set."""
        if not excluded_nodes:
            return None
        mask = bytearray(len(self._names))
        ids = self._ids
        for name in excluded_nodes:
            node_id = ids.get(name)
            if node_id is not None:
                mask[node_id] = 1
        return mask

    # ------------------------------------------------------------------
    # Core integer Dijkstra
    # ------------------------------------------------------------------
    def dijkstra_ids(
        self,
        src: int,
        dst: int = -1,
        excluded_edges: Optional[bytearray] = None,
        excluded_nodes: Optional[bytearray] = None,
    ) -> Tuple[List[float], List[int], List[int]]:
        """Single-source Dijkstra over integer ids.

        Returns ``(dist, parent, touched)``: distances (``inf`` where
        unreached), parent ids (``-1`` where none), and node ids in the
        order their distance was first assigned — the legacy dict
        insertion order, which :meth:`shortest_path_delays` reproduces.
        ``dst = -1`` sweeps the whole component; otherwise the search
        stops once ``dst`` is settled.
        """
        n = len(self._names)
        dist: List[float] = [_INF] * n
        parent: List[int] = [-1] * n
        touched: List[int] = []
        if excluded_nodes is not None and excluded_nodes[src]:
            return dist, parent, touched
        indptr = self._indptr
        neighbors = self._neighbors
        delays = self._delays
        done = bytearray(n)
        dist[src] = 0.0
        touched.append(src)
        heap: List[Tuple[float, int]] = [(0.0, src)]
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, u = pop(heap)
            if done[u]:
                continue
            done[u] = 1
            if u == dst:
                break
            for pos in range(indptr[u], indptr[u + 1]):
                v = neighbors[pos]
                if done[v]:
                    continue
                if excluded_nodes is not None and excluded_nodes[v]:
                    continue
                if excluded_edges is not None and excluded_edges[pos]:
                    continue
                nd = d + delays[pos]
                if nd < dist[v]:
                    if dist[v] == _INF:
                        touched.append(v)
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return dist, parent, touched

    @staticmethod
    def extract_ids(parent: List[int], src: int, dst: int) -> IdPath:
        """Reconstruct the id path ``src -> dst`` from a parent array."""
        path = [dst]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return tuple(path)

    def to_names(self, id_path: IdPath) -> Path:
        names = self._names
        return tuple(names[i] for i in id_path)

    # ------------------------------------------------------------------
    # Name-level algorithms (legacy-compatible surface)
    # ------------------------------------------------------------------
    def shortest_path(
        self,
        src: str,
        dst: str,
        excluded_links: Optional[Set[Tuple[str, str]]] = None,
        excluded_nodes: Optional[Set[str]] = None,
    ) -> Path:
        """Lowest-delay path; legacy-identical errors and tie-breaking."""
        if src == dst:
            raise ValueError("source and destination must differ")
        s = self._ids.get(src)
        if s is None:
            raise KeyError(f"unknown node {src!r}")
        t = self._ids.get(dst, -1)
        if t < 0:
            raise NoPathError(f"no path {src} -> {dst}")
        dist, parent, _ = self.dijkstra_ids(
            s, t, self.edge_mask(excluded_links), self.node_mask(excluded_nodes)
        )
        if dist[t] == _INF:
            raise NoPathError(f"no path {src} -> {dst}")
        return self.to_names(self.extract_ids(parent, s, t))

    def shortest_path_delays(self, src: str) -> Dict[str, float]:
        """Delays to every reachable node, in legacy dict order."""
        s = self._ids.get(src)
        if s is None:
            raise KeyError(f"unknown node {src!r}")
        dist, _, touched = self.dijkstra_ids(s)
        names = self._names
        return {names[v]: dist[v] for v in touched if v != s}

    def all_pairs_shortest_paths(
        self, node_order: Optional[List[str]] = None
    ) -> Dict[Tuple[str, str], Path]:
        """Lowest-delay path for every connected ordered node pair.

        ``node_order`` reproduces the legacy result-dict ordering (network
        insertion order); defaults to id (sorted-name) order.  Quadratic
        output — gate ingest-scale callers behind analysis rule D108.
        """
        order = node_order if node_order is not None else self._names
        ids = self._ids
        paths: Dict[Tuple[str, str], Path] = {}
        for src in order:
            s = ids[src]
            _, parent, _ = self.dijkstra_ids(s)
            for dst in order:
                t = ids[dst]
                if t != s and parent[t] >= 0:
                    paths[(src, dst)] = self.to_names(
                        self.extract_ids(parent, s, t)
                    )
        return paths

    def k_shortest_paths(self, src: str, dst: str) -> Iterator[Path]:
        """Yen's algorithm over integer ids; yields legacy-identical paths.

        Spur-root delays accumulate incrementally per hop (the legacy
        implementation's O(L²) recomputation, fixed), in the same float
        addition order, so candidate ordering matches ulp for ulp.
        """
        if src == dst:
            raise ValueError("source and destination must differ")
        s = self._ids.get(src)
        if s is None:
            raise KeyError(f"unknown node {src!r}")
        t = self._ids.get(dst, -1)
        if t < 0:
            return
        dist, parent, _ = self.dijkstra_ids(s, t)
        if dist[t] == _INF:
            return
        first = self.extract_ids(parent, s, t)
        yield self.to_names(first)

        n = len(self._names)
        m = len(self._neighbors)
        delays = self._delays
        edge_pos = self._edge_pos
        produced: List[IdPath] = [first]
        candidates: List[Tuple[float, IdPath]] = []
        queued: Set[IdPath] = {first}
        push = heapq.heappush
        pop = heapq.heappop

        while True:
            prev = produced[-1]
            excluded_nodes = bytearray(n)
            root_delay = 0.0
            for i in range(len(prev) - 1):
                spur = prev[i]
                root = prev[: i + 1]
                if i > 0:
                    root_delay += delays[edge_pos[(prev[i - 1], prev[i])]]
                    excluded_nodes[prev[i - 1]] = 1
                excluded_edges = bytearray(m)
                for existing in produced:
                    if len(existing) > i and existing[: i + 1] == root:
                        excluded_edges[
                            edge_pos[(existing[i], existing[i + 1])]
                        ] = 1
                sdist, sparent, _ = self.dijkstra_ids(
                    spur, t, excluded_edges, excluded_nodes
                )
                if sdist[t] == _INF:
                    continue
                spur_path = self.extract_ids(sparent, spur, t)
                candidate = root[:-1] + spur_path
                if candidate in queued:
                    continue
                queued.add(candidate)
                push(candidates, (root_delay + sdist[t], candidate))
            if not candidates:
                return
            _, best = pop(candidates)
            produced.append(best)
            yield self.to_names(best)


def graph_index(network: Network) -> GraphIndex:
    """The network's compiled :class:`GraphIndex`, memoized per topology.

    The cache token is the network's memoized signature *object*: every
    mutation resets ``_signature_memo`` to ``None`` and any later
    recomputation creates a new string, so an ``is`` check detects staleness
    without hashing the topology again — including mutations that restore
    the previous signature value.
    """
    from repro.net.paths import network_signature

    cached: Optional[Tuple[str, GraphIndex]] = getattr(
        network, "_graph_index", None
    )
    token = network._signature_memo
    if cached is not None and token is not None and cached[0] is token:
        return cached[1]
    token = network_signature(network)
    recorder = _recorder()
    if recorder.enabled:
        recorder.counter("index.build")
    with recorder.span("index_build"):
        index = GraphIndex(network)
    network._graph_index = (token, index)
    return index


class LocalityPruner:
    """Landmark-based locality prefilter for k-shortest-path enumeration.

    On ingest-scale graphs, enumerating path alternatives for *every* pair
    is what blows up — not the single shortest path.  The pruner picks a
    deterministic landmark set (farthest-point sampling seeded at the
    highest-degree node), precomputes one delay sweep per landmark, and
    lower-bounds any pair's delay via the triangle inequality::

        d(s, t) >= max_L |d(L, s) - d(L, t)|

    Pairs whose lower bound exceeds ``radius_s`` are declared non-local:
    :class:`~repro.net.paths.KspCache` then serves only their single
    shortest path and bumps the ``ksp.pruned`` metric instead of running
    Yen's.  The bound is exact for duplex (symmetric) topologies — every
    network this stack builds — and pruning never alters which paths are
    returned for admitted pairs, so results at zoo scale (pruner off) are
    untouched; pruned runs are explicitly approximate and labelled so by
    their callers (see ``tm.regions`` for the demand-side analogue).
    """

    def __init__(
        self,
        network: Network,
        radius_s: float,
        n_landmarks: int = 8,
    ) -> None:
        if radius_s < 0:
            raise ValueError(f"radius must be non-negative, got {radius_s}")
        if n_landmarks < 1:
            raise ValueError(f"need >= 1 landmark, got {n_landmarks}")
        index = graph_index(network)
        self._index = index
        self.radius_s = radius_s
        n = index.num_nodes
        landmarks: List[int] = []
        sweeps: List[List[float]] = []
        if n > 0:
            indptr = index._indptr
            first = 0
            best_degree = -1
            for node_id in range(n):
                degree = indptr[node_id + 1] - indptr[node_id]
                if degree > best_degree:
                    best_degree = degree
                    first = node_id
            landmarks.append(first)
            dist, _, _ = index.dijkstra_ids(first)
            sweeps.append(dist)
            while len(landmarks) < min(n_landmarks, n):
                # Farthest-point: maximize the min distance to any chosen
                # landmark; unreachable nodes sort first so disconnected
                # components each get a landmark.  Ties -> lowest id.
                best_id = -1
                best_score = -1.0
                chosen = bytearray(n)
                for node_id in landmarks:
                    chosen[node_id] = 1
                for node_id in range(n):
                    if chosen[node_id]:
                        continue
                    score = min(dist[node_id] for dist in sweeps)
                    if score > best_score:
                        best_score = score
                        best_id = node_id
                if best_id < 0:
                    break
                landmarks.append(best_id)
                dist, _, _ = index.dijkstra_ids(best_id)
                sweeps.append(dist)
        self._landmarks = landmarks
        self._sweeps = sweeps

    @property
    def landmarks(self) -> List[str]:
        """Landmark node names, in selection order."""
        return [self._index.node_name(i) for i in self._landmarks]

    def lower_bound_s(self, src: str, dst: str) -> float:
        """A delay lower bound for the pair; 0.0 when nothing is known."""
        ids = self._index._ids
        s = ids.get(src)
        t = ids.get(dst)
        if s is None or t is None or s == t:
            return 0.0
        bound = 0.0
        for dist in self._sweeps:
            ds = dist[s]
            dt = dist[t]
            if ds == _INF or dt == _INF:
                continue
            gap = ds - dt if ds >= dt else dt - ds
            if gap > bound:
                bound = gap
        return bound

    def admits(self, src: str, dst: str) -> bool:
        """False when the pair is provably farther apart than the radius.

        Unknown names are admitted — error handling belongs to the path
        algorithms, not the prefilter.
        """
        return self.lower_bound_s(src, dst) <= self.radius_s

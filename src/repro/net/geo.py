"""Geographic helpers.

The paper derives link propagation delays from PoP geography (the Topology
Zoo augmented with computed link latencies).  We do the same for the
synthetic zoo: PoPs carry latitude/longitude, and a link's propagation delay
is its great-circle length divided by the speed of light in fibre.
"""

from __future__ import annotations

import math

import numpy as np
import numpy.typing as npt

EARTH_RADIUS_KM = 6371.0

# Speed of light in fibre is roughly two thirds of c; 200,000 km/s is the
# conventional engineering figure for WAN latency estimation.
FIBRE_SPEED_KM_PER_S = 200_000.0

# Real fibre paths are never great circles; a routing factor inflates the
# geodesic distance to account for conduit detours.
DEFAULT_ROUTE_FACTOR = 1.2


def great_circle_km(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Great-circle distance between two points, in kilometres.

    Uses the haversine formula, which is numerically stable for the small
    and medium distances that dominate backbone topologies.
    """
    lat1 = math.radians(lat1_deg)
    lon1 = math.radians(lon1_deg)
    lat2 = math.radians(lat2_deg)
    lon2 = math.radians(lon2_deg)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * (
        math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def great_circle_km_many(
    lat_deg: float,
    lon_deg: float,
    lats_deg: "npt.NDArray[np.float64]",
    lons_deg: "npt.NDArray[np.float64]",
) -> "npt.NDArray[np.float64]":
    """Great-circle distances from one point to many, in kilometres.

    Vectorized haversine for ingest-scale geographic clustering
    (:mod:`repro.tm.regions`), where a Python-loop haversine per
    node x center pair would dominate the aggregation cost.  Matches
    :func:`great_circle_km` to float64 rounding.
    """
    lat1 = math.radians(lat_deg)
    lon1 = math.radians(lon_deg)
    lat2 = np.radians(lats_deg)
    lon2 = np.radians(lons_deg)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + math.cos(lat1) * np.cos(lat2) * (
        np.sin(dlon / 2.0) ** 2
    )
    result: "npt.NDArray[np.float64]" = 2.0 * EARTH_RADIUS_KM * np.arcsin(
        np.minimum(1.0, np.sqrt(a))
    )
    return result


def propagation_delay_s(
    distance_km: float, route_factor: float = DEFAULT_ROUTE_FACTOR
) -> float:
    """One-way propagation delay for a fibre span of the given length.

    ``route_factor`` inflates the geodesic distance to model the fact that
    fibre follows roads and seabed contours rather than great circles.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    if route_factor < 1.0:
        raise ValueError(f"route factor must be >= 1, got {route_factor}")
    return distance_km * route_factor / FIBRE_SPEED_KM_PER_S


def link_delay_s(
    lat1_deg: float,
    lon1_deg: float,
    lat2_deg: float,
    lon2_deg: float,
    route_factor: float = DEFAULT_ROUTE_FACTOR,
    min_delay_s: float = 50e-6,
) -> float:
    """Propagation delay between two PoPs given their coordinates.

    ``min_delay_s`` puts a floor under very short metro links, which in
    practice never have truly zero delay (equipment and tail circuits).
    """
    distance = great_circle_km(lat1_deg, lon1_deg, lat2_deg, lon2_deg)
    return max(min_delay_s, propagation_delay_s(distance, route_factor))

"""Directed-link network model.

A :class:`Network` is a set of named PoPs (:class:`Node`) joined by directed
:class:`Link` objects carrying a propagation delay and a capacity.  Physical
backbone links are full duplex, so the usual way to build a network is
:meth:`Network.add_duplex_link`, which installs one directed link in each
direction.  The distinction matters: the paper's B4 pathology (its Figure 5)
hinges on a link being full eastbound while its westbound twin still has
room.

The model is deliberately small and dependency-free; everything else in the
library (paths, flows, routing LPs) is built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Node:
    """A point of presence.

    Coordinates are optional; the synthetic zoo always provides them so that
    link delays can be derived from geography.
    """

    name: str
    lat_deg: float = 0.0
    lon_deg: float = 0.0


@dataclass(frozen=True)
class Link:
    """A directed link between two PoPs."""

    src: str
    dst: str
    capacity_bps: float
    delay_s: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop link at {self.src!r}")
        if self.capacity_bps <= 0:
            raise ValueError(
                f"link {self.src}->{self.dst}: capacity must be positive, "
                f"got {self.capacity_bps}"
            )
        if self.delay_s < 0:
            raise ValueError(
                f"link {self.src}->{self.dst}: delay must be non-negative, "
                f"got {self.delay_s}"
            )

    @property
    def key(self) -> Tuple[str, str]:
        """The (src, dst) pair identifying this directed link."""
        return (self.src, self.dst)

    def reversed(self) -> "Link":
        """The same link in the opposite direction."""
        return replace(self, src=self.dst, dst=self.src)


class Network:
    """A backbone topology: named nodes plus directed capacitated links.

    The class keeps an adjacency index for fast path algorithms and exposes
    links in a stable, deterministic order (insertion order), which keeps
    all downstream LP formulations and random workloads reproducible.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: Memoized content hash, maintained for
        #: :func:`repro.net.paths.network_signature`; every topology
        #: mutation resets it.
        self._signature_memo: Optional[str] = None
        #: Compiled sparse view cached by :func:`repro.net.index.graph_index`,
        #: as a ``(signature_token, GraphIndex)`` pair.  The token is checked
        #: by *identity* against ``_signature_memo``, so any mutation (which
        #: nulls the memo) invalidates the index even if a later mutation
        #: restores the same signature value.  Excluded from pickles.
        self._graph_index: Optional[Tuple[str, Any]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add a node; re-adding the same name with new data replaces it."""
        self._nodes[node.name] = node
        self._adjacency.setdefault(node.name, [])
        self._signature_memo = None

    def add_link(self, link: Link) -> None:
        """Add one directed link.  Both endpoints must already exist."""
        for endpoint in (link.src, link.dst):
            if endpoint not in self._nodes:
                raise KeyError(f"unknown node {endpoint!r}")
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.src}->{link.dst}")
        self._links[link.key] = link
        self._adjacency[link.src].append(link.dst)
        self._signature_memo = None

    def add_duplex_link(
        self, src: str, dst: str, capacity_bps: float, delay_s: float
    ) -> None:
        """Add a full-duplex physical link as two directed links."""
        self.add_link(Link(src, dst, capacity_bps, delay_s))
        self.add_link(Link(dst, src, capacity_bps, delay_s))

    def remove_link(self, src: str, dst: str) -> None:
        """Remove one directed link."""
        if (src, dst) not in self._links:
            raise KeyError(f"no link {src}->{dst}")
        del self._links[(src, dst)]
        self._adjacency[src].remove(dst)
        self._signature_memo = None

    def remove_duplex_link(self, src: str, dst: str) -> None:
        """Remove both directions of a physical link."""
        self.remove_link(src, dst)
        self.remove_link(dst, src)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def link(self, src: str, dst: str) -> Link:
        return self._links[(src, dst)]

    def links(self) -> Iterator[Link]:
        """All directed links, in insertion order."""
        return iter(self._links.values())

    def duplex_pairs(self) -> List[Tuple[str, str]]:
        """Unordered endpoint pairs that have links in both directions."""
        seen = set()
        pairs = []
        for (src, dst) in self._links:
            canonical = (min(src, dst), max(src, dst))
            if canonical in seen:
                continue
            if (dst, src) in self._links:
                seen.add(canonical)
                pairs.append(canonical)
        return pairs

    def successors(self, name: str) -> List[str]:
        """Nodes reachable over one directed link from ``name``."""
        return list(self._adjacency[name])

    def out_links(self, name: str) -> List[Link]:
        return [self._links[(name, nbr)] for nbr in self._adjacency[name]]

    def in_links(self, name: str) -> List[Link]:
        return [link for link in self._links.values() if link.dst == name]

    def degree(self, name: str) -> int:
        """Out-degree of a node (equals physical degree in duplex networks)."""
        return len(self._adjacency[name])

    def node_pairs(self) -> List[Tuple[str, str]]:
        """All ordered pairs of distinct nodes (every potential aggregate).

        Quadratic: fine at zoo scale, 10^8 entries on an ingest-scale
        graph.  Analysis rule D108 flags call sites so the dense form
        stays a deliberate choice.
        """
        names = self.node_names
        return [(u, v) for u in names for v in names if u != v]

    def total_capacity_bps(self) -> float:
        return sum(link.capacity_bps for link in self._links.values())

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Network":
        clone = Network(name if name is not None else self.name)
        for node in self._nodes.values():
            clone.add_node(node)
        for link in self._links.values():
            clone.add_link(link)
        return clone

    def with_capacity_factor(self, factor: float) -> "Network":
        """A copy with every link capacity multiplied by ``factor``.

        This implements the paper's headroom dial: reserving headroom ``h``
        is the same as routing on the topology scaled by ``1 - h``.
        """
        if factor <= 0:
            raise ValueError(f"capacity factor must be positive, got {factor}")
        clone = Network(self.name)
        for node in self._nodes.values():
            clone.add_node(node)
        for link in self._links.values():
            clone.add_link(replace(link, capacity_bps=link.capacity_bps * factor))
        return clone

    def without_duplex_link(self, src: str, dst: str) -> "Network":
        """A copy with both directions of one physical link removed.

        Used by the APA metric, which asks how traffic would route around a
        congested physical link.
        """
        clone = self.copy()
        clone.remove_link(src, dst)
        if clone.has_link(dst, src):
            clone.remove_link(dst, src)
        return clone

    def subgraph_with_links(self, links: Iterable[Tuple[str, str]]) -> "Network":
        """A copy containing all nodes but only the given directed links."""
        clone = Network(self.name)
        for node in self._nodes.values():
            clone.add_node(node)
        for key in links:
            clone.add_link(self._links[key])
        return clone

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without the compiled graph index.

        The index is a pure cache, cheap to rebuild and potentially large
        (CSR arrays for a 10k-node graph); shipping it to spawn-pool and
        dispatch workers would bloat every task payload for nothing.
        """
        state = dict(self.__dict__)
        state["_graph_index"] = None
        return state

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )

"""Topology mutation: the network growth study (paper §8, Figure 20).

The paper grows hard-to-route networks by repeatedly adding the single
candidate link that yields the greatest LLPD increase, until the link count
has grown by 5%.  This module provides the candidate enumeration and the
greedy growth loop; the LLPD evaluation itself lives in
:mod:`repro.core.metrics`.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.net.geo import great_circle_km, link_delay_s
from repro.net.graph import Network
from repro.net.units import Gbps
from repro.net.zoo import _capacity_for


class ScenarioInfeasible(Exception):
    """A topology perturbation severed a demand pair.

    Removing a bridge link (or an articulation node) can leave a demand
    pair with no path at all; every LP formulation downstream would then
    die deep inside the solver with an opaque error.  Perturbation code
    raises this typed error instead, so scenario generation can skip the
    variant and count it rather than crash mid-fleet.
    """


def with_removed_duplex_link(network: Network, a: str, b: str) -> Network:
    """A copy with both directions of the ``a``/``b`` physical link removed.

    Raises :class:`ScenarioInfeasible` when no such physical link exists —
    a scenario spec referring to a link the topology does not have is a
    spec/topology mismatch, not a solver problem.
    """
    if not network.has_link(a, b) and not network.has_link(b, a):
        raise ScenarioInfeasible(
            f"{network.name}: no physical link {a} -- {b} to fail"
        )
    return network.without_duplex_link(a, b)


def with_removed_node(network: Network, name: str) -> Network:
    """A copy with one node and every link touching it removed."""
    if not network.has_node(name):
        raise ScenarioInfeasible(f"{network.name}: no node {name!r} to fail")
    clone = Network(network.name)
    for node_name in network.node_names:
        if node_name != name:
            clone.add_node(network.node(node_name))
    for link in network.links():
        if link.src != name and link.dst != name:
            clone.add_link(link)
    return clone


def connected_components(network: Network) -> List[List[str]]:
    """Connected components (treating links as undirected), deterministic.

    Components are discovered in node insertion order and listed in node
    insertion order, so the result is stable across hosts and hash seeds.
    """
    undirected: Dict[str, List[str]] = {n: [] for n in network.node_names}
    for link in network.links():
        undirected[link.src].append(link.dst)
    seen: Dict[str, int] = {}
    components: List[List[str]] = []
    for start in network.node_names:
        if start in seen:
            continue
        component: List[str] = []
        queue = deque([start])
        seen[start] = len(components)
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in undirected[node]:
                if neighbor not in seen:
                    seen[neighbor] = len(components)
                    queue.append(neighbor)
        components.append(sorted(component))
    return components


def ensure_demand_connectivity(
    network: Network, pairs: Iterable[Tuple[str, str]]
) -> None:
    """Raise :class:`ScenarioInfeasible` if any demand pair is severed.

    One whole-graph BFS decides the common case (still connected =>
    every pair fine); only on a split are the demand pairs checked
    against the component labelling, and the first severed pair (in the
    given order) names the failure deterministically.
    """
    components = connected_components(network)
    if len(components) <= 1:
        return
    label: Dict[str, int] = {}
    for index, component in enumerate(components):
        for node in component:
            label[node] = index
    for src, dst in pairs:
        if src not in label or dst not in label:
            raise ScenarioInfeasible(
                f"{network.name}: demand endpoint removed ({src} -> {dst})"
            )
        if label[src] != label[dst]:
            raise ScenarioInfeasible(
                f"{network.name}: demand pair {src} -> {dst} disconnected"
            )


def candidate_links(
    network: Network, max_candidates: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[Tuple[str, str]]:
    """Unordered node pairs with no existing physical link.

    When ``max_candidates`` is given, the geographically shortest candidates
    are preferred (short links are both the cheapest to build and the ones
    most likely to add *low-latency* diversity); ties are broken randomly
    via ``rng`` to avoid systematic bias.
    """
    pairs = [
        (a, b)
        for a, b in itertools.combinations(network.node_names, 2)
        if not network.has_link(a, b) and not network.has_link(b, a)
    ]
    if max_candidates is None or len(pairs) <= max_candidates:
        return pairs
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(pairs))
    pairs = [pairs[i] for i in order]
    pairs.sort(key=lambda pair: _pair_distance_km(network, *pair))
    return pairs[:max_candidates]


def _pair_distance_km(network: Network, a: str, b: str) -> float:
    na, nb = network.node(a), network.node(b)
    return great_circle_km(na.lat_deg, na.lon_deg, nb.lat_deg, nb.lon_deg)


def with_added_link(
    network: Network, a: str, b: str, capacity_bps: Optional[float] = None
) -> Network:
    """A copy of the network with one new duplex link between ``a``/``b``.

    Capacity defaults to the class a link of that length would get in the
    zoo generator; delay comes from geography like every other link.
    """
    clone = network.copy()
    na, nb = network.node(a), network.node(b)
    delay = link_delay_s(na.lat_deg, na.lon_deg, nb.lat_deg, nb.lon_deg)
    if capacity_bps is None:
        distance = _pair_distance_km(network, a, b)
        capacity_bps = _capacity_for(distance, np.random.default_rng(0))
        capacity_bps = max(capacity_bps, Gbps(40))
    clone.add_duplex_link(a, b, capacity_bps, delay)
    return clone


def grow_by_ldr_objective(
    network: Network,
    forecast_tm,
    growth_fraction: float = 0.05,
    max_candidates: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Network, List[Tuple[str, str]]]:
    """Greedy growth scored by the latency-optimal objective (paper §8).

    "Where such a routing scheme is used, if forecast traffic matrices are
    also available, then the optimized value of LDR's objective in Figure
    12 provides a better metric to evaluate the impact of the adding of
    new links on latency" — LLPD can even *drop* when a useful but
    non-redundant link is added (the paper's transatlantic example), while
    the realized flow delay always tells the truth.

    Each candidate link is scored by the total flow-weighted delay of the
    latency-optimal placement of ``forecast_tm`` on the grown topology;
    the candidate with the lowest delay wins each round.
    """
    from repro.routing.optimal import LatencyOptimalRouting

    if not 0.0 < growth_fraction <= 1.0:
        raise ValueError(f"growth fraction must be in (0, 1], got {growth_fraction}")
    rng = rng or np.random.default_rng(0)
    n_physical = len(network.duplex_pairs())
    n_to_add = max(1, int(round(growth_fraction * n_physical)))
    current = network
    added: List[Tuple[str, str]] = []

    def realized_delay(net: Network) -> float:
        placement = LatencyOptimalRouting().place(net, forecast_tm)
        return placement.total_weighted_delay_s()

    for _ in range(n_to_add):
        candidates = candidate_links(current, max_candidates, rng)
        if not candidates:
            break
        best_pair = None
        best_delay = realized_delay(current)
        for a, b in candidates:
            trial = with_added_link(current, a, b)
            delay = realized_delay(trial)
            if delay < best_delay - 1e-12:
                best_pair = (a, b)
                best_delay = delay
        if best_pair is None:
            break
        current = with_added_link(current, *best_pair)
        added.append(best_pair)
    return current, added


def grow_by_llpd(
    network: Network,
    score: Callable[[Network], float],
    growth_fraction: float = 0.05,
    max_candidates: int = 40,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Network, List[Tuple[str, str]]]:
    """Greedily add links maximizing ``score`` until links grow by 5%.

    ``score`` is typically :func:`repro.core.metrics.llpd`.  Returns the
    grown network and the list of added (a, b) pairs.  This reproduces the
    paper's growth procedure: "Of all the links to be possibly added, we add
    the one that gives the greatest increase in LLPD.  We then repeat this
    process until the number of links has increased by 5%."
    """
    if not 0.0 < growth_fraction <= 1.0:
        raise ValueError(f"growth fraction must be in (0, 1], got {growth_fraction}")
    rng = rng or np.random.default_rng(0)
    n_physical = len(network.duplex_pairs())
    n_to_add = max(1, int(round(growth_fraction * n_physical)))
    current = network
    added: List[Tuple[str, str]] = []
    for _ in range(n_to_add):
        candidates = candidate_links(current, max_candidates, rng)
        if not candidates:
            break
        best_pair = None
        best_score = score(current)
        for a, b in candidates:
            trial = with_added_link(current, a, b)
            trial_score = score(trial)
            if best_pair is None or trial_score > best_score:
                best_pair = (a, b)
                best_score = trial_score
        if best_pair is None:
            break
        current = with_added_link(current, *best_pair)
        added.append(best_pair)
    return current, added

"""Unit helpers.

The library uses SI units everywhere: capacities and traffic rates in bits
per second, delays in seconds, distances in kilometres.  These helpers exist
so call sites can say ``Gbps(10)`` instead of ``10e9`` and stay readable.
"""

MILLISECOND = 1e-3
MICROSECOND = 1e-6


def Kbps(value: float) -> float:
    """Kilobits per second expressed in bits per second."""
    return value * 1e3


def Mbps(value: float) -> float:
    """Megabits per second expressed in bits per second."""
    return value * 1e6


def Gbps(value: float) -> float:
    """Gigabits per second expressed in bits per second."""
    return value * 1e9


def Tbps(value: float) -> float:
    """Terabits per second expressed in bits per second."""
    return value * 1e12


def ms(value: float) -> float:
    """Milliseconds expressed in seconds."""
    return value * MILLISECOND


def to_ms(seconds: float) -> float:
    """Seconds expressed in milliseconds."""
    return seconds / MILLISECOND


def to_gbps(bps: float) -> float:
    """Bits per second expressed in gigabits per second."""
    return bps / 1e9

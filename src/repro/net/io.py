"""Topology serialization: JSON round-trip and Topology Zoo GraphML import.

The paper's evaluation runs on the Internet Topology Zoo, distributed as
GraphML files with ``Latitude``/``Longitude`` node attributes.  Those files
are not bundled here, but users who have them can load them directly with
:func:`from_graphml` — link delays are derived from PoP geography exactly
as for the synthetic zoo, and capacities from the ``LinkSpeedRaw``
attribute when present.

The JSON format is this library's own: a faithful round-trip of the
:class:`~repro.net.graph.Network` model for saving generated or mutated
topologies.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.net.geo import link_delay_s
from repro.net.graph import Link, Network, Node
from repro.net.units import Gbps

JSON_FORMAT_VERSION = 1


def to_json(network: Network) -> str:
    """Serialize a network (nodes, directed links) to a JSON string."""
    payload = {
        "format": "repro-network",
        "version": JSON_FORMAT_VERSION,
        "name": network.name,
        "nodes": [
            {
                "name": node.name,
                "lat_deg": node.lat_deg,
                "lon_deg": node.lon_deg,
            }
            for node in (network.node(n) for n in network.node_names)
        ],
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "capacity_bps": link.capacity_bps,
                "delay_s": link.delay_s,
            }
            for link in network.links()
        ],
    }
    return json.dumps(payload, indent=2)


def from_json(text: str) -> Network:
    """Reconstruct a network from :func:`to_json` output."""
    payload = json.loads(text)
    if payload.get("format") != "repro-network":
        raise ValueError("not a repro network document")
    if payload.get("version") != JSON_FORMAT_VERSION:
        raise ValueError(f"unsupported version {payload.get('version')!r}")
    network = Network(payload.get("name", "network"))
    for node in payload["nodes"]:
        network.add_node(
            Node(node["name"], node.get("lat_deg", 0.0), node.get("lon_deg", 0.0))
        )
    for link in payload["links"]:
        network.add_link(
            Link(
                link["src"],
                link["dst"],
                link["capacity_bps"],
                link["delay_s"],
            )
        )
    return network


def save(network: Network, path: str) -> None:
    """Write the network's JSON form to a file."""
    with open(path, "w") as handle:
        handle.write(to_json(network))


def load(path: str) -> Network:
    """Read a network from a JSON file.

    Understands both this library's ``repro-network`` documents and the
    external distances+bandwidth format (a top-level ``distances``
    mapping), which is routed to :mod:`repro.net.ingest` — so topology
    files from either world load through one entry point.
    """
    import os

    with open(path) as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a JSON network document: {exc}")
    if (
        isinstance(payload, dict)
        and payload.get("format") != "repro-network"
        and "distances" in payload
    ):
        from repro.net.ingest import network_from_distances

        stem = os.path.splitext(os.path.basename(path))[0]
        return network_from_distances(payload, name=stem)
    return from_json(text)


def from_graphml(
    path: str,
    default_capacity_bps: float = Gbps(10),
    name: Optional[str] = None,
) -> Network:
    """Load a Topology Zoo GraphML file.

    Nodes without coordinates are dropped (as are their links), matching
    common practice with the Zoo's partially-annotated files.  Duplicate
    edges between the same PoP pair have their capacities summed into one
    duplex link.  Delays come from great-circle geography; capacities from
    ``LinkSpeedRaw`` (bits/s) when present, else ``default_capacity_bps``.
    """
    import networkx as nx

    graph = nx.read_graphml(path)
    network = Network(name or str(graph.graph.get("Network", "graphml")))

    def coordinates(attrs) -> Optional[tuple]:
        lat, lon = attrs.get("Latitude"), attrs.get("Longitude")
        if lat is None or lon is None:
            return None
        return float(lat), float(lon)

    kept = {}
    for node_id, attrs in graph.nodes(data=True):
        coords = coordinates(attrs)
        if coords is None:
            continue
        label = str(attrs.get("label", node_id))
        # Disambiguate duplicate labels (the Zoo has a few).
        unique = label
        suffix = 1
        while network.has_node(unique):
            suffix += 1
            unique = f"{label}#{suffix}"
        network.add_node(Node(unique, coords[0], coords[1]))
        kept[node_id] = unique

    capacities: dict = {}
    for src_id, dst_id, attrs in graph.edges(data=True):
        if src_id not in kept or dst_id not in kept or src_id == dst_id:
            continue
        a, b = kept[src_id], kept[dst_id]
        key = (min(a, b), max(a, b))
        speed = attrs.get("LinkSpeedRaw")
        capacity = float(speed) if speed else default_capacity_bps
        capacities[key] = capacities.get(key, 0.0) + capacity

    for (a, b), capacity in capacities.items():
        na, nb = network.node(a), network.node(b)
        delay = link_delay_s(na.lat_deg, na.lon_deg, nb.lat_deg, nb.lon_deg)
        network.add_duplex_link(a, b, capacity, delay)
    return network

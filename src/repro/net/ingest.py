"""Internet-scale topology ingestion.

Two ways to get graphs two orders larger than the synthetic zoo:

* **Distances+bandwidth JSON** (the Mininet-style format of SNIPPETS §1):
  a document with a ``distances`` mapping (kilometres between directly
  connected nodes) and an optional ``bandwidth`` mapping (link capacity per
  connection).  Only directly linked node pairs appear; the topology is
  reconstructed from that connection data.  We additionally understand
  optional ``coordinates`` (per-node ``[lat, lon]``) and ``delays`` (exact
  per-link seconds, written by :func:`to_distances_json` so a repro-built
  network round-trips losslessly — kilometre-derived delays alone would
  drift by the route-factor and minimum-delay floor).

* **Seeded synthesis** of Internet-like graphs from power-law degree
  distributions, à la the CAIDA AS-graph derivations of SNIPPETS §2: a
  configuration-model wiring of sampled degrees, repaired to a single
  connected component, with continent-clustered geography so link delays
  are realistic.  Fully deterministic for a given seed.

Both emit ordinary :class:`~repro.net.graph.Network` objects (all links
full duplex), so everything downstream — the integer-indexed sparse core,
KSP caches, LPs, the experiment engine — works unchanged.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.net.geo import (
    DEFAULT_ROUTE_FACTOR,
    FIBRE_SPEED_KM_PER_S,
    great_circle_km,
    propagation_delay_s,
)
from repro.net.graph import Network, Node
from repro.net.units import Gbps
from repro.net.zoo import CONTINENTS, _capacity_for

#: Floor under parsed link delays (mirrors :func:`repro.net.geo.link_delay_s`):
#: truly zero-delay links do not exist and would make every Dijkstra
#: comparison a tie.
MIN_LINK_DELAY_S = 50e-6

#: Default capacity for connections the document lists no bandwidth for.
DEFAULT_CAPACITY_BPS = Gbps(10)


# ----------------------------------------------------------------------
# Distances+bandwidth JSON
# ----------------------------------------------------------------------
def network_from_distances(
    payload: Mapping[str, Any],
    name: str = "ingest",
    default_capacity_bps: float = DEFAULT_CAPACITY_BPS,
    route_factor: float = DEFAULT_ROUTE_FACTOR,
    bandwidth_unit_bps: float = 1.0,
) -> Network:
    """Reconstruct a :class:`Network` from a distances+bandwidth document.

    ``distances`` holds kilometres between directly connected nodes; each
    connection becomes one full-duplex link.  A connection listed in both
    directions must agree on its values.  ``bandwidth`` values are scaled
    by ``bandwidth_unit_bps`` (1.0 = the document is already in bits/s);
    connections without one get ``default_capacity_bps``.  Construction is
    deterministic: nodes in sorted-name order, links in sorted canonical
    (min, max) pair order.
    """
    distances = payload.get("distances")
    if not isinstance(distances, Mapping):
        raise ValueError("not a distances+bandwidth document (no 'distances')")
    bandwidth = payload.get("bandwidth") or {}
    coordinates = payload.get("coordinates") or {}
    delays = payload.get("delays") or {}

    node_set = set(coordinates)
    for src, row in distances.items():
        node_set.add(src)
        node_set.update(row)

    network = Network(str(payload.get("name") or name))
    for node_name in sorted(node_set):
        coord = coordinates.get(node_name)
        if coord is not None:
            lat, lon = float(coord[0]), float(coord[1])
        else:
            lat, lon = 0.0, 0.0
        network.add_node(Node(str(node_name), lat, lon))

    pairs: Dict[Tuple[str, str], float] = {}
    for src in sorted(distances):
        row = distances[src]
        if not isinstance(row, Mapping):
            raise ValueError(f"distances[{src!r}] is not a mapping")
        for dst in sorted(row):
            if src == dst:
                raise ValueError(f"self-loop distance at {src!r}")
            km = float(row[dst])
            if km < 0:
                raise ValueError(f"negative distance {src}-{dst}: {km}")
            key = (src, dst) if src < dst else (dst, src)
            if key in pairs:
                if pairs[key] != km:
                    raise ValueError(
                        f"conflicting distances for {key[0]}-{key[1]}: "
                        f"{pairs[key]} vs {km}"
                    )
                continue
            pairs[key] = km

    def _directed(table: Mapping[str, Any], a: str, b: str) -> Optional[float]:
        row = table.get(a)
        if isinstance(row, Mapping) and b in row:
            return float(row[b])
        return None

    for (a, b), km in pairs.items():
        forward = _directed(bandwidth, a, b)
        backward = _directed(bandwidth, b, a)
        if forward is not None and backward is not None and forward != backward:
            raise ValueError(
                f"conflicting bandwidth for {a}-{b}: {forward} vs {backward}"
            )
        raw = forward if forward is not None else backward
        capacity = (
            raw * bandwidth_unit_bps if raw is not None else default_capacity_bps
        )
        exact_fw = _directed(delays, a, b)
        exact_bw = _directed(delays, b, a)
        if exact_fw is not None and exact_bw is not None and exact_fw != exact_bw:
            raise ValueError(
                f"conflicting delays for {a}-{b}: {exact_fw} vs {exact_bw}"
            )
        exact = exact_fw if exact_fw is not None else exact_bw
        if exact is not None:
            delay = float(exact)
        else:
            delay = max(MIN_LINK_DELAY_S, propagation_delay_s(km, route_factor))
        network.add_duplex_link(a, b, capacity, delay)
    return network


def from_distances_json(text: str, name: str = "ingest") -> Network:
    """Parse a distances+bandwidth JSON string into a :class:`Network`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("not a distances+bandwidth document")
    return network_from_distances(payload, name=name)


def load_distances(path: "os.PathLike[str] | str") -> Network:
    """Load a distances+bandwidth JSON file.

    The network is named after the file (sans extension) unless the
    document carries its own ``name``.
    """
    path = os.fspath(path)
    with open(path) as handle:
        text = handle.read()
    stem = os.path.splitext(os.path.basename(path))[0]
    return from_distances_json(text, name=stem)


def distances_jsonable(network: Network) -> Dict[str, Any]:
    """The distances+bandwidth document for a (duplex) network.

    Every physical link must exist in both directions with matching
    capacity and delay — the format has no way to express asymmetry.
    Kilometre distances are back-derived from delays for interoperability
    with external readers; the exact per-link ``delays`` are included so
    :func:`network_from_distances` round-trips the network losslessly
    (same signature).
    """
    duplex = network.duplex_pairs()
    if 2 * len(duplex) != network.num_links:
        raise ValueError(
            f"network {network.name!r} has simplex links; the "
            f"distances+bandwidth format only describes duplex topologies"
        )
    distances: Dict[str, Dict[str, float]] = {}
    bandwidth: Dict[str, Dict[str, float]] = {}
    delays: Dict[str, Dict[str, float]] = {}
    for a, b in sorted(duplex):
        forward = network.link(a, b)
        backward = network.link(b, a)
        if (
            forward.capacity_bps != backward.capacity_bps
            or forward.delay_s != backward.delay_s
        ):
            raise ValueError(
                f"asymmetric duplex link {a}-{b}; the distances+bandwidth "
                f"format only describes symmetric links"
            )
        km = forward.delay_s * FIBRE_SPEED_KM_PER_S / DEFAULT_ROUTE_FACTOR
        distances.setdefault(a, {})[b] = km
        bandwidth.setdefault(a, {})[b] = forward.capacity_bps
        delays.setdefault(a, {})[b] = forward.delay_s
    coordinates = {
        name: [network.node(name).lat_deg, network.node(name).lon_deg]
        for name in sorted(network.node_names)
    }
    return {
        "name": network.name,
        "distances": distances,
        "bandwidth": bandwidth,
        "delays": delays,
        "coordinates": coordinates,
    }


def to_distances_json(network: Network) -> str:
    """Serialize a duplex network as a distances+bandwidth JSON string."""
    return json.dumps(distances_jsonable(network), indent=2)


# ----------------------------------------------------------------------
# CAIDA-style synthesis from degree distributions
# ----------------------------------------------------------------------
def synthesize_internet_like(
    n_nodes: int,
    seed: int,
    degree_exponent: float = 2.1,
    min_degree: int = 2,
    max_degree: Optional[int] = None,
    name: Optional[str] = None,
) -> Network:
    """A seeded Internet-like topology from a power-law degree distribution.

    Degrees are sampled from ``P(k) ∝ k^-degree_exponent`` on
    ``[min_degree, max_degree]`` (default cap ``≈ sqrt(n)``, the usual
    AS-graph cutoff), wired with a configuration model (self-loops and
    duplicate pairs discarded), and repaired to one connected component by
    attaching each minor component's best-connected member to the giant
    component's.  Nodes are placed on continent-clustered coordinates so
    delays follow real geography; capacities follow the zoo's
    distance-based provisioning classes.  Deterministic for a given
    ``(n_nodes, seed, ...)``; node names are zero-padded (``as0042``) so
    sorted-name order equals construction order.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    if min_degree < 1:
        raise ValueError(f"min degree must be >= 1, got {min_degree}")
    if degree_exponent <= 0:
        raise ValueError(
            f"degree exponent must be positive, got {degree_exponent}"
        )
    if max_degree is None:
        max_degree = max(min_degree + 1, int(round(n_nodes**0.5)))
    if max_degree < min_degree:
        raise ValueError(
            f"max degree {max_degree} below min degree {min_degree}"
        )
    rng = np.random.default_rng(seed)

    # Sampled degree sequence with an even stub total.
    ks = np.arange(min_degree, max_degree + 1, dtype=np.int64)
    weights = ks.astype(np.float64) ** (-degree_exponent)
    weights /= weights.sum()
    degrees = rng.choice(ks, size=n_nodes, p=weights)
    if int(degrees.sum()) % 2 == 1:
        degrees[int(np.argmax(degrees))] += 1

    # Configuration-model wiring: shuffle stubs, pair consecutively, drop
    # self-loops and duplicates (negligible mass at sqrt-n degree cap).
    stubs = np.repeat(np.arange(n_nodes, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    stub_list = stubs.tolist()
    pair_seen = set()
    pair_order: List[Tuple[int, int]] = []
    for i in range(0, len(stub_list) - 1, 2):
        a = stub_list[i]
        b = stub_list[i + 1]
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        if key in pair_seen:
            continue
        pair_seen.add(key)
        pair_order.append(key)

    # Connectivity repair: attach every minor component to the giant one.
    adjacency: List[List[int]] = [[] for _ in range(n_nodes)]
    for a, b in pair_order:
        adjacency[a].append(b)
        adjacency[b].append(a)
    component = [-1] * n_nodes
    components: List[List[int]] = []
    for start in range(n_nodes):
        if component[start] >= 0:
            continue
        label = len(components)
        members = [start]
        component[start] = label
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nbr in adjacency[node]:
                if component[nbr] < 0:
                    component[nbr] = label
                    members.append(nbr)
                    frontier.append(nbr)
        members.sort()
        components.append(members)
    if len(components) > 1:
        def _hub(members: List[int]) -> int:
            best = members[0]
            for node in members:
                if len(adjacency[node]) > len(adjacency[best]):
                    best = node
            return best

        components.sort(key=lambda members: (-len(members), members[0]))
        giant_hub = _hub(components[0])
        for members in components[1:]:
            hub = _hub(members)
            key = (hub, giant_hub) if hub < giant_hub else (giant_hub, hub)
            if key not in pair_seen:
                pair_seen.add(key)
                pair_order.append(key)
                adjacency[key[0]].append(key[1])
                adjacency[key[1]].append(key[0])

    # Continent-clustered geography (AS-graph realism: most links are
    # intra-continental, a few are submarine long-hauls).
    region_weights = np.asarray([0.3, 0.3, 0.25, 0.15], dtype=np.float64)
    region_ids = rng.choice(
        len(CONTINENTS), size=n_nodes, p=region_weights
    ).tolist()
    lat_u = rng.uniform(0.0, 1.0, size=n_nodes).tolist()
    lon_u = rng.uniform(0.0, 1.0, size=n_nodes).tolist()

    width = len(str(n_nodes - 1))
    network = Network(name if name is not None else f"internet-like-{n_nodes}")
    node_names: List[str] = []
    for i in range(n_nodes):
        region = CONTINENTS[region_ids[i]]
        lat = region.lat_min + lat_u[i] * (region.lat_max - region.lat_min)
        lon = region.lon_min + lon_u[i] * (region.lon_max - region.lon_min)
        node_name = f"as{i:0{width}d}"
        node_names.append(node_name)
        network.add_node(Node(node_name, lat, lon))
    for a, b in pair_order:
        node_a = network.node(node_names[a])
        node_b = network.node(node_names[b])
        distance = great_circle_km(
            node_a.lat_deg, node_a.lon_deg, node_b.lat_deg, node_b.lon_deg
        )
        delay = max(MIN_LINK_DELAY_S, propagation_delay_s(distance))
        network.add_duplex_link(
            node_names[a], node_names[b], _capacity_for(distance, rng), delay
        )
    return network


def degree_histogram(network: Network) -> Dict[int, int]:
    """Out-degree histogram (degree -> node count), ascending by degree."""
    counts: Dict[int, int] = {}
    for node_name in network.node_names:
        degree = network.degree(node_name)
        counts[degree] = counts.get(degree, 0) + 1
    return {degree: counts[degree] for degree in sorted(counts)}

"""Network substrate: graph model, geography, paths, flows and the topology zoo.

This subpackage provides everything the paper assumes as given about a
network: a directed-link graph annotated with propagation delays and
capacities (:mod:`repro.net.graph`), geographic helpers used to derive
realistic link delays (:mod:`repro.net.geo`), shortest-path and k-shortest
path machinery with caching (:mod:`repro.net.paths`), max-flow/min-cut
(:mod:`repro.net.flows`), a synthetic stand-in for the Internet Topology Zoo
(:mod:`repro.net.zoo`) and topology mutation utilities used by the network
growth study (:mod:`repro.net.mutate`).
"""

from repro.net.graph import Link, Network, Node
from repro.net.geo import great_circle_km, propagation_delay_s
from repro.net.paths import (
    KspCache,
    KspCacheMismatchError,
    all_pairs_shortest_paths,
    k_shortest_paths,
    ksp_cache_path,
    network_signature,
    path_bottleneck_bps,
    path_delay_s,
    path_links,
    shortest_path,
)
from repro.net.flows import max_flow_bps, min_cut_bps

__all__ = [
    "Link",
    "Network",
    "Node",
    "great_circle_km",
    "propagation_delay_s",
    "KspCache",
    "KspCacheMismatchError",
    "all_pairs_shortest_paths",
    "k_shortest_paths",
    "ksp_cache_path",
    "network_signature",
    "path_bottleneck_bps",
    "path_delay_s",
    "path_links",
    "shortest_path",
    "max_flow_bps",
    "min_cut_bps",
]

"""Synthetic topology zoo.

The paper evaluates on 116 real backbones from the Internet Topology Zoo
(with >10 ms diameter).  That dataset is not redistributable here, so this
module generates a deterministic synthetic zoo spanning the same structural
classes the paper identifies:

* trees and stars — low LLPD ("an LLPD of close to zero usually indicates a
  more tree-like network");
* wide rings — mid-range LLPD ("the latency cost of going the wrong way
  around the ring can be high");
* two-dimensional grids — high LLPD (the paper's GTS Central Europe
  example);
* multi-continent meshes — high LLPD (the paper's Cogent example);
* cliques — the "overlay" networks that show up as horizontal lines in the
  paper's Figure 1.

All networks have geographic PoPs and link delays computed from great-circle
distances (as the paper does via REPETITA-computed latencies), and spans
large enough that network diameter exceeds 10 ms.  Every generator takes a
``numpy.random.Generator`` so the zoo is fully reproducible.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.geo import link_delay_s
from repro.net.graph import Network, Node
from repro.net.units import Gbps


@dataclass(frozen=True)
class Region:
    """A rectangular geographic region PoPs can be placed in."""

    name: str
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def sample(self, rng: np.random.Generator, n: int) -> List[Tuple[float, float]]:
        lats = rng.uniform(self.lat_min, self.lat_max, size=n)
        lons = rng.uniform(self.lon_min, self.lon_max, size=n)
        return list(zip(lats.tolist(), lons.tolist()))


EUROPE = Region("europe", 40.0, 58.0, -8.0, 25.0)
CENTRAL_EUROPE = Region("central-europe", 46.0, 54.0, 8.0, 22.0)
NORTH_AMERICA = Region("north-america", 30.0, 48.0, -122.0, -72.0)
ASIA = Region("asia", 10.0, 45.0, 75.0, 140.0)
SOUTH_AMERICA = Region("south-america", -35.0, 5.0, -75.0, -40.0)
CONTINENTS = [EUROPE, NORTH_AMERICA, ASIA, SOUTH_AMERICA]


def _capacity_for(distance_km: float, rng: np.random.Generator) -> float:
    """Pick a realistic capacity class for a link of the given length.

    Long-haul spans are usually provisioned fatter than metro tails, which
    matters to APA: a thin link is not a viable alternate for a fat path.
    """
    if distance_km > 3000.0:
        choices = [Gbps(100), Gbps(400)]
    elif distance_km > 800.0:
        choices = [Gbps(40), Gbps(100)]
    else:
        choices = [Gbps(10), Gbps(40), Gbps(100)]
    return float(rng.choice(choices))


def _add_geo_link(
    network: Network,
    a: str,
    b: str,
    rng: np.random.Generator,
    capacity_bps: Optional[float] = None,
) -> None:
    na, nb = network.node(a), network.node(b)
    delay = link_delay_s(na.lat_deg, na.lon_deg, nb.lat_deg, nb.lon_deg)
    if capacity_bps is None:
        from repro.net.geo import great_circle_km

        distance = great_circle_km(na.lat_deg, na.lon_deg, nb.lat_deg, nb.lon_deg)
        capacity_bps = _capacity_for(distance, rng)
    network.add_duplex_link(a, b, capacity_bps, delay)


def _place_nodes(
    network: Network, region: Region, n: int, rng: np.random.Generator
) -> List[str]:
    names = [f"{region.name}-{i}" for i in range(n)]
    for name, (lat, lon) in zip(names, region.sample(rng, n)):
        network.add_node(Node(name, lat, lon))
    return names


def _geo_distance(network: Network, a: str, b: str) -> float:
    from repro.net.geo import great_circle_km

    na, nb = network.node(a), network.node(b)
    return great_circle_km(na.lat_deg, na.lon_deg, nb.lat_deg, nb.lon_deg)


def _euclidean_spanning_tree(
    network: Network, names: Sequence[str], rng: np.random.Generator
) -> None:
    """Connect nodes with a greedy geographic spanning tree.

    Each unconnected node attaches to its nearest already-connected node,
    which mimics how backbones grow organically from an initial core.
    """
    connected = [names[0]]
    for name in names[1:]:
        nearest = min(connected, key=lambda c: _geo_distance(network, name, c))
        _add_geo_link(network, name, nearest, rng)
        connected.append(name)


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
def tree_network(
    n: int, rng: np.random.Generator, region: Region = NORTH_AMERICA, name: str = ""
) -> Network:
    """A random geographic tree: the low-LLPD end of the zoo."""
    network = Network(name or f"tree-{n}")
    names = _place_nodes(network, region, n, rng)
    _euclidean_spanning_tree(network, names, rng)
    return network


def star_network(
    n: int, rng: np.random.Generator, region: Region = EUROPE, name: str = ""
) -> Network:
    """A hub-and-spoke network: zero alternate paths anywhere."""
    network = Network(name or f"star-{n}")
    names = _place_nodes(network, region, n, rng)
    hub = names[0]
    for leaf in names[1:]:
        _add_geo_link(network, hub, leaf, rng)
    return network


def ring_network(
    n: int, rng: np.random.Generator, region: Region = EUROPE, name: str = ""
) -> Network:
    """A wide geographic ring: mid-range LLPD.

    PoPs are sorted by angle around the region centroid so the ring follows
    geography instead of crossing itself, making the "wrong way around"
    detour genuinely long, as the paper describes.
    """
    network = Network(name or f"ring-{n}")
    names = _place_nodes(network, region, n, rng)
    center_lat = sum(network.node(x).lat_deg for x in names) / n
    center_lon = sum(network.node(x).lon_deg for x in names) / n
    names.sort(
        key=lambda x: math.atan2(
            network.node(x).lat_deg - center_lat, network.node(x).lon_deg - center_lon
        )
    )
    for i, name_i in enumerate(names):
        _add_geo_link(network, name_i, names[(i + 1) % n], rng)
    return network


def ladder_network(
    n_rungs: int, rng: np.random.Generator, region: Region = NORTH_AMERICA, name: str = ""
) -> Network:
    """Two parallel east-west chains with rungs: modest path diversity."""
    network = Network(name or f"ladder-{n_rungs}")
    lat_north = (region.lat_min + region.lat_max) / 2 + 4.0
    lat_south = lat_north - 8.0
    lons = np.linspace(region.lon_min, region.lon_max, n_rungs)
    for i, lon in enumerate(lons):
        network.add_node(Node(f"north-{i}", lat_north, float(lon)))
        network.add_node(Node(f"south-{i}", lat_south, float(lon)))
    for i in range(n_rungs):
        _add_geo_link(network, f"north-{i}", f"south-{i}", rng)
        if i + 1 < n_rungs:
            _add_geo_link(network, f"north-{i}", f"north-{i+1}", rng)
            _add_geo_link(network, f"south-{i}", f"south-{i+1}", rng)
    return network


def grid_network(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    region: Region = CENTRAL_EUROPE,
    diagonal_fraction: float = 0.15,
    name: str = "",
) -> Network:
    """A two-dimensional grid with a sprinkle of diagonals: high LLPD.

    This is the paper's "well interconnected, resembling a two-dimensional
    grid" class, exemplified by GTS Central Europe.
    """
    network = Network(name or f"grid-{rows}x{cols}")
    lats = np.linspace(region.lat_max, region.lat_min, rows)
    lons = np.linspace(region.lon_min, region.lon_max, cols)
    for r in range(rows):
        for c in range(cols):
            jitter_lat = float(rng.uniform(-0.3, 0.3))
            jitter_lon = float(rng.uniform(-0.3, 0.3))
            network.add_node(
                Node(f"n{r}-{c}", float(lats[r]) + jitter_lat, float(lons[c]) + jitter_lon)
            )
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                _add_geo_link(network, f"n{r}-{c}", f"n{r}-{c+1}", rng)
            if r + 1 < rows:
                _add_geo_link(network, f"n{r}-{c}", f"n{r+1}-{c}", rng)
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_fraction
            ):
                _add_geo_link(network, f"n{r}-{c}", f"n{r+1}-{c+1}", rng)
    return network


def mesh_network(
    n: int,
    rng: np.random.Generator,
    region: Region = EUROPE,
    neighbors: int = 3,
    long_link_fraction: float = 0.08,
    name: str = "",
) -> Network:
    """A geographic mesh: spanning tree + nearest-neighbour densification.

    ``neighbors`` controls density (and therefore LLPD); ``2`` gives sparse,
    barely-redundant networks, ``4``-``5`` approaches grid-like diversity.
    """
    network = Network(name or f"mesh-{n}")
    names = _place_nodes(network, region, n, rng)
    _euclidean_spanning_tree(network, names, rng)
    for node in names:
        others = sorted(
            (other for other in names if other != node),
            key=lambda other: _geo_distance(network, node, other),
        )
        added = 0
        for other in others:
            if added >= neighbors:
                break
            if network.has_link(node, other):
                # Existing adjacency counts toward the density target.
                added += 1
                continue
            _add_geo_link(network, node, other, rng)
            added += 1
    # A few random long links mimic express routes.
    n_long = max(0, int(long_link_fraction * n))
    for _ in range(n_long):
        a, b = rng.choice(names, size=2, replace=False)
        if not network.has_link(str(a), str(b)):
            _add_geo_link(network, str(a), str(b), rng)
    return network


def clique_network(
    n: int, rng: np.random.Generator, region: Region = NORTH_AMERICA, name: str = ""
) -> Network:
    """A full mesh: the overlay networks of the paper's Figure 1."""
    network = Network(name or f"clique-{n}")
    names = _place_nodes(network, region, n, rng)
    for a, b in itertools.combinations(names, 2):
        _add_geo_link(network, a, b, rng)
    return network


def multi_continent_network(
    rng: np.random.Generator,
    nodes_per_continent: int = 8,
    n_continents: int = 2,
    cross_links: int = 3,
    name: str = "",
) -> Network:
    """Dense continental clusters joined by a handful of long-haul links.

    Models the paper's Cogent class: "span more than one continent, with
    good path diversity between continents", where the long latency baseline
    makes alternate paths cheap in relative stretch.
    """
    network = Network(name or f"intercontinental-{n_continents}x{nodes_per_continent}")
    continents = CONTINENTS[:n_continents]
    clusters: List[List[str]] = []
    for region in continents:
        names = _place_nodes(network, region, nodes_per_continent, rng)
        _euclidean_spanning_tree(network, names, rng)
        # Densify within the continent.
        for node in names:
            others = sorted(
                (other for other in names if other != node),
                key=lambda other: _geo_distance(network, node, other),
            )
            added = network.degree(node)
            for other in others:
                if added >= 3:
                    break
                if not network.has_link(node, other):
                    _add_geo_link(network, node, other, rng)
                    added += 1
        clusters.append(names)
    # Multiple parallel links between each pair of continents: this is what
    # gives the class its intercontinental path diversity.
    for cluster_a, cluster_b in itertools.combinations(clusters, 2):
        for _ in range(cross_links):
            a = str(rng.choice(cluster_a))
            b = str(rng.choice(cluster_b))
            if not network.has_link(a, b):
                _add_geo_link(network, a, b, rng, capacity_bps=Gbps(400))
    return network


# ----------------------------------------------------------------------
# Named replicas
# ----------------------------------------------------------------------
def gts_like(seed: int = 7) -> Network:
    """A GTS-Central-Europe-like grid (the paper's Figure 2 example)."""
    rng = np.random.default_rng(seed)
    return grid_network(4, 6, rng, region=CENTRAL_EUROPE, diagonal_fraction=0.2,
                        name="gts-like")


def cogent_like(seed: int = 11) -> Network:
    """A Cogent-like two-continent network with diverse crossings."""
    rng = np.random.default_rng(seed)
    return multi_continent_network(
        rng, nodes_per_continent=10, n_continents=2, cross_links=4, name="cogent-like"
    )


def globalcenter_like(seed: int = 13) -> Network:
    """A Globalcenter-like full mesh (overlay) topology."""
    rng = np.random.default_rng(seed)
    return clique_network(8, rng, name="globalcenter-like")


def google_like(seed: int = 17) -> Network:
    """A dense, globe-spanning enterprise WAN in the spirit of Google's SNet.

    The paper reports LLPD = 0.875 for Google's network — by far the highest
    measured — and shows (its Figure 19) that it cannot be routed with
    shortest paths alone.  This replica is a four-continent mesh with dense
    intra-continent connectivity and several parallel intercontinental
    links.
    """
    rng = np.random.default_rng(seed)
    network = Network("google-like")
    clusters: List[List[str]] = []
    for region in CONTINENTS:
        names = _place_nodes(network, region, 6, rng)
        for a, b in itertools.combinations(names, 2):
            if _geo_distance(network, a, b) < 5000.0 or rng.random() < 0.7:
                _add_geo_link(network, a, b, rng, capacity_bps=Gbps(100))
        clusters.append(names)
    for cluster_a, cluster_b in itertools.combinations(clusters, 2):
        for _ in range(4):
            a = str(rng.choice(cluster_a))
            b = str(rng.choice(cluster_b))
            if not network.has_link(a, b):
                _add_geo_link(network, a, b, rng, capacity_bps=Gbps(400))
    return network


# ----------------------------------------------------------------------
# The zoo
# ----------------------------------------------------------------------
def generate_zoo(
    n_networks: int = 40, seed: int = 0, include_named: bool = True
) -> List[Network]:
    """A deterministic ensemble of synthetic backbones across all families.

    The family mix is chosen so that the resulting LLPD values cover the
    full range the paper observes (0 to ~0.9), with more mass at low-to-mid
    LLPD, as in the real Topology Zoo.
    """
    if n_networks < 1:
        raise ValueError(f"need at least one network, got {n_networks}")
    rng = np.random.default_rng(seed)
    recipes = []
    # Family mix: (builder, weight).  Builders draw their size parameters
    # from the shared rng so each instance differs.
    recipes.append(("tree", 0.16))
    recipes.append(("star", 0.06))
    recipes.append(("ring", 0.16))
    recipes.append(("ladder", 0.10))
    recipes.append(("sparse-mesh", 0.16))
    recipes.append(("grid", 0.14))
    recipes.append(("dense-mesh", 0.10))
    recipes.append(("intercontinental", 0.08))
    recipes.append(("clique", 0.04))
    labels = [label for label, _ in recipes]
    weights = np.array([weight for _, weight in recipes])
    weights = weights / weights.sum()

    networks: List[Network] = []
    regions = [EUROPE, NORTH_AMERICA, ASIA]
    for index in range(n_networks):
        family = str(rng.choice(labels, p=weights))
        region = regions[index % len(regions)]
        name = f"zoo-{index:03d}-{family}"
        if family == "tree":
            net = tree_network(int(rng.integers(10, 26)), rng, region, name)
        elif family == "star":
            net = star_network(int(rng.integers(8, 18)), rng, region, name)
        elif family == "ring":
            net = ring_network(int(rng.integers(8, 20)), rng, region, name)
        elif family == "ladder":
            net = ladder_network(int(rng.integers(4, 9)), rng, region, name)
        elif family == "sparse-mesh":
            net = mesh_network(int(rng.integers(12, 30)), rng, region,
                               neighbors=2, name=name)
        elif family == "grid":
            rows = int(rng.integers(3, 6))
            cols = int(rng.integers(4, 7))
            net = grid_network(rows, cols, rng, CENTRAL_EUROPE, name=name)
        elif family == "dense-mesh":
            net = mesh_network(int(rng.integers(12, 26)), rng, region,
                               neighbors=4, long_link_fraction=0.15, name=name)
        elif family == "intercontinental":
            net = multi_continent_network(
                rng, nodes_per_continent=int(rng.integers(6, 11)),
                n_continents=2, cross_links=int(rng.integers(3, 5)), name=name
            )
        elif family == "clique":
            net = clique_network(int(rng.integers(6, 10)), rng, region, name)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown family {family}")
        networks.append(net)
    if include_named:
        networks.extend(
            [gts_like(), cogent_like(), globalcenter_like()]
        )
    return networks


def internet_like(n_nodes: int, seed: int = 0) -> Network:
    """An ingest-scale Internet-like topology, as a zoo member.

    Thin convenience wrapper over
    :func:`repro.net.ingest.synthesize_internet_like` (power-law degree
    configuration model, continent-clustered geography) so scale studies
    can request 10k-node graphs through the same module that builds the
    zoo.  Imported lazily to keep the zoo importable without the ingest
    layer in the import graph.
    """
    from repro.net.ingest import synthesize_internet_like

    return synthesize_internet_like(n_nodes, seed=seed)


def network_diameter_s(network: Network) -> float:
    """Largest shortest-path delay over all connected pairs."""
    from repro.net.paths import shortest_path_delays

    diameter = 0.0
    for src in network.node_names:
        delays = shortest_path_delays(network, src)
        if delays:
            diameter = max(diameter, max(delays.values()))
    return diameter

"""Shortest paths and k-shortest paths.

Routing in the paper is delay-based throughout, so all algorithms here use
link propagation delay as the edge weight.  The k-shortest-paths routine is
Yen's algorithm [Yen 1970], exposed both as a lazy generator and through
:class:`KspCache`.  The paper notes that in its LDR system "the bottleneck
is not the linear optimizer, but the k shortest paths algorithm, the results
of which can be readily cached" — the cache class is that optimization, and
the cold/warm cache distinction is what its Figure 15 measures.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.net.graph import Network

Path = Tuple[str, ...]

#: Lazily bound telemetry module.  A module-level import would run
#: ``repro.experiments.__init__`` (which imports the engine, which
#: imports this module) mid-import; binding on first use keeps this
#: low-level module cycle-free while the disabled-recorder fast path
#: stays two attribute lookups and a call.
_telemetry = None


def _recorder():
    global _telemetry
    if _telemetry is None:
        from repro.experiments import telemetry

        _telemetry = telemetry
    return _telemetry.recorder()


class NoPathError(Exception):
    """Raised when no path exists between the requested endpoints."""


class KspCacheMismatchError(ValueError):
    """Raised when a persisted KSP cache does not match the network.

    Paths cached for one topology are meaningless (and silently wrong) on
    another, so :meth:`KspCache.load` verifies a content hash of the
    network before accepting any cached state.
    """


def ksp_cache_path(directory: "os.PathLike[str] | str", network: Network) -> str:
    """Canonical location of a network's persisted KSP cache.

    Every producer and consumer of persistent caches (the experiment
    engine's shards, the Figure 15 benchmark) must agree on this naming,
    so it lives here rather than being rebuilt at each call site.  Pure
    path computation — :meth:`KspCache.dump_file` (the writer) creates
    the directory.
    """
    return os.path.join(
        os.fspath(directory), f"ksp-{network_signature(network)}.json"
    )


def network_signature(network: Network) -> str:
    """Content hash of a network's routing-relevant state.

    Covers the name, every node (with coordinates) and every directed link
    (with capacity and delay).  Any mutation — added/removed links, changed
    delays or capacities — changes the signature, which is what lets
    persisted KSP caches reject stale state instead of serving paths for a
    topology that no longer exists.

    Memoized on the network (every :class:`Network` mutation resets the
    memo), so per-solve signature lookups in the LP structure cache are
    O(1) after the first computation.
    """
    memo = network._signature_memo
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(network.name.encode())
    for name in sorted(network.node_names):
        node = network.node(name)
        digest.update(
            f"N|{node.name}|{node.lat_deg!r}|{node.lon_deg!r}".encode()
        )
    for key in sorted(link.key for link in network.links()):
        link = network.link(*key)
        digest.update(
            f"L|{link.src}|{link.dst}|{link.capacity_bps!r}|{link.delay_s!r}".encode()
        )
    network._signature_memo = digest.hexdigest()
    return network._signature_memo


def path_links(path: Sequence[str]) -> List[Tuple[str, str]]:
    """Directed link keys traversed by a path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def path_delay_s(network: Network, path: Sequence[str]) -> float:
    """Total propagation delay of a path."""
    return sum(network.link(u, v).delay_s for u, v in path_links(path))


def path_bottleneck_bps(network: Network, path: Sequence[str]) -> float:
    """Capacity of the most constrained link on a path."""
    links = path_links(path)
    if not links:
        raise ValueError("bottleneck of an empty path is undefined")
    return min(network.link(u, v).capacity_bps for u, v in links)


def is_simple(path: Sequence[str]) -> bool:
    """True if the path visits no node twice."""
    return len(set(path)) == len(path)


# ----------------------------------------------------------------------
# Dijkstra
# ----------------------------------------------------------------------
def shortest_path(
    network: Network,
    src: str,
    dst: str,
    excluded_links: Optional[Set[Tuple[str, str]]] = None,
    excluded_nodes: Optional[Set[str]] = None,
) -> Path:
    """Lowest-delay path from ``src`` to ``dst``.

    ``excluded_links`` and ``excluded_nodes`` support Yen's spur-path
    computation and APA's route-around queries without copying the graph.

    Raises :class:`NoPathError` when the destination is unreachable.
    """
    if src == dst:
        raise ValueError("source and destination must differ")
    dist, parent = _dijkstra(network, src, dst, excluded_links, excluded_nodes)
    if dst not in dist:
        raise NoPathError(f"no path {src} -> {dst}")
    return _extract(parent, src, dst)


def shortest_path_delays(network: Network, src: str) -> Dict[str, float]:
    """Delays of the lowest-delay paths from ``src`` to every reachable node."""
    dist, _ = _dijkstra(network, src, None, None, None)
    dist.pop(src, None)
    return dist


def all_pairs_shortest_paths(network: Network) -> Dict[Tuple[str, str], Path]:
    """Lowest-delay path for every connected ordered node pair."""
    paths: Dict[Tuple[str, str], Path] = {}
    for src in network.node_names:
        _, parent = _dijkstra(network, src, None, None, None)
        for dst in network.node_names:
            if dst != src and dst in parent:
                paths[(src, dst)] = _extract(parent, src, dst)
    return paths


def _dijkstra(
    network: Network,
    src: str,
    dst: Optional[str],
    excluded_links: Optional[Set[Tuple[str, str]]],
    excluded_nodes: Optional[Set[str]],
) -> Tuple[Dict[str, float], Dict[str, str]]:
    if src not in network:
        raise KeyError(f"unknown node {src!r}")
    if excluded_nodes and src in excluded_nodes:
        return {}, {}
    dist: Dict[str, float] = {src: 0.0}
    parent: Dict[str, str] = {}
    done: Set[str] = set()
    heap: List[Tuple[float, str]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if node == dst:
            break
        for link in network.out_links(node):
            nbr = link.dst
            if nbr in done:
                continue
            if excluded_nodes and nbr in excluded_nodes:
                continue
            if excluded_links and (node, nbr) in excluded_links:
                continue
            nd = d + link.delay_s
            if nd < dist.get(nbr, float("inf")):
                dist[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, nbr))
    return dist, parent


def _extract(parent: Dict[str, str], src: str, dst: str) -> Path:
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


# ----------------------------------------------------------------------
# Yen's k shortest loopless paths
# ----------------------------------------------------------------------
def k_shortest_paths(network: Network, src: str, dst: str) -> Iterator[Path]:
    """Lazily yield simple paths from ``src`` to ``dst`` in non-decreasing
    delay order (Yen's algorithm).

    The generator yields nothing if the endpoints are disconnected, and
    stops once every simple path has been produced.
    """
    try:
        first = shortest_path(network, src, dst)
    except NoPathError:
        return
    yield first

    produced: List[Path] = [first]
    # Candidate heap entries: (delay, path).  A set of already-queued paths
    # avoids duplicate candidates, which Yen's algorithm generates freely.
    candidates: List[Tuple[float, Path]] = []
    queued: Set[Path] = {first}

    while True:
        prev = produced[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            root_delay = path_delay_s(network, root) if i > 0 else 0.0

            excluded_links: Set[Tuple[str, str]] = set()
            for existing in produced:
                if len(existing) > i and existing[: i + 1] == root:
                    excluded_links.add((existing[i], existing[i + 1]))
            excluded_nodes = set(root[:-1])

            try:
                spur = shortest_path(
                    network,
                    spur_node,
                    dst,
                    excluded_links=excluded_links,
                    excluded_nodes=excluded_nodes,
                )
            except NoPathError:
                continue
            candidate = root[:-1] + spur
            if candidate in queued:
                continue
            queued.add(candidate)
            heapq.heappush(
                candidates, (root_delay + path_delay_s(network, spur), candidate)
            )

        if not candidates:
            return
        _, best = heapq.heappop(candidates)
        produced.append(best)
        yield best


class KspCache:
    """Caches k-shortest-path computations for one (immutable) network.

    The cache keeps, per node pair, the lazy Yen generator plus every path
    it has produced so far, so asking for ``k`` paths after having asked for
    ``k' < k`` only computes the missing ``k - k'``.  Mutating the network
    after creating a cache invalidates it; create a new cache instead.

    Materialized paths can be persisted with :meth:`dump` / :meth:`dump_file`
    and restored with :meth:`load` / :meth:`load_file`; persisted state is
    keyed by :func:`network_signature`, so a cache saved for one topology is
    rejected on any other.
    """

    #: Version tag of the :meth:`dump` payload layout.
    DUMP_FORMAT = 1

    def __init__(self, network: Network) -> None:
        self._network = network
        self._generators: Dict[Tuple[str, str], Iterator[Path]] = {}
        self._paths: Dict[Tuple[str, str], List[Path]] = {}
        self._exhausted: Set[Tuple[str, str]] = set()

    @property
    def network(self) -> Network:
        return self._network

    def get(self, src: str, dst: str, k: int) -> List[Path]:
        """The first ``k`` shortest paths (fewer if fewer exist)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        key = (src, dst)
        if key not in self._paths:
            self._paths[key] = []
        paths = self._paths[key]
        if len(paths) >= k or key in self._exhausted:
            recorder = _recorder()
            if recorder.enabled:
                recorder.counter("ksp.cache_hit")
            return paths[:k]
        recorder = _recorder()
        if recorder.enabled:
            recorder.counter("ksp.cache_miss")
        # The span covers only materialization (running Yen's), never
        # cache hits — "ksp" trace seconds are the paper's "readily
        # cached" bottleneck, not dictionary lookups.
        with recorder.span("ksp"):
            while len(paths) < k and key not in self._exhausted:
                try:
                    paths.append(next(self._generator(key)))
                except StopIteration:
                    self._exhausted.add(key)
        return paths[:k]

    def _generator(self, key: Tuple[str, str]) -> Iterator[Path]:
        """The pair's Yen generator, fast-forwarded past loaded paths.

        After :meth:`load` only the materialized paths exist; the first
        request that outgrows them recreates the (deterministic) generator
        and skips the prefix it has already produced.
        """
        generator = self._generators.get(key)
        if generator is None:
            generator = k_shortest_paths(self._network, *key)
            for _ in range(len(self._paths[key])):
                next(generator)
            self._generators[key] = generator
        return generator

    def count_cached(self, src: str, dst: str) -> int:
        """How many paths are already materialized for a pair."""
        return len(self._paths.get((src, dst), []))

    def shortest(self, src: str, dst: str) -> Path:
        """The single shortest path; raises :class:`NoPathError` if none."""
        paths = self.get(src, dst, 1)
        if not paths:
            raise NoPathError(f"no path {src} -> {dst}")
        return paths[0]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dump(self, max_paths_per_pair: Optional[int] = None) -> dict:
        """JSON-serializable snapshot of the materialized paths.

        Only produced paths (and which pairs are exhausted) are captured;
        generator state is rebuilt lazily on demand after :meth:`load`.

        ``max_paths_per_pair`` bounds the snapshot: each pair keeps at most
        that many (shortest-first) paths, so long-lived cache files stop
        growing without bound.  A pair whose tail was dropped is *not*
        marked exhausted — after :meth:`load`, the first request beyond the
        kept prefix resumes Yen's generator as usual.
        """
        if max_paths_per_pair is not None and max_paths_per_pair < 1:
            raise ValueError(
                f"max_paths_per_pair must be >= 1, got {max_paths_per_pair}"
            )
        pairs = []
        for (src, dst), paths in sorted(self._paths.items()):
            kept = paths
            if max_paths_per_pair is not None:
                kept = paths[:max_paths_per_pair]
            pairs.append(
                {
                    "src": src,
                    "dst": dst,
                    "paths": [list(path) for path in kept],
                    "exhausted": (
                        (src, dst) in self._exhausted and len(kept) == len(paths)
                    ),
                }
            )
        return {
            "format": self.DUMP_FORMAT,
            "signature": network_signature(self._network),
            "pairs": pairs,
        }

    @classmethod
    def load(cls, payload: dict, network: Network) -> "KspCache":
        """Rebuild a cache from :meth:`dump` output.

        Raises :class:`KspCacheMismatchError` if the payload was dumped for
        a different (or since-mutated) network, or uses an unknown format.
        """
        if payload.get("format") != cls.DUMP_FORMAT:
            raise KspCacheMismatchError(
                f"unsupported KSP cache format {payload.get('format')!r}"
            )
        signature = network_signature(network)
        if payload.get("signature") != signature:
            raise KspCacheMismatchError(
                f"KSP cache was dumped for a different network "
                f"(cache {payload.get('signature')!r}, network {signature!r})"
            )
        cache = cls(network)
        try:
            for entry in payload["pairs"]:
                key = (entry["src"], entry["dst"])
                cache._paths[key] = [tuple(path) for path in entry["paths"]]
                if entry["exhausted"]:
                    cache._exhausted.add(key)
        except (KeyError, TypeError) as exc:
            # Malformed structure (hand-edited file, external writer, schema
            # drift without a format bump) must hit the same rejected-cache
            # path as a wrong signature, not crash the caller.
            raise KspCacheMismatchError(
                f"malformed KSP cache payload: {exc!r}"
            )
        return cache

    def dump_file(
        self,
        path: "os.PathLike[str] | str",
        max_paths_per_pair: Optional[int] = None,
    ) -> None:
        """Atomically write :meth:`dump` output as JSON.

        Write-to-temp plus ``os.replace`` keeps concurrent dumpers (the
        parallel experiment engine's workers) from ever exposing a torn
        file to a concurrent loader.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.dump(max_paths_per_pair=max_paths_per_pair), handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def try_load_file(
        cls, path: "os.PathLike[str] | str", network: Network
    ) -> "Optional[KspCache]":
        """:meth:`load_file`, but ``None`` for any unusable file.

        Missing, stale, corrupt, or concurrently-deleted files all mean
        the same thing to a consumer: start from a cold cache.
        """
        if not os.path.exists(path):
            return None
        try:
            return cls.load_file(path, network)
        except (KspCacheMismatchError, OSError):
            return None

    @classmethod
    def load_file(
        cls, path: "os.PathLike[str] | str", network: Network
    ) -> "KspCache":
        """Load a cache written by :meth:`dump_file`.

        Raises :class:`KspCacheMismatchError` on a stale or corrupt file.
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise KspCacheMismatchError(f"corrupt KSP cache file {path}: {exc}")
        if not isinstance(payload, dict):
            raise KspCacheMismatchError(f"corrupt KSP cache file {path}")
        return cls.load(payload, network)


def sweep_ksp_cache_dir(
    directory: "os.PathLike[str] | str", max_bytes: int
) -> List[str]:
    """Evict least-recently-used ``ksp-*.json`` files beyond a size budget.

    Keeps the most recently used cache files whose cumulative size fits in
    ``max_bytes`` and deletes the rest, returning the deleted paths.
    Recency is the file's mtime: dumps rewrite the file, and the experiment
    engine touches a cache it warm-loaded without extending, so mtime
    tracks last *use*, not just last write.  Races with concurrent runs
    are benign — a swept file is recomputed from cold on next use.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    directory = os.fspath(directory)
    entries = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not (name.startswith("ksp-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            status = os.stat(path)
        except OSError:
            continue  # concurrently removed
        entries.append((status.st_mtime, status.st_size, path))
    entries.sort(reverse=True)  # most recently used first
    removed: List[str] = []
    total = 0
    for _, size, path in entries:
        total += size
        if total > max_bytes:
            try:
                os.unlink(path)
            except OSError:
                continue
            removed.append(path)
    return removed

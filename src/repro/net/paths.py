"""Shortest paths and k-shortest paths.

Routing in the paper is delay-based throughout, so all algorithms here use
link propagation delay as the edge weight.  The k-shortest-paths routine is
Yen's algorithm [Yen 1970], exposed both as a lazy generator and through
:class:`KspCache`.  The paper notes that in its LDR system "the bottleneck
is not the linear optimizer, but the k shortest paths algorithm, the results
of which can be readily cached" — the cache class is that optimization, and
the cold/warm cache distinction is what its Figure 15 measures.

Since the Internet-scale ingest work, the public functions here delegate to
the integer-indexed sparse core in :mod:`repro.net.index` (CSR adjacency,
array heaps, bytearray exclusion masks) and are bit-identical to the
original string-keyed implementations, which survive below as ``legacy_*``
parity oracles exercised by ``tests/test_net_index.py``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.net.graph import Network
from repro.net.index import (
    GraphIndex,
    LocalityPruner,
    NoPathError,
    graph_index,
)

__all__ = [
    "GraphIndex",
    "KspCache",
    "KspCacheMismatchError",
    "LocalityPruner",
    "NoPathError",
    "all_pairs_shortest_paths",
    "graph_index",
    "is_simple",
    "k_shortest_paths",
    "ksp_cache_path",
    "legacy_all_pairs_shortest_paths",
    "legacy_k_shortest_paths",
    "legacy_shortest_path",
    "legacy_shortest_path_delays",
    "network_signature",
    "path_bottleneck_bps",
    "path_delay_s",
    "path_links",
    "shortest_path",
    "shortest_path_delays",
    "sweep_ksp_cache_dir",
]

Path = Tuple[str, ...]

#: Lazily bound telemetry module.  A module-level import would run
#: ``repro.experiments.__init__`` (which imports the engine, which
#: imports this module) mid-import; binding on first use keeps this
#: low-level module cycle-free while the disabled-recorder fast path
#: stays two attribute lookups and a call.
_telemetry: Any = None


def _recorder() -> Any:
    global _telemetry
    if _telemetry is None:
        from repro.experiments import telemetry

        _telemetry = telemetry
    return _telemetry.recorder()


class KspCacheMismatchError(ValueError):
    """Raised when a persisted KSP cache does not match the network.

    Paths cached for one topology are meaningless (and silently wrong) on
    another, so :meth:`KspCache.load` verifies a content hash of the
    network before accepting any cached state.
    """


def ksp_cache_path(directory: "os.PathLike[str] | str", network: Network) -> str:
    """Canonical location of a network's persisted KSP cache.

    Every producer and consumer of persistent caches (the experiment
    engine's shards, the Figure 15 benchmark) must agree on this naming,
    so it lives here rather than being rebuilt at each call site.  Pure
    path computation — :meth:`KspCache.dump_file` (the writer) creates
    the directory.
    """
    return os.path.join(
        os.fspath(directory), f"ksp-{network_signature(network)}.json"
    )


def network_signature(network: Network) -> str:
    """Content hash of a network's routing-relevant state.

    Covers the name, every node (with coordinates) and every directed link
    (with capacity and delay).  Any mutation — added/removed links, changed
    delays or capacities — changes the signature, which is what lets
    persisted KSP caches reject stale state instead of serving paths for a
    topology that no longer exists.

    Memoized on the network (every :class:`Network` mutation resets the
    memo), so per-solve signature lookups in the LP structure cache are
    O(1) after the first computation.  The memoized *object* also serves
    as the staleness token for :func:`repro.net.index.graph_index`.
    """
    memo = network._signature_memo
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(network.name.encode())
    for name in sorted(network.node_names):
        node = network.node(name)
        digest.update(
            f"N|{node.name}|{node.lat_deg!r}|{node.lon_deg!r}".encode()
        )
    for key in sorted(link.key for link in network.links()):
        link = network.link(*key)
        digest.update(
            f"L|{link.src}|{link.dst}|{link.capacity_bps!r}|{link.delay_s!r}".encode()
        )
    network._signature_memo = digest.hexdigest()
    return network._signature_memo


def path_links(path: Sequence[str]) -> List[Tuple[str, str]]:
    """Directed link keys traversed by a path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def path_delay_s(network: Network, path: Sequence[str]) -> float:
    """Total propagation delay of a path."""
    return sum(network.link(u, v).delay_s for u, v in path_links(path))


def path_bottleneck_bps(network: Network, path: Sequence[str]) -> float:
    """Capacity of the most constrained link on a path."""
    links = path_links(path)
    if not links:
        raise ValueError("bottleneck of an empty path is undefined")
    return min(network.link(u, v).capacity_bps for u, v in links)


def is_simple(path: Sequence[str]) -> bool:
    """True if the path visits no node twice."""
    return len(set(path)) == len(path)


# ----------------------------------------------------------------------
# Dijkstra (indexed fast path; legacy oracles further down)
# ----------------------------------------------------------------------
def shortest_path(
    network: Network,
    src: str,
    dst: str,
    excluded_links: Optional[Set[Tuple[str, str]]] = None,
    excluded_nodes: Optional[Set[str]] = None,
) -> Path:
    """Lowest-delay path from ``src`` to ``dst``.

    ``excluded_links`` and ``excluded_nodes`` support Yen's spur-path
    computation and APA's route-around queries without copying the graph.

    Raises :class:`NoPathError` when the destination is unreachable.
    """
    return graph_index(network).shortest_path(
        src, dst, excluded_links, excluded_nodes
    )


def shortest_path_delays(network: Network, src: str) -> Dict[str, float]:
    """Delays of the lowest-delay paths from ``src`` to every reachable node."""
    return graph_index(network).shortest_path_delays(src)


def all_pairs_shortest_paths(network: Network) -> Dict[Tuple[str, str], Path]:
    """Lowest-delay path for every connected ordered node pair.

    Quadratic output: at ingest scale (10k+ nodes) this materializes 10^8
    paths.  Analysis rule D108 flags new call sites; prefer per-source
    :func:`shortest_path_delays` sweeps or locality-pruned KSP.
    """
    return graph_index(network).all_pairs_shortest_paths(  # analysis: allow[D108]
        node_order=network.node_names
    )


def k_shortest_paths(network: Network, src: str, dst: str) -> Iterator[Path]:
    """Lazily yield simple paths from ``src`` to ``dst`` in non-decreasing
    delay order (Yen's algorithm, on the integer-indexed core).

    The generator yields nothing if the endpoints are disconnected, and
    stops once every simple path has been produced.
    """
    return graph_index(network).k_shortest_paths(src, dst)


# ----------------------------------------------------------------------
# Legacy string-keyed implementations — parity oracles
# ----------------------------------------------------------------------
def legacy_shortest_path(
    network: Network,
    src: str,
    dst: str,
    excluded_links: Optional[Set[Tuple[str, str]]] = None,
    excluded_nodes: Optional[Set[str]] = None,
) -> Path:
    """Original dict-based Dijkstra; kept as the parity oracle for tests."""
    if src == dst:
        raise ValueError("source and destination must differ")
    dist, parent = _dijkstra(network, src, dst, excluded_links, excluded_nodes)
    if dst not in dist:
        raise NoPathError(f"no path {src} -> {dst}")
    return _extract(parent, src, dst)


def legacy_shortest_path_delays(network: Network, src: str) -> Dict[str, float]:
    """Original single-source delay sweep; parity oracle for tests."""
    dist, _ = _dijkstra(network, src, None, None, None)
    dist.pop(src, None)
    return dist


def legacy_all_pairs_shortest_paths(
    network: Network,
) -> Dict[Tuple[str, str], Path]:
    """Original all-pairs materialization; parity oracle for tests."""
    paths: Dict[Tuple[str, str], Path] = {}
    for src in network.node_names:
        _, parent = _dijkstra(network, src, None, None, None)
        for dst in network.node_names:
            if dst != src and dst in parent:
                paths[(src, dst)] = _extract(parent, src, dst)
    return paths


def _dijkstra(
    network: Network,
    src: str,
    dst: Optional[str],
    excluded_links: Optional[Set[Tuple[str, str]]],
    excluded_nodes: Optional[Set[str]],
) -> Tuple[Dict[str, float], Dict[str, str]]:
    if src not in network:
        raise KeyError(f"unknown node {src!r}")
    if excluded_nodes and src in excluded_nodes:
        return {}, {}
    dist: Dict[str, float] = {src: 0.0}
    parent: Dict[str, str] = {}
    done: Set[str] = set()
    heap: List[Tuple[float, str]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if node == dst:
            break
        for link in network.out_links(node):
            nbr = link.dst
            if nbr in done:
                continue
            if excluded_nodes and nbr in excluded_nodes:
                continue
            if excluded_links and (node, nbr) in excluded_links:
                continue
            nd = d + link.delay_s
            if nd < dist.get(nbr, float("inf")):
                dist[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, nbr))
    return dist, parent


def _extract(parent: Dict[str, str], src: str, dst: str) -> Path:
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


# ----------------------------------------------------------------------
# Yen's k shortest loopless paths — legacy parity oracle
# ----------------------------------------------------------------------
def legacy_k_shortest_paths(
    network: Network, src: str, dst: str
) -> Iterator[Path]:
    """Original string-keyed Yen's algorithm; parity oracle for tests.

    The spur-root delay accumulates incrementally per hop (one link delay
    added per spur index) instead of re-summing the whole root prefix —
    the same left-to-right float addition order as the old
    ``path_delay_s(network, root)``, so candidate ordering is unchanged
    while the per-path cost drops from O(L²) to O(L).
    """
    try:
        first = legacy_shortest_path(network, src, dst)
    except NoPathError:
        return
    yield first

    produced: List[Path] = [first]
    # Candidate heap entries: (delay, path).  A set of already-queued paths
    # avoids duplicate candidates, which Yen's algorithm generates freely.
    candidates: List[Tuple[float, Path]] = []
    queued: Set[Path] = {first}

    while True:
        prev = produced[-1]
        root_delay = 0.0
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            if i > 0:
                root_delay += network.link(prev[i - 1], prev[i]).delay_s

            excluded_links: Set[Tuple[str, str]] = set()
            for existing in produced:
                if len(existing) > i and existing[: i + 1] == root:
                    excluded_links.add((existing[i], existing[i + 1]))
            excluded_nodes = set(root[:-1])

            try:
                spur = legacy_shortest_path(
                    network,
                    spur_node,
                    dst,
                    excluded_links=excluded_links,
                    excluded_nodes=excluded_nodes,
                )
            except NoPathError:
                continue
            candidate = root[:-1] + spur
            if candidate in queued:
                continue
            queued.add(candidate)
            heapq.heappush(
                candidates, (root_delay + path_delay_s(network, spur), candidate)
            )

        if not candidates:
            return
        _, best = heapq.heappop(candidates)
        produced.append(best)
        yield best


class KspCache:
    """Caches k-shortest-path computations for one (immutable) network.

    The cache keeps, per node pair, the lazy Yen generator plus every path
    it has produced so far, so asking for ``k`` paths after having asked for
    ``k' < k`` only computes the missing ``k - k'``.  Mutating the network
    after creating a cache invalidates it; create a new cache instead.

    An optional :class:`~repro.net.index.LocalityPruner` turns the cache
    into a locality-pruned one: pairs the pruner rejects (provably farther
    apart than its radius) are served their single shortest path only,
    never running Yen's for alternatives, and each such request bumps the
    ``ksp.pruned`` metric.  Pruning is an explicit approximation for
    ingest-scale graphs; without a pruner behavior is exact and unchanged.

    Materialized paths can be persisted with :meth:`dump` / :meth:`dump_file`
    and restored with :meth:`load` / :meth:`load_file`; persisted state is
    keyed by :func:`network_signature`, so a cache saved for one topology is
    rejected on any other.
    """

    #: Version tag of the :meth:`dump` payload layout.  Format 2 stores
    #: paths as integer indexes into a dumped name table; :meth:`load`
    #: still accepts format-1 (full node-name list) payloads.
    DUMP_FORMAT = 2

    def __init__(
        self, network: Network, pruner: Optional[LocalityPruner] = None
    ) -> None:
        self._network = network
        self._pruner = pruner
        self._generators: Dict[Tuple[str, str], Iterator[Path]] = {}
        self._paths: Dict[Tuple[str, str], List[Path]] = {}
        self._exhausted: Set[Tuple[str, str]] = set()

    @property
    def network(self) -> Network:
        return self._network

    @property
    def pruner(self) -> Optional[LocalityPruner]:
        return self._pruner

    def get(self, src: str, dst: str, k: int) -> List[Path]:
        """The first ``k`` shortest paths (fewer if fewer exist).

        With a pruner attached, non-local pairs are clamped to their single
        shortest path (``ksp.pruned`` counts every such request).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        limit = k
        if (
            self._pruner is not None
            and k > 1
            and not self._pruner.admits(src, dst)
        ):
            limit = 1
            recorder = _recorder()
            if recorder.enabled:
                recorder.counter("ksp.pruned")
        key = (src, dst)
        if key not in self._paths:
            self._paths[key] = []
        paths = self._paths[key]
        if len(paths) >= limit or key in self._exhausted:
            recorder = _recorder()
            if recorder.enabled:
                recorder.counter("ksp.cache_hit")
            return paths[:limit]
        recorder = _recorder()
        if recorder.enabled:
            recorder.counter("ksp.cache_miss")
        # The span covers only materialization (running Yen's), never
        # cache hits — "ksp" trace seconds are the paper's "readily
        # cached" bottleneck, not dictionary lookups.
        with recorder.span("ksp"):
            while len(paths) < limit and key not in self._exhausted:
                try:
                    paths.append(next(self._generator(key)))
                except StopIteration:
                    self._exhausted.add(key)
        return paths[:limit]

    def _generator(self, key: Tuple[str, str]) -> Iterator[Path]:
        """The pair's Yen generator, fast-forwarded past loaded paths.

        After :meth:`load` only the materialized paths exist; the first
        request that outgrows them recreates the (deterministic) generator
        and skips the prefix it has already produced.
        """
        generator = self._generators.get(key)
        if generator is None:
            generator = k_shortest_paths(self._network, *key)
            for _ in range(len(self._paths[key])):
                next(generator)
            self._generators[key] = generator
        return generator

    def count_cached(self, src: str, dst: str) -> int:
        """How many paths are already materialized for a pair."""
        return len(self._paths.get((src, dst), []))

    def total_cached(self) -> int:
        """Total materialized paths across all pairs.

        Iterates the cache's own (sparse) pair map — never the quadratic
        node-pair space — so it stays cheap on ingest-scale networks.
        """
        return sum(len(paths) for paths in self._paths.values())

    def shortest(self, src: str, dst: str) -> Path:
        """The single shortest path; raises :class:`NoPathError` if none."""
        paths = self.get(src, dst, 1)
        if not paths:
            raise NoPathError(f"no path {src} -> {dst}")
        return paths[0]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dump(self, max_paths_per_pair: Optional[int] = None) -> Dict[str, Any]:
        """JSON-serializable snapshot of the materialized paths.

        Only produced paths (and which pairs are exhausted) are captured;
        generator state is rebuilt lazily on demand after :meth:`load`.
        Paths are stored as integer indexes into the payload's ``nodes``
        name table (format 2), which shrinks persisted caches roughly by
        the average name length.

        ``max_paths_per_pair`` bounds the snapshot: each pair keeps at most
        that many (shortest-first) paths, so long-lived cache files stop
        growing without bound.  A pair whose tail was dropped is *not*
        marked exhausted — after :meth:`load`, the first request beyond the
        kept prefix resumes Yen's generator as usual.
        """
        if max_paths_per_pair is not None and max_paths_per_pair < 1:
            raise ValueError(
                f"max_paths_per_pair must be >= 1, got {max_paths_per_pair}"
            )
        name_set: Set[str] = set()
        for (src, dst), paths in self._paths.items():
            name_set.add(src)
            name_set.add(dst)
            for path in paths:
                name_set.update(path)
        names = sorted(name_set)
        index_of = {name: i for i, name in enumerate(names)}
        pairs = []
        for (src, dst), paths in sorted(self._paths.items()):
            kept = paths
            if max_paths_per_pair is not None:
                kept = paths[:max_paths_per_pair]
            pairs.append(
                {
                    "src": index_of[src],
                    "dst": index_of[dst],
                    "paths": [[index_of[node] for node in path] for path in kept],
                    "exhausted": (
                        (src, dst) in self._exhausted and len(kept) == len(paths)
                    ),
                }
            )
        return {
            "format": self.DUMP_FORMAT,
            "signature": network_signature(self._network),
            "nodes": names,
            "pairs": pairs,
        }

    @classmethod
    def load(cls, payload: Dict[str, Any], network: Network) -> "KspCache":
        """Rebuild a cache from :meth:`dump` output.

        Accepts the current integer-indexed payload (format 2) and the
        older full-name layout (format 1).  Raises
        :class:`KspCacheMismatchError` if the payload was dumped for a
        different (or since-mutated) network, or uses an unknown format.
        """
        fmt = payload.get("format")
        if fmt not in (1, cls.DUMP_FORMAT):
            raise KspCacheMismatchError(
                f"unsupported KSP cache format {fmt!r}"
            )
        signature = network_signature(network)
        if payload.get("signature") != signature:
            raise KspCacheMismatchError(
                f"KSP cache was dumped for a different network "
                f"(cache {payload.get('signature')!r}, network {signature!r})"
            )
        cache = cls(network)
        try:
            if fmt == 1:
                for entry in payload["pairs"]:
                    key = (entry["src"], entry["dst"])
                    cache._paths[key] = [
                        tuple(path) for path in entry["paths"]
                    ]
                    if entry["exhausted"]:
                        cache._exhausted.add(key)
            else:
                table: List[str] = list(payload["nodes"])
                for entry in payload["pairs"]:
                    key = (table[entry["src"]], table[entry["dst"]])
                    cache._paths[key] = [
                        tuple(table[i] for i in path)
                        for path in entry["paths"]
                    ]
                    if entry["exhausted"]:
                        cache._exhausted.add(key)
        except (KeyError, TypeError, IndexError) as exc:
            # Malformed structure (hand-edited file, external writer, schema
            # drift without a format bump) must hit the same rejected-cache
            # path as a wrong signature, not crash the caller.
            raise KspCacheMismatchError(
                f"malformed KSP cache payload: {exc!r}"
            )
        return cache

    def dump_file(
        self,
        path: "os.PathLike[str] | str",
        max_paths_per_pair: Optional[int] = None,
    ) -> None:
        """Atomically write :meth:`dump` output as JSON.

        Write-to-temp plus ``os.replace`` keeps concurrent dumpers (the
        parallel experiment engine's workers) from ever exposing a torn
        file to a concurrent loader.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.dump(max_paths_per_pair=max_paths_per_pair), handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def try_load_file(
        cls, path: "os.PathLike[str] | str", network: Network
    ) -> "Optional[KspCache]":
        """:meth:`load_file`, but ``None`` for any unusable file.

        Missing, stale, corrupt, or concurrently-deleted files all mean
        the same thing to a consumer: start from a cold cache.
        """
        if not os.path.exists(path):
            return None
        try:
            return cls.load_file(path, network)
        except (KspCacheMismatchError, OSError):
            return None

    @classmethod
    def load_file(
        cls, path: "os.PathLike[str] | str", network: Network
    ) -> "KspCache":
        """Load a cache written by :meth:`dump_file`.

        Raises :class:`KspCacheMismatchError` on a stale or corrupt file.
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise KspCacheMismatchError(f"corrupt KSP cache file {path}: {exc}")
        if not isinstance(payload, dict):
            raise KspCacheMismatchError(f"corrupt KSP cache file {path}")
        return cls.load(payload, network)


def sweep_ksp_cache_dir(
    directory: "os.PathLike[str] | str", max_bytes: int
) -> List[str]:
    """Evict least-recently-used ``ksp-*.json`` files beyond a size budget.

    Keeps the most recently used cache files whose cumulative size fits in
    ``max_bytes`` and deletes the rest, returning the deleted paths.
    Recency is the file's mtime: dumps rewrite the file, and the experiment
    engine touches a cache it warm-loaded without extending, so mtime
    tracks last *use*, not just last write.  Races with concurrent runs
    are benign — a swept file is recomputed from cold on next use.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    directory = os.fspath(directory)
    entries = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not (name.startswith("ksp-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            status = os.stat(path)
        except OSError:
            continue  # concurrently removed
        entries.append((status.st_mtime, status.st_size, path))
    entries.sort(reverse=True)  # most recently used first
    removed: List[str] = []
    total = 0
    for _, size, path in entries:
        total += size
        if total > max_bytes:
            try:
                os.unlink(path)
            except OSError:
                continue
            removed.append(path)
    return removed

"""Shortest paths and k-shortest paths.

Routing in the paper is delay-based throughout, so all algorithms here use
link propagation delay as the edge weight.  The k-shortest-paths routine is
Yen's algorithm [Yen 1970], exposed both as a lazy generator and through
:class:`KspCache`.  The paper notes that in its LDR system "the bottleneck
is not the linear optimizer, but the k shortest paths algorithm, the results
of which can be readily cached" — the cache class is that optimization, and
the cold/warm cache distinction is what its Figure 15 measures.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.net.graph import Network

Path = Tuple[str, ...]


class NoPathError(Exception):
    """Raised when no path exists between the requested endpoints."""


def path_links(path: Sequence[str]) -> List[Tuple[str, str]]:
    """Directed link keys traversed by a path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def path_delay_s(network: Network, path: Sequence[str]) -> float:
    """Total propagation delay of a path."""
    return sum(network.link(u, v).delay_s for u, v in path_links(path))


def path_bottleneck_bps(network: Network, path: Sequence[str]) -> float:
    """Capacity of the most constrained link on a path."""
    links = path_links(path)
    if not links:
        raise ValueError("bottleneck of an empty path is undefined")
    return min(network.link(u, v).capacity_bps for u, v in links)


def is_simple(path: Sequence[str]) -> bool:
    """True if the path visits no node twice."""
    return len(set(path)) == len(path)


# ----------------------------------------------------------------------
# Dijkstra
# ----------------------------------------------------------------------
def shortest_path(
    network: Network,
    src: str,
    dst: str,
    excluded_links: Optional[Set[Tuple[str, str]]] = None,
    excluded_nodes: Optional[Set[str]] = None,
) -> Path:
    """Lowest-delay path from ``src`` to ``dst``.

    ``excluded_links`` and ``excluded_nodes`` support Yen's spur-path
    computation and APA's route-around queries without copying the graph.

    Raises :class:`NoPathError` when the destination is unreachable.
    """
    if src == dst:
        raise ValueError("source and destination must differ")
    dist, parent = _dijkstra(network, src, dst, excluded_links, excluded_nodes)
    if dst not in dist:
        raise NoPathError(f"no path {src} -> {dst}")
    return _extract(parent, src, dst)


def shortest_path_delays(network: Network, src: str) -> Dict[str, float]:
    """Delays of the lowest-delay paths from ``src`` to every reachable node."""
    dist, _ = _dijkstra(network, src, None, None, None)
    dist.pop(src, None)
    return dist


def all_pairs_shortest_paths(network: Network) -> Dict[Tuple[str, str], Path]:
    """Lowest-delay path for every connected ordered node pair."""
    paths: Dict[Tuple[str, str], Path] = {}
    for src in network.node_names:
        _, parent = _dijkstra(network, src, None, None, None)
        for dst in network.node_names:
            if dst != src and dst in parent:
                paths[(src, dst)] = _extract(parent, src, dst)
    return paths


def _dijkstra(
    network: Network,
    src: str,
    dst: Optional[str],
    excluded_links: Optional[Set[Tuple[str, str]]],
    excluded_nodes: Optional[Set[str]],
) -> Tuple[Dict[str, float], Dict[str, str]]:
    if src not in network:
        raise KeyError(f"unknown node {src!r}")
    if excluded_nodes and src in excluded_nodes:
        return {}, {}
    dist: Dict[str, float] = {src: 0.0}
    parent: Dict[str, str] = {}
    done: Set[str] = set()
    heap: List[Tuple[float, str]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if node == dst:
            break
        for link in network.out_links(node):
            nbr = link.dst
            if nbr in done:
                continue
            if excluded_nodes and nbr in excluded_nodes:
                continue
            if excluded_links and (node, nbr) in excluded_links:
                continue
            nd = d + link.delay_s
            if nd < dist.get(nbr, float("inf")):
                dist[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, nbr))
    return dist, parent


def _extract(parent: Dict[str, str], src: str, dst: str) -> Path:
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


# ----------------------------------------------------------------------
# Yen's k shortest loopless paths
# ----------------------------------------------------------------------
def k_shortest_paths(network: Network, src: str, dst: str) -> Iterator[Path]:
    """Lazily yield simple paths from ``src`` to ``dst`` in non-decreasing
    delay order (Yen's algorithm).

    The generator yields nothing if the endpoints are disconnected, and
    stops once every simple path has been produced.
    """
    try:
        first = shortest_path(network, src, dst)
    except NoPathError:
        return
    yield first

    produced: List[Path] = [first]
    # Candidate heap entries: (delay, path).  A set of already-queued paths
    # avoids duplicate candidates, which Yen's algorithm generates freely.
    candidates: List[Tuple[float, Path]] = []
    queued: Set[Path] = {first}

    while True:
        prev = produced[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            root_delay = path_delay_s(network, root) if i > 0 else 0.0

            excluded_links: Set[Tuple[str, str]] = set()
            for existing in produced:
                if len(existing) > i and existing[: i + 1] == root:
                    excluded_links.add((existing[i], existing[i + 1]))
            excluded_nodes = set(root[:-1])

            try:
                spur = shortest_path(
                    network,
                    spur_node,
                    dst,
                    excluded_links=excluded_links,
                    excluded_nodes=excluded_nodes,
                )
            except NoPathError:
                continue
            candidate = root[:-1] + spur
            if candidate in queued:
                continue
            queued.add(candidate)
            heapq.heappush(
                candidates, (root_delay + path_delay_s(network, spur), candidate)
            )

        if not candidates:
            return
        _, best = heapq.heappop(candidates)
        produced.append(best)
        yield best


class KspCache:
    """Caches k-shortest-path computations for one (immutable) network.

    The cache keeps, per node pair, the lazy Yen generator plus every path
    it has produced so far, so asking for ``k`` paths after having asked for
    ``k' < k`` only computes the missing ``k - k'``.  Mutating the network
    after creating a cache invalidates it; create a new cache instead.
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._generators: Dict[Tuple[str, str], Iterator[Path]] = {}
        self._paths: Dict[Tuple[str, str], List[Path]] = {}
        self._exhausted: Set[Tuple[str, str]] = set()

    @property
    def network(self) -> Network:
        return self._network

    def get(self, src: str, dst: str, k: int) -> List[Path]:
        """The first ``k`` shortest paths (fewer if fewer exist)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        key = (src, dst)
        if key not in self._paths:
            self._paths[key] = []
            self._generators[key] = k_shortest_paths(self._network, src, dst)
        paths = self._paths[key]
        while len(paths) < k and key not in self._exhausted:
            try:
                paths.append(next(self._generators[key]))
            except StopIteration:
                self._exhausted.add(key)
        return paths[:k]

    def count_cached(self, src: str, dst: str) -> int:
        """How many paths are already materialized for a pair."""
        return len(self._paths.get((src, dst), []))

    def shortest(self, src: str, dst: str) -> Path:
        """The single shortest path; raises :class:`NoPathError` if none."""
        paths = self.get(src, dst, 1)
        if not paths:
            raise NoPathError(f"no path {src} -> {dst}")
        return paths[0]

"""Max-flow / min-cut on the directed capacitated graph.

APA's notion of a "viable alternate" requires comparing the min-cut of a set
of alternate paths with the bottleneck of the shortest path, and the traffic
matrix scaler needs per-pair s-t capacities.  Edmonds-Karp (BFS augmenting
paths) is ample for backbone-sized graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.net.graph import Network


def max_flow_bps(
    network: Network,
    src: str,
    dst: str,
    restrict_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> float:
    """Maximum flow from ``src`` to ``dst`` in bits per second.

    ``restrict_links`` limits the flow to a subset of directed links — used
    by APA, which asks how much capacity a *specific set of alternate paths*
    can jointly carry.
    """
    if src == dst:
        raise ValueError("source and destination must differ")
    allowed: Optional[Set[Tuple[str, str]]] = (
        set(restrict_links) if restrict_links is not None else None
    )
    # Residual capacities keyed by directed (u, v).  Reverse residual arcs
    # are created on demand with zero initial capacity.
    residual: Dict[Tuple[str, str], float] = {}
    adjacency: Dict[str, Set[str]] = {name: set() for name in network.node_names}
    for link in network.links():
        if allowed is not None and link.key not in allowed:
            continue
        residual[link.key] = residual.get(link.key, 0.0) + link.capacity_bps
        residual.setdefault((link.dst, link.src), residual.get((link.dst, link.src), 0.0))
        adjacency[link.src].add(link.dst)
        adjacency[link.dst].add(link.src)

    total = 0.0
    while True:
        parent = _bfs_augmenting(adjacency, residual, src, dst)
        if parent is None:
            return total
        # Find the bottleneck along the augmenting path, then push it.
        bottleneck = float("inf")
        node = dst
        while node != src:
            prev = parent[node]
            bottleneck = min(bottleneck, residual[(prev, node)])
            node = prev
        node = dst
        while node != src:
            prev = parent[node]
            residual[(prev, node)] -= bottleneck
            residual[(node, prev)] = residual.get((node, prev), 0.0) + bottleneck
            node = prev
        total += bottleneck


def _bfs_augmenting(
    adjacency: Dict[str, Set[str]],
    residual: Dict[Tuple[str, str], float],
    src: str,
    dst: str,
) -> Optional[Dict[str, str]]:
    parent: Dict[str, str] = {}
    visited = {src}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        # Sorted traversal: the BFS parent (and hence the augmenting path)
        # must not depend on set hash order, or max-flow decompositions
        # differ across PYTHONHASHSEED values.
        for nbr in sorted(adjacency[node]):
            if nbr in visited:
                continue
            if residual.get((node, nbr), 0.0) <= 1e-9:
                continue
            parent[nbr] = node
            if nbr == dst:
                return parent
            visited.add(nbr)
            queue.append(nbr)
    return None


def min_cut_bps(network: Network, src: str, dst: str) -> float:
    """Capacity of the minimum s-t cut (equals the max flow)."""
    return max_flow_bps(network, src, dst)

"""repro: low-latency-capable topologies and intra-domain routing.

A from-scratch Python reproduction of Gvozdiev, Vissicchio, Karp and
Handley, "On low-latency-capable topologies, and their impact on the design
of intra-domain routing" (SIGCOMM 2018).

The package provides:

* topology metrics — APA and LLPD (:mod:`repro.core.metrics`);
* a synthetic topology zoo with realistic geography (:mod:`repro.net.zoo`);
* gravity/locality traffic-matrix synthesis (:mod:`repro.tm`);
* the paper's routing schemes — shortest-path, B4-style greedy, MinMax
  (full and k-limited), the latency-optimal iterative LP, and a link-based
  baseline (:mod:`repro.routing`);
* headroom machinery — Algorithm 1 rate prediction, temporal and
  FFT-convolution multiplexing checks, and the LDR controller
  (:mod:`repro.core`);
* the experiment harness regenerating every evaluation figure
  (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro.net.zoo import gts_like
    from repro.core.metrics import llpd
    from repro.tm import gravity_traffic_matrix, scale_to_growth_headroom
    from repro.routing import LatencyOptimalRouting

    network = gts_like()
    print("LLPD:", llpd(network))
    tm = scale_to_growth_headroom(
        network, gravity_traffic_matrix(network, np.random.default_rng(0))
    )
    placement = LatencyOptimalRouting().place(network, tm)
    print("stretch:", placement.total_latency_stretch())
"""

from repro.core.ldr import AggregateTraffic, LdrConfig, LdrController, LdrResult
from repro.core.metrics import ApaParameters, apa_all_pairs, llpd, pair_apa
from repro.core.prediction import MeanRatePredictor
from repro.net.graph import Link, Network, Node
from repro.routing import (
    B4Routing,
    LatencyOptimalRouting,
    LinkBasedOptimalRouting,
    MinMaxRouting,
    Placement,
    RoutingScheme,
    ShortestPathRouting,
)
from repro.tm import (
    TrafficMatrix,
    apply_locality,
    gravity_traffic_matrix,
    max_scale_factor,
    scale_to_growth_headroom,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateTraffic",
    "LdrConfig",
    "LdrController",
    "LdrResult",
    "ApaParameters",
    "apa_all_pairs",
    "llpd",
    "pair_apa",
    "MeanRatePredictor",
    "Link",
    "Network",
    "Node",
    "B4Routing",
    "LatencyOptimalRouting",
    "LinkBasedOptimalRouting",
    "MinMaxRouting",
    "Placement",
    "RoutingScheme",
    "ShortestPathRouting",
    "TrafficMatrix",
    "apply_locality",
    "gravity_traffic_matrix",
    "max_scale_factor",
    "scale_to_growth_headroom",
    "__version__",
]

"""Statistics extracted from traffic traces.

These are the measurement primitives behind the paper's Figures 9 and 10
and behind LDR's multiplexing checks: per-minute mean levels, per-minute
standard deviation of millisecond rates, and resampling to the 100 ms
intervals the controller works with.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _reshape_minutes(trace: np.ndarray, samples_per_minute: int) -> np.ndarray:
    if trace.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {trace.shape}")
    if samples_per_minute < 1:
        raise ValueError(f"samples_per_minute must be >= 1, got {samples_per_minute}")
    n_minutes = len(trace) // samples_per_minute
    if n_minutes == 0:
        raise ValueError("trace shorter than one minute")
    return trace[: n_minutes * samples_per_minute].reshape(
        n_minutes, samples_per_minute
    )


def minute_means(trace: np.ndarray, samples_per_minute: int) -> np.ndarray:
    """Mean rate of each full minute in the trace."""
    return _reshape_minutes(trace, samples_per_minute).mean(axis=1)


def per_minute_sigma(trace: np.ndarray, samples_per_minute: int) -> np.ndarray:
    """Standard deviation of the per-sample rates within each minute.

    The paper: "We measure the bit-rate from the CAIDA traces each
    millisecond, and calculate the standard deviation of these values for
    each minute."
    """
    return _reshape_minutes(trace, samples_per_minute).std(axis=1)


def minute_sigma_pairs(
    trace: np.ndarray, samples_per_minute: int
) -> List[Tuple[float, float]]:
    """(sigma at minute t, sigma at minute t+1) pairs — Figure 10's scatter."""
    sigmas = per_minute_sigma(trace, samples_per_minute)
    return [(float(sigmas[i]), float(sigmas[i + 1])) for i in range(len(sigmas) - 1)]


def resample_to_interval(
    trace: np.ndarray, samples_per_interval: int
) -> np.ndarray:
    """Average consecutive samples into coarser intervals (e.g. 1 ms→100 ms).

    Ingress routers report 100 ms counters to the LDR controller; this is
    the aggregation they perform.
    """
    if samples_per_interval < 1:
        raise ValueError(
            f"samples_per_interval must be >= 1, got {samples_per_interval}"
        )
    n = len(trace) // samples_per_interval
    if n == 0:
        raise ValueError("trace shorter than one interval")
    return trace[: n * samples_per_interval].reshape(n, samples_per_interval).mean(
        axis=1
    )

"""Traffic dynamics substrate: synthetic traces and their statistics.

The paper grounds its headroom analysis in CAIDA passive traces (four
10 Gb/s Tier-1 backbone links, 40 one-hour traces each).  Those traces are
not redistributable, so :mod:`repro.traces.synth` generates traces with the
two statistical properties the paper's Figures 9 and 10 actually test:
minute-to-minute mean predictability and minute-to-minute stability of the
sub-second rate variability.  :mod:`repro.traces.stats` extracts the
quantities the paper measures from any trace, synthetic or otherwise.
"""

from repro.traces.synth import SyntheticTraceConfig, synthesize_trace, trace_ensemble
from repro.traces.stats import (
    minute_means,
    minute_sigma_pairs,
    per_minute_sigma,
    resample_to_interval,
)

__all__ = [
    "SyntheticTraceConfig",
    "synthesize_trace",
    "trace_ensemble",
    "minute_means",
    "minute_sigma_pairs",
    "per_minute_sigma",
    "resample_to_interval",
]

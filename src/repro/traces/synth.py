"""Synthetic backbone traffic traces.

The generator produces a per-millisecond bitrate series with three layered
components, each mapped to an observation the paper makes about real
backbone traffic:

* a **minute-scale mean level** following a geometric random walk with a
  small per-minute variation (Google's WAN study [22] reports typical
  backbone links varying less than 10% minute to minute);
* **short-term burstiness** around the mean, modelled as an AR(1) process
  at millisecond granularity (bursts are correlated over sub-second
  timescales, which is what makes the paper's temporal-correlation test B
  meaningful);
* a **per-trace volatility level** sigma that itself drifts only slowly
  from minute to minute (the paper's Figure 10: "the points are tightly
  clustered around the x = y line").

Rates are clamped at zero, as bitrates are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

MS_PER_MINUTE = 60_000


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of one synthetic trace."""

    mean_bps: float = 2e9
    minutes: int = 30
    #: Std-dev of the per-minute log-step of the mean level (~3% steps).
    mean_drift: float = 0.03
    #: Burst std-dev as a fraction of the mean level (per-trace baseline).
    burst_sigma_fraction: float = 0.25
    #: Per-minute log-step of the burst sigma (Figure 10's clustering).
    sigma_drift: float = 0.05
    #: AR(1) coefficient of bursts, per millisecond.  Coarser sample
    #: intervals compound it (rho_effective = rho ** sample_ms) so a trace
    #: has the same burst correlation *time* at any resolution.
    burst_correlation: float = 0.995
    #: Milliseconds per sample (1 = the CAIDA-like resolution).
    sample_ms: int = 1

    def __post_init__(self) -> None:
        if self.mean_bps <= 0:
            raise ValueError(f"mean rate must be positive, got {self.mean_bps}")
        if self.minutes < 1:
            raise ValueError(f"need at least one minute, got {self.minutes}")
        if not 0.0 <= self.burst_correlation < 1.0:
            raise ValueError(
                f"AR(1) coefficient must be in [0, 1), got {self.burst_correlation}"
            )
        if MS_PER_MINUTE % self.sample_ms != 0:
            raise ValueError("sample_ms must divide a minute")

    @property
    def samples_per_minute(self) -> int:
        return MS_PER_MINUTE // self.sample_ms


def synthesize_trace(
    config: SyntheticTraceConfig, rng: np.random.Generator
) -> np.ndarray:
    """One trace: bitrate (bits/s) per ``config.sample_ms`` interval.

    Returns an array of shape ``(minutes * samples_per_minute,)``.
    """
    spm = config.samples_per_minute
    total = config.minutes * spm

    # Minute-scale mean level: geometric random walk around mean_bps.
    log_steps = rng.normal(0.0, config.mean_drift, size=config.minutes)
    minute_levels = config.mean_bps * np.exp(np.cumsum(log_steps) - log_steps[0])

    # Per-minute burst sigma: its own slow geometric walk.
    sigma_steps = rng.normal(0.0, config.sigma_drift, size=config.minutes)
    sigma_levels = (
        config.burst_sigma_fraction
        * minute_levels
        * np.exp(np.cumsum(sigma_steps) - sigma_steps[0])
    )

    # AR(1) bursts at sample granularity, unit marginal variance.  The
    # recursion b[i] = rho*b[i-1] + e[i] is an IIR filter, which scipy
    # evaluates in C — a pure-Python loop over millions of samples is not
    # an option.
    from scipy.signal import lfilter

    rho = config.burst_correlation ** config.sample_ms
    innovations = rng.normal(0.0, np.sqrt(1.0 - rho * rho), size=total)
    initial = float(rng.normal())
    bursts, _ = lfilter([1.0], [1.0, -rho], innovations, zi=[rho * initial])

    mean_series = np.repeat(minute_levels, spm)
    sigma_series = np.repeat(sigma_levels, spm)
    rates = mean_series + sigma_series * bursts
    np.maximum(rates, 0.0, out=rates)
    return rates


def trace_ensemble(
    n_traces: int,
    rng: np.random.Generator,
    minutes: int = 30,
    sample_ms: int = 1,
    mean_range_bps: tuple = (1e9, 3e9),
) -> List[np.ndarray]:
    """An ensemble mimicking the paper's CAIDA corpus ("typically ranging
    from 1 to 3 Gbps")."""
    if n_traces < 1:
        raise ValueError(f"need at least one trace, got {n_traces}")
    low, high = mean_range_bps
    traces = []
    for _ in range(n_traces):
        config = SyntheticTraceConfig(
            mean_bps=float(rng.uniform(low, high)),
            minutes=minutes,
            burst_sigma_fraction=float(rng.uniform(0.1, 0.4)),
            sample_ms=sample_ms,
        )
        traces.append(synthesize_trace(config, rng))
    return traces

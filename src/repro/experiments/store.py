"""Durable, append-only result store for experiment engine runs.

The paper's evaluation grid (116 networks x 100 traffic matrices x several
schemes) is the shape of workload where interrupted runs and repeated
re-plots dominate wall-clock cost.  This module persists the engine's
per-network results so that

* a run killed partway can be restarted and evaluates only the networks
  whose results are not yet on disk (crash resume), and
* a figure can be re-rendered entirely from disk, without constructing a
  single routing scheme (re-render without re-evaluate).

Store layout
------------

One JSONL stream per (workload signature, scheme name)::

    <store>/<workload-signature>/<scheme>.jsonl

The workload signature is a content hash (:func:`workload_signature`)
covering every network (via :func:`repro.net.io.to_json`), every traffic
matrix (via :func:`repro.tm.matrix.to_json`), the workload's shaping
parameters (locality, growth factor, seed) and the effective
``matrices_per_network`` truncation.  Any change to the workload changes
the signature, so stale results are rejected *by key* — they are simply
never looked up — rather than trusted.

Each stream starts with a header record restating its key (format version,
signature, scheme name); readers verify the header against the requested
key and raise :class:`StoreMismatchError` on any disagreement (a file moved
between directories, a renamed scheme, a future format).  After the header
come one ``result`` record per completed network, appended as a single
flushed line each, so concurrent appenders never interleave *within* a
record and a crash can tear at most the trailing line.  Readers stop at
the first unparseable line; the writer truncates such a torn tail before
resuming, so a mid-write kill costs exactly one network's result.

Stored results round-trip bit-identically: JSON preserves Python floats
exactly (``repr`` round-trip), so a :class:`SchemeOutcome` read back from
the store compares equal to the freshly computed one, for any worker
count — the engine's determinism contract extends to the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.experiments import telemetry
from repro.experiments.runner import SchemeOutcome
from repro.experiments.workloads import ZooWorkload
from repro.net.io import to_json as network_to_json
from repro.tm.matrix import to_json as tm_to_json

if TYPE_CHECKING:  # circular at runtime: engine imports this module
    from repro.experiments.engine import NetworkResult

#: Version tag of both the signature recipe and the stream record layout.
#: Bumping it orphans (never corrupts) existing stores: old streams live
#: under old signature directories and are no longer looked up.
STORE_FORMAT = 1


class StoreError(Exception):
    """Base class for result-store failures."""


class StoreMismatchError(StoreError):
    """A stream's header does not match the key it was looked up under."""


class StoreMissError(StoreError):
    """A store-only run needs results the store does not hold."""


def workload_signature(
    workload: ZooWorkload, matrices_per_network: Optional[int] = None
) -> str:
    """Content hash identifying one evaluation workload.

    Covers every network's full JSON form, every traffic matrix actually
    evaluated (respecting ``matrices_per_network``), per-network LLPD, and
    the workload's shaping parameters.  Two workloads hash equal iff the
    engine would produce identical outcomes for them, so the hash is safe
    to use as the storage key for results.

    The hash is memoized on the workload instance: figure functions call
    the engine once per (scheme, sweep point) over the same workload, and
    re-serializing every network and matrix each time is pure waste.
    Workloads must not be mutated mid-evaluation anyway (the engine and
    KSP-cache contracts already assume it), so the memo cannot go stale.
    """
    memo = getattr(workload, "_signature_memo", None)
    if memo is None:
        memo = {}
        workload._signature_memo = memo
    cached = memo.get(matrices_per_network)
    if cached is not None:
        return cached
    # Lazy workloads (e.g. repro.scenarios' 10^5-variant fleets) provide
    # their own content signature so hashing does not materialize every
    # variant; the contract is the same — equal signature iff the engine
    # would produce identical outcomes.
    content = getattr(workload, "content_signature", None)
    if callable(content):
        memo[matrices_per_network] = content(matrices_per_network)
        return memo[matrices_per_network]
    digest = hashlib.sha256()
    digest.update(f"repro-store|{STORE_FORMAT}".encode())
    digest.update(
        f"|W|{workload.locality!r}|{workload.growth_factor!r}"
        f"|{workload.seed!r}|{matrices_per_network!r}".encode()
    )
    for item in workload.networks:
        digest.update(b"|N|")
        digest.update(network_to_json(item.network).encode())
        digest.update(f"|{item.llpd!r}".encode())
        matrices = item.matrices
        if matrices_per_network is not None:
            matrices = matrices[:matrices_per_network]
        for tm in matrices:
            digest.update(b"|T|")
            digest.update(tm_to_json(tm).encode())
    memo[matrices_per_network] = digest.hexdigest()
    return memo[matrices_per_network]


def scheme_file_name(scheme: str) -> str:
    """Filesystem-safe stream file name for a scheme key.

    Scheme keys like ``LDR@h=0.11`` keep their punctuation; anything the
    filesystem might object to becomes ``_``, plus a short hash of the
    original key so that two keys which sanitize identically (``a/b`` vs
    ``a_b``) still get distinct streams — without the hash they would
    silently clobber each other's results on every alternating run.
    """
    if not scheme:
        raise ValueError("scheme key must be non-empty")
    sanitized = re.sub(r"[^A-Za-z0-9._@=+-]", "_", scheme)
    if sanitized != scheme:
        tag = hashlib.sha256(scheme.encode()).hexdigest()[:8]
        sanitized = f"{sanitized}-{tag}"
    return sanitized + ".jsonl"


# ----------------------------------------------------------------------
# Record conversion
# ----------------------------------------------------------------------
def _result_to_record(result: "NetworkResult") -> dict:
    return {
        "kind": "result",
        "index": result.index,
        "network_id": result.network_id,
        "network_name": result.network_name,
        "seconds": result.seconds,
        "paths_preloaded": result.paths_preloaded,
        "network_signature": result.network_signature,
        "outcomes": [asdict(outcome) for outcome in result.outcomes],
    }


def _result_from_record(record: dict) -> "NetworkResult":
    from repro.experiments.engine import NetworkResult

    index = record["index"]
    if not isinstance(index, int):
        raise ValueError(f"non-integer result index {index!r}")
    return NetworkResult(
        index=index,
        network_name=record["network_name"],
        network_id=record["network_id"],
        outcomes=[SchemeOutcome(**o) for o in record["outcomes"]],
        seconds=record["seconds"],
        paths_preloaded=record.get("paths_preloaded", 0),
        # Records from before cost-aware scheduling carry no network
        # signature; readers treat "" as "unknown", never as an error.
        network_signature=record.get("network_signature", ""),
    )


def _header_record(signature: str, scheme: str, n_networks: int) -> dict:
    return {
        "kind": "header",
        "format": STORE_FORMAT,
        "signature": signature,
        "scheme": scheme,
        "n_networks": n_networks,
    }


def _header_matches(header: dict, signature: str, scheme: str) -> bool:
    return (
        header.get("format") == STORE_FORMAT
        and header.get("signature") == signature
        and header.get("scheme") == scheme
    )


def _scan_stream(path: str) -> Tuple[Optional[dict], Dict[int, "NetworkResult"], int]:
    """Parse a stream file: (header, results by index, valid byte length).

    Walks complete (newline-terminated) lines from the start and stops at
    the first line that is not valid JSON or not a well-formed record —
    with an append-only writer that can only be a torn trailing write.
    ``valid`` is the byte offset just past the last good line, which is
    where a resuming writer truncates before appending.

    Returns ``header=None`` when the first line is not a header record
    (empty, corrupt, or foreign file).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header: Optional[dict] = None
    results: Dict[int, "NetworkResult"] = {}
    pos = 0
    valid = 0
    while True:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break  # unterminated tail: torn mid-write, ignore
        line = data[pos:newline]
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        if pos == 0:
            if record.get("kind") != "header":
                break
            header = record
        elif record.get("kind") == "result":
            try:
                parsed = _result_from_record(record)
            except (KeyError, TypeError, ValueError):
                break
            results[parsed.index] = parsed
        # Records of unknown kind are skipped, not fatal: a newer writer
        # may add annotations an older reader can safely ignore.
        pos = newline + 1
        valid = pos
    if header is None:
        return None, {}, 0
    return header, results, valid


@dataclass(frozen=True)
class TaskTiming:
    """The timing facet of one stored result record.

    What the cost model (:mod:`repro.experiments.cost`) replays:
    ``seconds`` measured for ``network_signature`` under the stream's
    scheme.  ``network_signature`` is empty on records written before
    signatures were stored — such timings still show up in ``store ls
    --timings`` totals but cannot be replayed by content.
    """

    index: int
    network_id: str
    network_signature: str
    seconds: float


def _scan_timings(path: str) -> Tuple[Optional[dict], List[TaskTiming]]:
    """Light scan of one stream: header plus per-result timing facets.

    Same walk-until-torn-line discipline as :func:`_scan_stream`, but
    outcomes are never materialized into :class:`SchemeOutcome` objects
    — the reader the cost model and ``store ls --timings`` share only
    needs (index, network, seconds) per record.  Later duplicates of an
    index win, matching :func:`_scan_stream`'s by-index dict semantics.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header: Optional[dict] = None
    by_index: Dict[int, TaskTiming] = {}
    pos = 0
    while True:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break
        try:
            record = json.loads(data[pos:newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        if pos == 0:
            if record.get("kind") != "header":
                break
            header = record
        elif record.get("kind") == "result":
            index = record.get("index")
            seconds = record.get("seconds")
            if not isinstance(index, int) or not isinstance(
                seconds, (int, float)
            ):
                break
            by_index[index] = TaskTiming(
                index=index,
                network_id=str(record.get("network_id", "")),
                network_signature=str(record.get("network_signature", "")),
                seconds=float(seconds),
            )
        pos = newline + 1
    if header is None:
        return None, []
    return header, [by_index[i] for i in sorted(by_index)]


class StoreWriter:
    """Appender for one (signature, scheme) stream.

    Opening with ``resume=True`` adopts an existing valid stream: its
    results are exposed as :attr:`stored` and any torn trailing line is
    truncated away before appending continues.  A missing, mismatched or
    headerless file — and any open with ``resume=False`` — starts the
    stream fresh (atomically, so a concurrent reader never sees a
    header-less file).
    """

    def __init__(
        self,
        path: "os.PathLike[str] | str",
        signature: str,
        scheme: str,
        n_networks: int,
        resume: bool = True,
    ) -> None:
        self._path = os.fspath(path)
        self.stored: Dict[int, "NetworkResult"] = {}
        os.makedirs(os.path.dirname(self._path) or ".", exist_ok=True)
        adopted = False
        if resume and os.path.exists(self._path):
            try:
                header, results, valid = _scan_stream(self._path)
            except OSError:
                header, results, valid = None, {}, 0
            if header is not None and _header_matches(header, signature, scheme):
                self.stored = results
                if valid < os.path.getsize(self._path):
                    with open(self._path, "r+b") as handle:
                        handle.truncate(valid)
                adopted = True
        if not adopted:
            tmp = self._path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(
                    _dump_line(_header_record(signature, scheme, n_networks))
                )
            os.replace(tmp, self._path)
        self._handle = open(self._path, "a", encoding="utf-8")

    def append(self, result: "NetworkResult") -> None:
        """Append one completed network's result as a single flushed line."""
        recorder = telemetry.recorder()
        with recorder.span("store_append"):
            self._handle.write(_dump_line(_result_to_record(result)))
            self._handle.flush()
        if recorder.enabled:
            recorder.counter("store.records_appended")

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _dump_line(record: dict) -> str:
    return json.dumps(record, separators=(",", ":")) + "\n"


class MultiStreamWriter:
    """Batched appender over the several streams of one plan run.

    A plan (:mod:`repro.experiments.plan`) writes to one stream per
    (scheme, sweep point) in a single engine pass; this writer holds one
    :class:`StoreWriter` per plan stream key so each stream resumes
    independently — a plan killed mid-run re-opens every stream and each
    one serves exactly the results it already holds.

    Opening two plan streams onto the same underlying file — same
    signature and a scheme key that sanitizes to the same file name —
    raises :class:`StoreError` immediately: two appenders interleaving
    records into one stream would corrupt the resume bookkeeping, and a
    plan that declares such streams is malformed.
    """

    def __init__(self, store: "ResultStore", resume: bool = True) -> None:
        self._store = store
        self._resume = resume
        self._writers: Dict[object, StoreWriter] = {}
        self._files: Dict[Tuple[str, str], object] = {}

    def open(
        self, key: object, signature: str, scheme: str, n_networks: int
    ) -> Dict[int, "NetworkResult"]:
        """Open (or adopt) one stream; returns its already-stored results."""
        if key in self._writers:
            raise StoreError(f"plan stream {key!r} opened twice")
        ident = (signature, scheme_file_name(scheme))
        clash = self._files.get(ident)
        if clash is not None:
            raise StoreError(
                f"plan streams {clash!r} and {key!r} both write "
                f"{signature}/{ident[1]}; scheme stream names must be "
                f"unique per workload"
            )
        writer = self._store.open_writer(
            signature, scheme, n_networks=n_networks, resume=self._resume
        )
        self._writers[key] = writer
        self._files[ident] = key
        return writer.stored

    def append(self, key: object, result: "NetworkResult") -> None:
        """Append one completed network's result to its stream."""
        self._writers[key].append(result)

    def close(self) -> None:
        """Close every stream, even if individual closes fail."""
        errors = []
        for writer in self._writers.values():
            try:
                writer.close()
            except OSError as exc:  # pragma: no cover - close rarely fails
                errors.append(exc)
        self._writers.clear()
        self._files.clear()
        if errors:
            raise errors[0]

    def __enter__(self) -> "MultiStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ResultStore:
    """A directory of result streams, keyed by (signature, scheme)."""

    def __init__(self, root: "os.PathLike[str] | str") -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Lifecycle tooling (the `store ls` / `store gc` CLI)
    # ------------------------------------------------------------------
    def list_streams(self, timings: bool = False) -> List[dict]:
        """One record per stream: signature, scheme, result count, size.

        Headerless or torn streams are reported with ``scheme=None`` and
        whatever results parsed before the corruption — visibility for
        ``store ls``, never an exception, since listing must work on the
        messes ``store gc`` exists to clean up.

        With ``timings=True`` each record gains ``seconds_total`` /
        ``seconds_mean`` over the stream's stored evaluation times
        (``None`` when no result parsed).  That mode walks each file
        once with the *light* timing scanner — record counts come from
        the same pass, so outcomes are never materialized just to be
        counted.
        """
        records: List[dict] = []
        if not self.root.is_dir():
            return records
        for stream in sorted(self.root.glob("*/*.jsonl")):
            facets: List[TaskTiming] = []
            if timings:
                try:
                    header, facets = _scan_timings(os.fspath(stream))
                except OSError:
                    header = None
                n_results = len(facets)
            else:
                try:
                    header, results, _ = _scan_stream(os.fspath(stream))
                except OSError:
                    header, results = None, {}
                n_results = len(results)
            stat = stream.stat()
            record = {
                "signature": stream.parent.name,
                "scheme": None if header is None else header.get("scheme"),
                "n_results": n_results,
                "n_networks": (
                    None if header is None else header.get("n_networks")
                ),
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
                "path": os.fspath(stream),
            }
            if timings:
                total = sum(t.seconds for t in facets)
                record["seconds_total"] = total if facets else None
                record["seconds_mean"] = (
                    total / len(facets) if facets else None
                )
            records.append(record)
        return records

    def gc(
        self,
        max_age_s: Optional[float] = None,
        keep_signatures: Optional[set] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Prune whole workload-signature directories; returns removed dirs.

        A directory in ``keep_signatures`` is never pruned — the
        allow-list is absolute protection, including from the age bound.
        Any other directory is removed when an allow-list is given at all,
        or when it is older than ``max_age_s`` (age = newest mtime of any
        file inside, so one live stream keeps its siblings).  With neither
        criterion enabled this removes nothing — a no-op gc must be
        explicit, not destructive.
        """
        import shutil
        import time as _time

        if max_age_s is None and keep_signatures is None:
            return []
        if now is None:
            now = _time.time()  # analysis: allow[D102] — gc ages by wall clock
        removed: List[str] = []
        if not self.root.is_dir():
            return removed
        for directory in sorted(p for p in self.root.iterdir() if p.is_dir()):
            signature = directory.name
            if keep_signatures is not None and signature in keep_signatures:
                continue
            prune = keep_signatures is not None
            if not prune and max_age_s is not None:
                mtimes = [f.stat().st_mtime for f in directory.glob("*")]
                newest = max(mtimes, default=directory.stat().st_mtime)
                if now - newest > max_age_s:
                    prune = True
            if prune:
                shutil.rmtree(directory)
                removed.append(os.fspath(directory))
        return removed

    def stream_timings(self, signature: str, scheme: str) -> List[TaskTiming]:
        """Stored per-network timings for one stream, strictly validated.

        The replay half of the cost model's learned table: measured
        ``seconds`` per (index, network signature) in index order.
        Returns ``[]`` when the stream does not exist; raises
        :class:`StoreMismatchError` on header disagreement, exactly like
        :meth:`load_results` — replayed timings obey the same key
        discipline as replayed results.
        """
        path = self.stream_path(signature, scheme)
        if not path.exists():
            return []
        header, timings = _scan_timings(os.fspath(path))
        if header is None:
            raise StoreMismatchError(f"{path}: no valid header record")
        if not _header_matches(header, signature, scheme):
            raise StoreMismatchError(
                f"{path}: header names "
                f"(format={header.get('format')!r}, "
                f"signature={header.get('signature')!r}, "
                f"scheme={header.get('scheme')!r}), "
                f"expected (format={STORE_FORMAT!r}, "
                f"signature={signature!r}, scheme={scheme!r})"
            )
        return timings

    def iter_timings(
        self,
    ) -> Iterator[Tuple[str, str, List[TaskTiming]]]:
        """(signature, scheme, timings) per valid stream, store-wide.

        The sweep half of the cost model's learned table: every
        readable stream's timing facets in one pass, without ever
        materializing outcomes.  Headerless/corrupt streams and streams
        whose header disagrees with their directory are *skipped* —
        a cost model must degrade to static predictions on a messy
        store, not crash the run it is trying to speed up.
        """
        if not self.root.is_dir():
            return
        for stream in sorted(self.root.glob("*/*.jsonl")):
            try:
                header, timings = _scan_timings(os.fspath(stream))
            except OSError:
                continue
            if header is None:
                continue
            signature = stream.parent.name
            if header.get("signature") != signature or not isinstance(
                header.get("scheme"), str
            ):
                continue
            yield signature, header["scheme"], timings

    def stream_path(self, signature: str, scheme: str) -> Path:
        return self.root / signature / scheme_file_name(scheme)

    def open_writer(
        self,
        signature: str,
        scheme: str,
        n_networks: int,
        resume: bool = True,
    ) -> StoreWriter:
        return StoreWriter(
            self.stream_path(signature, scheme),
            signature,
            scheme,
            n_networks,
            resume=resume,
        )

    def load_results(
        self, signature: str, scheme: str
    ) -> Dict[int, "NetworkResult"]:
        """Stored results for a key, strictly validated.

        Returns ``{}`` when the stream does not exist.  Raises
        :class:`StoreMismatchError` when a file is present but its header
        is missing or names a different key than it was looked up under —
        such results must never be served.
        """
        path = self.stream_path(signature, scheme)
        if not path.exists():
            return {}
        header, results, _ = _scan_stream(os.fspath(path))
        if header is None:
            raise StoreMismatchError(f"{path}: no valid header record")
        if not _header_matches(header, signature, scheme):
            raise StoreMismatchError(
                f"{path}: header names "
                f"(format={header.get('format')!r}, "
                f"signature={header.get('signature')!r}, "
                f"scheme={header.get('scheme')!r}), "
                f"expected (format={STORE_FORMAT!r}, "
                f"signature={signature!r}, scheme={scheme!r})"
            )
        return results

"""Experiment harness: workloads, runners and per-figure entry points.

Shared by the benchmark suite (one bench per paper figure) and the example
scripts.  :mod:`repro.experiments.workloads` builds (network, traffic
matrix ensemble) pairs; :mod:`repro.experiments.runner` evaluates routing
schemes over them; :mod:`repro.experiments.plan` declares whole-figure
evaluation grids (every scheme and sweep point) as flat batches;
:mod:`repro.experiments.engine` executes plans on one shared process pool
with persistent KSP caches; :mod:`repro.experiments.cost` predicts
per-task costs (static shape model plus measured timings replayed from
the result store) so schedulers can order longest-first and dispatch can
balance shard makespans; :mod:`repro.experiments.spec` names schemes
declaratively (picklable, registry-resolved) so evaluations can cross
process and host boundaries; :mod:`repro.experiments.dispatch` shards a
plan into self-contained manifests, runs them in worker subprocesses and
merges their result stores; :mod:`repro.experiments.figures` computes
each paper figure's series; :mod:`repro.experiments.render` prints them
as text.
"""

from repro.experiments.workloads import ZooWorkload, build_zoo_workload
from repro.experiments.runner import SchemeOutcome, evaluate_scheme
from repro.experiments.plan import (
    EvalPlan,
    EvalTask,
    InterleaveScheduler,
    PlanReport,
    Scheduler,
    execute_plan,
)
from repro.experiments.engine import (
    EngineReport,
    ExperimentEngine,
    NetworkResult,
)
from repro.experiments.cost import CostModel, LptScheduler, make_scheduler
from repro.experiments.spec import SchemeSpec, registered_schemes

__all__ = [
    "ZooWorkload",
    "build_zoo_workload",
    "SchemeOutcome",
    "evaluate_scheme",
    "EvalPlan",
    "EvalTask",
    "PlanReport",
    "Scheduler",
    "InterleaveScheduler",
    "execute_plan",
    "EngineReport",
    "ExperimentEngine",
    "NetworkResult",
    "CostModel",
    "LptScheduler",
    "make_scheduler",
    "SchemeSpec",
    "registered_schemes",
]

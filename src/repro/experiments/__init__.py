"""Experiment harness: workloads, runners and per-figure entry points.

Shared by the benchmark suite (one bench per paper figure) and the example
scripts.  :mod:`repro.experiments.workloads` builds (network, traffic
matrix ensemble) pairs; :mod:`repro.experiments.runner` evaluates routing
schemes over them; :mod:`repro.experiments.figures` computes each paper
figure's series; :mod:`repro.experiments.render` prints them as text.
"""

from repro.experiments.workloads import ZooWorkload, build_zoo_workload
from repro.experiments.runner import SchemeOutcome, evaluate_scheme

__all__ = [
    "ZooWorkload",
    "build_zoo_workload",
    "SchemeOutcome",
    "evaluate_scheme",
]

"""Experiment harness: workloads, runners and per-figure entry points.

Shared by the benchmark suite (one bench per paper figure) and the example
scripts.  :mod:`repro.experiments.workloads` builds (network, traffic
matrix ensemble) pairs; :mod:`repro.experiments.runner` evaluates routing
schemes over them; :mod:`repro.experiments.plan` declares whole-figure
evaluation grids (every scheme and sweep point) as flat batches;
:mod:`repro.experiments.engine` executes plans on one shared process pool
with persistent KSP caches; :mod:`repro.experiments.spec` names schemes
declaratively (picklable, registry-resolved) so evaluations can cross
process and host boundaries; :mod:`repro.experiments.dispatch` shards a
plan into self-contained manifests, runs them in worker subprocesses and
merges their result stores; :mod:`repro.experiments.figures` computes
each paper figure's series; :mod:`repro.experiments.render` prints them
as text.
"""

from repro.experiments.workloads import ZooWorkload, build_zoo_workload
from repro.experiments.runner import SchemeOutcome, evaluate_scheme
from repro.experiments.plan import (
    EvalPlan,
    EvalTask,
    PlanReport,
    execute_plan,
)
from repro.experiments.engine import (
    EngineReport,
    ExperimentEngine,
    NetworkResult,
)
from repro.experiments.spec import SchemeSpec, registered_schemes

__all__ = [
    "ZooWorkload",
    "build_zoo_workload",
    "SchemeOutcome",
    "evaluate_scheme",
    "EvalPlan",
    "EvalTask",
    "PlanReport",
    "execute_plan",
    "EngineReport",
    "ExperimentEngine",
    "NetworkResult",
    "SchemeSpec",
    "registered_schemes",
]

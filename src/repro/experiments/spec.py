"""Declarative, picklable scheme specifications.

The engine's factories have historically been closures
(``lambda item: B4Routing(headroom=h, cache=item.cache)``), which forces
the process pool onto the ``fork`` start method and keeps every evaluation
on one host: a closure can cross neither a ``spawn`` boundary nor a
machine boundary.  Everything else the engine consumes already serializes
(networks via :mod:`repro.net.io`, traffic matrices via
:mod:`repro.tm.matrix`, results via :mod:`repro.experiments.store`); this
module closes the last gap.

A :class:`SchemeSpec` is data — a registered scheme name plus a
JSON-native params dict — and resolves to a concrete
:class:`~repro.routing.base.RoutingScheme` only on the worker side, via
the registry below.  Specs are callable with the same
``(item) -> scheme`` signature as the closures they replace, so every
consumer of a ``SchemeFactory`` (engine, runner, figures) accepts either
interchangeably; ad-hoc closures remain supported for experiments the
registry does not cover, at the cost of fork-only parallelism.

Registry coverage is the paper's full scheme set: SP/ECMP (§3 baseline),
B4 and MPLS-TE (greedy, §3), MinMax (TeXCP-style, with ``k`` for the
"K=10" variant), LDR / latency-optimal (§5, with headroom), and the
link-based LP baseline of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.experiments.workloads import NetworkWorkload
from repro.routing import (
    B4Routing,
    EcmpRouting,
    LatencyOptimalRouting,
    LinkBasedOptimalRouting,
    MinMaxRouting,
    MplsTeRouting,
    ShortestPathRouting,
)
from repro.routing.base import RoutingScheme

#: A builder receives the per-network workload item (for its shared KSP
#: cache) plus the spec's params as keyword arguments.  Explicit keyword
#: signatures mean a typo'd param raises ``TypeError`` at build time
#: instead of being silently dropped.
SchemeBuilder = Callable[..., RoutingScheme]

_REGISTRY: Dict[str, SchemeBuilder] = {}


class UnknownSchemeError(KeyError):
    """A spec names a scheme the registry does not know."""


def register_scheme(name: str, *aliases: str) -> Callable[[SchemeBuilder], SchemeBuilder]:
    """Register a builder under ``name`` (and ``aliases``).

    Re-registering an existing name replaces it — deliberate, so tests and
    downstream code can shadow a scheme with an instrumented variant.

    Caveat: a ``spawn`` pool worker and a shard-dispatch worker resolve
    specs against a *freshly imported* registry.  Registrations made at
    runtime (not at import time of a module the worker also imports) are
    invisible there — shadow schemes in a module import, or stick to
    ``fork``/serial runs when instrumenting.
    """
    def decorate(builder: SchemeBuilder) -> SchemeBuilder:
        for key in (name, *aliases):
            _REGISTRY[key] = builder
        return builder
    return decorate


def registered_schemes() -> List[str]:
    """All resolvable scheme names (aliases included), sorted."""
    return sorted(_REGISTRY)


@dataclass
class SchemeSpec:
    """A scheme by name + params: picklable, JSON-round-trippable, callable.

    ``params`` must stay JSON-native (numbers, strings, bools, None) so a
    spec survives both ``pickle`` (spawn pools) and JSON (shard manifests)
    unchanged.  Calling a spec with a workload item builds the concrete
    scheme through the registry, exactly like the closure it replaces::

        spec = SchemeSpec("LDR", {"headroom": 0.1})
        scheme = spec(item)          # LatencyOptimalRouting(h=0.1, item.cache)
    """

    scheme: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize to a plain dict: Mapping views and dataclass asdict()
        # output all pickle/JSON alike afterwards.
        self.params = dict(self.params)

    def __call__(self, item: NetworkWorkload) -> RoutingScheme:
        return build_scheme(self, item)

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-native dict; inverse of :meth:`from_jsonable`."""
        return {"scheme": self.scheme, "params": dict(self.params)}

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, object]) -> "SchemeSpec":
        if "scheme" not in payload:
            raise ValueError(f"scheme spec payload without 'scheme': {payload!r}")
        scheme = payload["scheme"]
        if not isinstance(scheme, str):
            raise ValueError(f"scheme name must be a string, got {scheme!r}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError(f"scheme params must be a mapping, got {params!r}")
        return cls(scheme=scheme, params=dict(params))


def build_scheme(spec: SchemeSpec, item: NetworkWorkload) -> RoutingScheme:
    """Resolve a spec against the registry and build the scheme."""
    builder = _REGISTRY.get(spec.scheme)
    if builder is None:
        raise UnknownSchemeError(
            f"unknown scheme {spec.scheme!r}; registered: "
            f"{', '.join(registered_schemes())}"
        )
    return builder(item, **spec.params)


def is_spawn_safe(factory: object) -> bool:
    """Whether a factory can cross a ``spawn``/host boundary.

    Registry specs are plain data and always qualify; closures (and any
    other callable) are assumed fork-only — attempting to pickle arbitrary
    callables to find out would import-side-effect the worker.
    """
    return isinstance(factory, SchemeSpec)


# ----------------------------------------------------------------------
# The paper's schemes
# ----------------------------------------------------------------------
@register_scheme("SP", "ShortestPath")
def _build_sp(item: NetworkWorkload) -> RoutingScheme:
    return ShortestPathRouting(cache=item.cache)


@register_scheme("ECMP")
def _build_ecmp(item: NetworkWorkload, max_paths: int = 16) -> RoutingScheme:
    return EcmpRouting(cache=item.cache, max_paths=max_paths)


@register_scheme("MPLS-TE", "MplsTe")
def _build_mplste(
    item: NetworkWorkload,
    headroom: float = 0.0,
    max_paths_per_aggregate: int = 25,
    order: str = "demand",
) -> RoutingScheme:
    return MplsTeRouting(
        headroom=headroom,
        max_paths_per_aggregate=max_paths_per_aggregate,
        order=order,
        cache=item.cache,
    )


@register_scheme("B4")
def _build_b4(
    item: NetworkWorkload,
    headroom: float = 0.0,
    max_paths_per_aggregate: int = 25,
) -> RoutingScheme:
    return B4Routing(
        headroom=headroom,
        max_paths_per_aggregate=max_paths_per_aggregate,
        cache=item.cache,
    )


@register_scheme("MinMax")
def _build_minmax(
    item: NetworkWorkload,
    k: Optional[int] = None,
    stretch_bound: Optional[float] = None,
    approx_gap: Optional[float] = None,
    approx_max_iterations: int = 300,
) -> RoutingScheme:
    return MinMaxRouting(
        k=k,
        stretch_bound=stretch_bound,
        approx_gap=approx_gap,
        approx_max_iterations=approx_max_iterations,
        cache=item.cache,
    )


@register_scheme("MinMaxK10")
def _build_minmax_k10(item: NetworkWorkload) -> RoutingScheme:
    return MinMaxRouting(k=10, cache=item.cache)


@register_scheme("MinMaxK10Approx")
def _build_minmax_k10_approx(
    item: NetworkWorkload,
    approx_gap: float = 0.05,
    approx_max_iterations: int = 300,
) -> RoutingScheme:
    """MinMax K=10 via the certified approximate fast path (screening)."""
    return MinMaxRouting(
        k=10,
        approx_gap=approx_gap,
        approx_max_iterations=approx_max_iterations,
        cache=item.cache,
    )


@register_scheme("LDR", "LatencyOptimal", "Optimal")
def _build_ldr(
    item: NetworkWorkload,
    headroom: float = 0.0,
    initial_k: int = 1,
    grow_step: int = 2,
    max_paths: int = 50,
) -> RoutingScheme:
    return LatencyOptimalRouting(
        headroom=headroom,
        initial_k=initial_k,
        grow_step=grow_step,
        max_paths=max_paths,
        cache=item.cache,
    )


@register_scheme("LinkBased")
def _build_link_based(
    item: NetworkWorkload, headroom: float = 0.0
) -> RoutingScheme:
    return LinkBasedOptimalRouting(headroom=headroom)

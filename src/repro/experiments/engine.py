"""Parallel experiment engine: shard networks across a process pool.

The paper evaluates 116 networks x 100 traffic matrices; this repo's
runner historically walked that grid strictly serially and rebuilt every
network's KSP cache from cold on each run.  Both costs are avoidable:
per-network evaluations are *pure and independent* — a scheme instance,
its KSP cache and its placements touch exactly one
:class:`~repro.experiments.workloads.NetworkWorkload` — so they commute
and can be fanned out across processes, and the k-shortest-paths results
("the bottleneck is not the linear optimizer", paper §5) can be persisted
between runs via :meth:`KspCache.dump` / :meth:`KspCache.load`.

Sharding/determinism contract
-----------------------------

* The unit of work is one network (one ``NetworkWorkload``): all of its
  traffic matrices are evaluated in order inside a single process, against
  a single KSP cache.  Nothing is shared *across* networks, so the result
  for network ``i`` is a pure function of ``workload.networks[i]`` and the
  scheme factory.
* Consequently ``run()`` returns **bit-identical** outcome lists for any
  ``n_workers``: results are streamed back per network (in completion
  order, exposed by :meth:`ExperimentEngine.stream`) and re-assembled into
  workload order before they are returned.
* Worker processes prefer the ``fork`` start method so that the scheme
  factory (possibly a closure) and the workload never need to be pickled;
  only network indices travel to the workers and only
  :class:`SchemeOutcome` lists travel back.  Where ``fork`` is unavailable
  (Windows, macOS spawn-default interpreters) and the factory is a
  picklable :class:`~repro.experiments.spec.SchemeSpec`, the engine falls
  back to a ``spawn`` pool: each task ships the spec plus the item's
  serialized network/matrices/KSP-paths and produces the same outcomes
  (warm-cache state affects only timing, never results).  Only when
  neither start method can run the factory does the engine degrade to the
  deterministic serial path — same results, no parallelism — and it warns
  (:class:`RuntimeWarning`) when doing so, since silently losing
  parallelism is a performance bug waiting to be misread.
* With a ``cache_dir``, each worker warms its network's KSP cache from
  ``ksp-<network_signature>.json`` when a valid file exists and dumps the
  (possibly extended) cache back after evaluating.  Files are keyed by a
  content hash of the network, so stale caches are rejected rather than
  trusted, and writes are atomic (write-to-temp + rename) so concurrent
  shards never observe torn files.
* With a ``store_dir``, completed per-network results are additionally
  appended to a :class:`~repro.experiments.store.ResultStore` stream keyed
  by (workload signature, scheme name), and networks whose results are
  already stored are **skipped** — an interrupted run restarted against
  the same store evaluates only the missing networks, and a fully-stored
  run constructs no scheme at all.  Because each stored result is the pure
  per-network function's output round-tripped through JSON (floats are
  exact), the bit-identical-for-any-worker-count contract extends to
  stored results.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import multiprocessing

from repro.experiments.runner import SchemeOutcome
from repro.experiments.workloads import NetworkWorkload, ZooWorkload
from repro.net.paths import KspCache, ksp_cache_path
from repro.routing.base import RoutingScheme

SchemeFactory = Callable[[NetworkWorkload], RoutingScheme]

#: Worker-side state inherited through ``fork``, keyed by a per-run token
#: so concurrently advanced streams (different engines, different threads)
#: never clobber each other; see :meth:`_stream_parallel`.
_FORK_STATE: Dict[int, Tuple] = {}
_FORK_STATE_LOCK = threading.Lock()
_FORK_TOKENS = itertools.count()


def network_id(item: NetworkWorkload, index: int) -> str:
    """Unique id of one workload entry.

    Zoo names are not unique (two generated topologies can share one), so
    outcome grouping keys on this id: position in the workload plus name.
    """
    return f"{index}:{item.network.name}"


@dataclass
class NetworkResult:
    """Everything one shard reports back for one network."""

    index: int
    network_name: str
    network_id: str
    outcomes: List[SchemeOutcome]
    #: Wall-clock seconds spent evaluating this network's matrices
    #: (excluding cache load/dump I/O).
    seconds: float
    #: KSP paths already materialized before evaluation started — nonzero
    #: means the persistent cache produced a warm start.
    paths_preloaded: int = 0


@dataclass
class EngineReport:
    """Result of one engine run, in workload order."""

    results: List[NetworkResult] = field(default_factory=list)

    @property
    def outcomes(self) -> List[SchemeOutcome]:
        """All outcomes flattened in workload order (network, then matrix)."""
        return [o for result in self.results for o in result.outcomes]

    @property
    def total_seconds(self) -> float:
        """Sum of per-network evaluation times (CPU-side, not wall clock)."""
        return sum(result.seconds for result in self.results)

    def timings(self) -> List[tuple]:
        """(network_id, seconds) pairs, workload order."""
        return [(r.network_id, r.seconds) for r in self.results]


class ExperimentEngine:
    """Evaluates a routing scheme over a :class:`ZooWorkload`, sharded.

    ``n_workers=1`` runs in-process (deterministic serial fallback);
    ``n_workers>1`` shards networks across a ``fork``-based process pool.
    ``cache_dir`` enables persistent KSP caches keyed by network content
    hash; ``cache_max_paths`` bounds how many paths per pair those cache
    files keep.  ``store_dir`` enables the durable result store: stored
    networks are served without evaluation (unless ``resume`` is false,
    which discards the existing stream first), and ``store_only`` forbids
    evaluation altogether — missing results raise
    :class:`~repro.experiments.store.StoreMissError` instead of being
    computed.  See the module docstring for the full contract.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        store_dir: Optional[os.PathLike] = None,
        resume: bool = True,
        store_only: bool = False,
        cache_max_paths: Optional[int] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        if store_only and store_dir is None:
            raise ValueError("store_only runs need a store_dir")
        self.n_workers = n_workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.resume = resume
        self.store_only = store_only
        self.cache_max_paths = cache_max_paths

    # ------------------------------------------------------------------
    def run(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int] = None,
        scheme: Optional[str] = None,
    ) -> EngineReport:
        """Evaluate every network; results come back in workload order."""
        results = sorted(
            self.stream(scheme_factory, workload, matrices_per_network, scheme),
            key=lambda result: result.index,
        )
        return EngineReport(results=results)

    def stream(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int] = None,
        scheme: Optional[str] = None,
    ) -> Iterator[NetworkResult]:
        """Yield one :class:`NetworkResult` per network as it completes.

        Serial runs yield in workload order; parallel runs yield in
        completion order (callers needing workload order use :meth:`run`).
        Store-backed runs yield stored results first (in workload order),
        then freshly evaluated ones; ``scheme`` names the store stream and
        is required when a ``store_dir`` is configured.
        """
        if not workload.networks:
            return iter(())
        if self.store_dir is not None:
            return self._stream_stored(
                scheme_factory, workload, matrices_per_network, scheme
            )
        return self._stream_fresh(
            scheme_factory,
            workload,
            matrices_per_network,
            list(range(len(workload.networks))),
        )

    # ------------------------------------------------------------------
    def _stream_stored(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int],
        scheme: Optional[str],
    ) -> Iterator[NetworkResult]:
        """Serve stored results, evaluate (and append) only the rest."""
        from repro.experiments.store import (
            ResultStore,
            StoreMissError,
            workload_signature,
        )

        if not scheme:
            raise ValueError("store-backed runs need a scheme name")
        store = ResultStore(self.store_dir)
        signature = workload_signature(workload, matrices_per_network)
        total = len(workload.networks)

        if self.store_only:
            stored = store.load_results(signature, scheme)
            missing = [i for i in range(total) if i not in stored]
            if missing:
                raise StoreMissError(
                    f"store {store.stream_path(signature, scheme)} holds "
                    f"{total - len(missing)}/{total} networks; missing "
                    f"indices {missing[:8]}{'...' if len(missing) > 8 else ''}"
                )
            for index in range(total):
                yield stored[index]
            return

        writer = store.open_writer(
            signature, scheme, n_networks=total, resume=self.resume
        )
        try:
            stored = {
                index: result
                for index, result in writer.stored.items()
                if 0 <= index < total
            }
            for index in sorted(stored):
                yield stored[index]
            missing = [i for i in range(total) if i not in stored]
            for result in self._stream_fresh(
                scheme_factory, workload, matrices_per_network, missing
            ):
                writer.append(result)
                yield result
        finally:
            writer.close()

    def _stream_fresh(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int],
        indices: List[int],
    ) -> Iterator[NetworkResult]:
        if not indices:
            return iter(())
        workers = min(self.n_workers, len(indices))
        if workers > 1:
            from repro.experiments.spec import is_spawn_safe

            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                return self._stream_parallel(
                    scheme_factory, workload, matrices_per_network, indices,
                    workers,
                )
            if "spawn" in methods and is_spawn_safe(scheme_factory):
                return self._stream_spawn(
                    scheme_factory, workload, matrices_per_network, indices,
                    workers,
                )
            if "spawn" in methods:
                warnings.warn(
                    "fork start method unavailable and the scheme factory "
                    "is not a picklable SchemeSpec (see "
                    "repro.experiments.spec); falling back to serial "
                    "evaluation",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                warnings.warn(
                    "no usable multiprocessing start method (need fork or "
                    "spawn); falling back to serial evaluation",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return self._stream_serial(
            scheme_factory, workload, matrices_per_network, indices
        )

    def _stream_serial(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int],
        indices: List[int],
    ) -> Iterator[NetworkResult]:
        for index in indices:
            yield self._evaluate_network(
                scheme_factory, workload.networks[index],
                matrices_per_network, index,
            )

    def _stream_parallel(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int],
        indices: List[int],
        workers: int,
    ) -> Iterator[NetworkResult]:
        # Workers are forked, so the factory/workload (closures, caches,
        # live generators — none of it picklable) is inherited by memory
        # image instead of serialized.  Only the run token and the network
        # index cross the pipe.
        context = multiprocessing.get_context("fork")
        with _FORK_STATE_LOCK:
            token = next(_FORK_TOKENS)
            _FORK_STATE[token] = (
                self, scheme_factory, workload, matrices_per_network
            )
        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            pending = {
                pool.submit(_forked_evaluate, token, index) for index in indices
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        finally:
            # A consumer abandoning the iterator early must not wait out
            # the whole workload: drop everything not yet started.
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            with _FORK_STATE_LOCK:
                _FORK_STATE.pop(token, None)

    def _stream_spawn(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int],
        indices: List[int],
        workers: int,
    ) -> Iterator[NetworkResult]:
        # Spawned workers share no memory with the parent, so each task
        # carries everything it needs in picklable form: the spec, the
        # item's network and matrices (plain data), and the KSP cache's
        # materialized paths (its dump() payload, bounded like persisted
        # cache files — the live Yen generators cannot cross the boundary,
        # but they rebuild lazily on demand).  Tasks are submitted lazily,
        # a bounded window at a time: serializing the whole workload into
        # the executor up front would hold every network's matrices and
        # cache dump in flight at once.
        context = multiprocessing.get_context("spawn")
        engine_kwargs = dict(
            n_workers=1,
            cache_dir=self.cache_dir,
            cache_max_paths=self.cache_max_paths,
        )

        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

            def submit(index: int):
                item = workload.networks[index]
                matrices = item.matrices
                if matrices_per_network is not None:
                    matrices = matrices[:matrices_per_network]
                return pool.submit(
                    _spawned_evaluate,
                    engine_kwargs,
                    scheme_factory,
                    item.network,
                    item.llpd,
                    matrices,
                    item.cache.dump(max_paths_per_pair=self.cache_max_paths),
                    matrices_per_network,
                    index,
                )

            remaining = iter(indices)
            pending = {
                submit(index)
                for index in itertools.islice(remaining, 2 * workers)
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for index in itertools.islice(remaining, 1):
                        pending.add(submit(index))
                    yield future.result()
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    def _evaluate_network(
        self,
        scheme_factory: SchemeFactory,
        item: NetworkWorkload,
        matrices_per_network: Optional[int],
        index: int,
    ) -> NetworkResult:
        """Evaluate one workload item, reporting it as network ``index``.

        ``index`` is the item's position in the *full* workload — shard
        workers (:mod:`repro.experiments.dispatch`) pass the original
        global index with a locally reconstructed item, so ids and stored
        streams line up across hosts.
        """
        cache_path = self._cache_path(item)
        preloaded = 0
        if cache_path is not None:
            loaded = KspCache.try_load_file(cache_path, item.network)
            if loaded is not None:
                # Swap the cache on a copy: the caller's workload must not
                # be mutated differently by serial vs parallel runs (the
                # fork path only ever touches the child's memory image).
                item = replace(item, cache=loaded)
                preloaded = self._count_paths(item)
        matrices = item.matrices
        if matrices_per_network is not None:
            matrices = matrices[:matrices_per_network]

        uid = network_id(item, index)
        start = time.perf_counter()
        scheme = scheme_factory(item)
        outcomes = []
        for tm in matrices:
            placement = scheme.place(item.network, tm)
            outcomes.append(
                SchemeOutcome(
                    network_name=item.network.name,
                    llpd=item.llpd,
                    congested_fraction=placement.congested_pair_fraction(),
                    latency_stretch=placement.total_latency_stretch(),
                    max_path_stretch=placement.max_path_stretch(),
                    max_utilization=placement.max_utilization(),
                    fits=placement.fits_all_traffic,
                    network_id=uid,
                )
            )
        seconds = time.perf_counter() - start
        if cache_path is not None:
            if (
                not os.path.exists(cache_path)
                or self._count_paths(item) != preloaded
            ):
                item.cache.dump_file(
                    cache_path, max_paths_per_pair=self.cache_max_paths
                )
            else:
                # Skip the rewrite when evaluation added nothing: a fully-
                # warm repeat run would otherwise re-serialize every file
                # untouched.  Touch it instead, so the LRU sweep
                # (sweep_ksp_cache_dir) sees use, not just writes.
                try:
                    os.utime(cache_path)
                except OSError:
                    pass
        return NetworkResult(
            index=index,
            network_name=item.network.name,
            network_id=uid,
            outcomes=outcomes,
            seconds=seconds,
            paths_preloaded=preloaded,
        )

    def _cache_path(self, item: NetworkWorkload) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return ksp_cache_path(self.cache_dir, item.network)

    @staticmethod
    def _count_paths(item: NetworkWorkload) -> int:
        """Total materialized KSP paths in a workload item's cache."""
        return sum(
            item.cache.count_cached(src, dst)
            for src, dst in item.network.node_pairs()
        )


def _forked_evaluate(token: int, index: int) -> NetworkResult:
    """Worker entry point: evaluate one network from the inherited state."""
    engine, factory, workload, matrices_per_network = _FORK_STATE[token]
    return engine._evaluate_network(
        factory, workload.networks[index], matrices_per_network, index
    )


def _spawned_evaluate(
    engine_kwargs: dict,
    factory: SchemeFactory,
    network,
    llpd: float,
    matrices: list,
    cache_payload: dict,
    matrices_per_network: Optional[int],
    index: int,
) -> NetworkResult:
    """Spawn-pool entry point: rebuild the item, evaluate, ship back."""
    from repro.net.paths import KspCacheMismatchError

    cache = None
    try:
        cache = KspCache.load(cache_payload, network)
    except KspCacheMismatchError:
        pass  # cold cache; correctness unaffected
    item = NetworkWorkload(
        network=network, llpd=llpd, matrices=matrices, cache=cache
    )
    engine = ExperimentEngine(**engine_kwargs)
    return engine._evaluate_network(factory, item, matrices_per_network, index)

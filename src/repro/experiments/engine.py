"""Parallel experiment engine: one shared pool for whole evaluation plans.

The paper evaluates 116 networks x 100 traffic matrices; this repo's
runner historically walked that grid strictly serially and rebuilt every
network's KSP cache from cold on each run.  Both costs are avoidable:
per-network evaluations are *pure and independent* — a scheme instance,
its KSP cache and its placements touch exactly one
:class:`~repro.experiments.workloads.NetworkWorkload` — so they commute
and can be fanned out across processes, and the k-shortest-paths results
("the bottleneck is not the linear optimizer", paper §5) can be persisted
between runs via :meth:`KspCache.dump` / :meth:`KspCache.load`.

The unit of execution is an :class:`~repro.experiments.plan.EvalPlan`: a
flat batch of (stream, network-index) tasks spanning every scheme and
sweep point of a figure.  :meth:`ExperimentEngine.run_plan` executes an
entire plan on **one** process pool, sequencing tasks through a
pluggable :class:`~repro.experiments.plan.Scheduler` (round-robin
interleave by default; cost-aware longest-first via
:class:`~repro.experiments.cost.LptScheduler`); the classic
single-scheme entry points (:meth:`run`, :meth:`stream`) are one-stream
plans, so both paths share one execution spine and one determinism
contract.

Sharding/determinism contract
-----------------------------

* The unit of work is one task — one network (one ``NetworkWorkload``)
  of one stream: all of its traffic matrices are evaluated in order
  inside a single process, against a single KSP cache.  Nothing is
  shared *across* tasks, so each task's result is a pure function of its
  workload item and scheme factory.  (Warm KSP-cache state affects only
  timing, never results.)
* Consequently plan execution returns **bit-identical** outcome lists
  for any ``n_workers`` *and any task order* (schedulers sequence, they
  never re-shard) — and bit-identical to running each stream through a
  separate ``evaluate_scheme`` call, which is why the figure layer
  could move from per-(scheme, sweep-point) calls to whole-figure plans
  without changing a single output.
* Worker processes prefer the ``fork`` start method so that scheme
  factories (possibly closures) and workloads never need to be pickled;
  only (stream key, network index) tasks travel to the workers and only
  :class:`NetworkResult` values travel back.  Where ``fork`` is
  unavailable (Windows, macOS spawn-default interpreters) and every
  factory is a picklable :class:`~repro.experiments.spec.SchemeSpec`,
  the engine falls back to a single ``spawn`` pool: each task ships its
  spec plus the item's serialized network/matrices/KSP-paths and
  produces the same outcomes.  Only when neither start method can run
  the plan does the engine degrade to the deterministic serial path —
  same results, no parallelism — and it logs a warning on the ``repro``
  logger (and bumps the ``engine.serial_fallback`` trace counter) when
  doing so, since silently losing parallelism is a performance bug
  waiting to be misread.
* With a ``cache_dir``, each worker warms its network's KSP cache from
  ``ksp-<network_signature>.json`` when a valid file exists and dumps the
  (possibly extended) cache back after evaluating.  Files are keyed by a
  content hash of the network, so stale caches are rejected rather than
  trusted, and writes are atomic (write-to-temp + rename) so concurrent
  shards never observe torn files.
* With a ``store_dir``, completed per-network results are additionally
  appended to the plan's result-store streams — one
  :class:`~repro.experiments.store.ResultStore` stream per (workload
  signature, scheme name), via the batched
  :class:`~repro.experiments.store.MultiStreamWriter` — and networks
  whose results are already stored are **skipped**: an interrupted plan
  restarted against the same store evaluates only the missing tasks of
  each stream, and a fully-stored plan constructs no scheme at all.
  Because each stored result is the pure per-network function's output
  round-tripped through JSON (floats are exact), the
  bit-identical-for-any-worker-count contract extends to stored results.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import multiprocessing

from repro.experiments import telemetry
from repro.experiments.plan import (
    EvalPlan,
    EvalTask,
    InterleaveScheduler,
    PlanReport,
    Scheduler,
)
from repro.experiments.runner import SchemeOutcome
from repro.experiments.workloads import NetworkWorkload, ZooWorkload
from repro.logutil import get_logger
from repro.net.paths import KspCache, ksp_cache_path, network_signature
from repro.routing.base import RoutingScheme

logger = get_logger(__name__)

SchemeFactory = Callable[[NetworkWorkload], RoutingScheme]

#: Worker-side state inherited through ``fork``, keyed by a per-run token
#: so concurrently advanced streams (different engines, different threads)
#: never clobber each other; see :meth:`_stream_plan_parallel`.
_FORK_STATE: Dict[int, Tuple] = {}
_FORK_STATE_LOCK = threading.Lock()
_FORK_TOKENS = itertools.count()


def network_id(item: NetworkWorkload, index: int) -> str:
    """Unique id of one workload entry.

    Zoo names are not unique (two generated topologies can share one), so
    outcome grouping keys on this id: position in the workload plus name.
    """
    return f"{index}:{item.network.name}"


@dataclass
class NetworkResult:
    """Everything one shard reports back for one network."""

    index: int
    network_name: str
    network_id: str
    outcomes: List[SchemeOutcome]
    #: Wall-clock seconds spent evaluating this network's matrices
    #: (excluding cache load/dump I/O).
    seconds: float
    #: KSP paths already materialized before evaluation started — nonzero
    #: means the persistent cache produced a warm start.
    paths_preloaded: int = 0
    #: Content hash of the evaluated network
    #: (:func:`repro.net.paths.network_signature`).  Persisted with the
    #: result so the cost model can replay measured ``seconds`` for the
    #: same network under any workload; empty on records written before
    #: signatures were stored.
    network_signature: str = ""


@dataclass
class EngineReport:
    """Result of one single-scheme engine run, in workload order."""

    results: List[NetworkResult] = field(default_factory=list)

    @property
    def outcomes(self) -> List[SchemeOutcome]:
        """All outcomes flattened in workload order (network, then matrix)."""
        return [o for result in self.results for o in result.outcomes]

    @property
    def total_seconds(self) -> float:
        """Sum of per-network evaluation times (CPU-side, not wall clock)."""
        return sum(result.seconds for result in self.results)

    def timings(self) -> List[Tuple[str, float]]:
        """(network_id, seconds) pairs, workload order."""
        return [(r.network_id, r.seconds) for r in self.results]


class ExperimentEngine:
    """Executes evaluation plans (and single schemes) over shared pools.

    ``n_workers=1`` runs in-process (deterministic serial fallback);
    ``n_workers>1`` shards tasks across one ``fork``- or ``spawn``-based
    process pool for the entire plan.  ``cache_dir`` enables persistent
    KSP caches keyed by network content hash; ``cache_max_paths`` bounds
    how many paths per pair those cache files keep.  ``store_dir``
    enables the durable result store: stored networks are served without
    evaluation (unless ``resume`` is false, which discards the existing
    streams first), and ``store_only`` forbids evaluation altogether —
    missing results raise
    :class:`~repro.experiments.store.StoreMissError` instead of being
    computed.  ``scheduler`` picks the default task sequencing policy
    for plan runs — a :class:`~repro.experiments.plan.Scheduler`, a
    schedule name (``"interleave"``/``"lpt"``) or ``None`` for the
    round-robin default; :meth:`run_plan`/:meth:`stream_plan` accept a
    per-call override.  Sequencing never changes results.  See the
    module docstring for the full contract.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        store_dir: Optional[os.PathLike] = None,
        resume: bool = True,
        store_only: bool = False,
        cache_max_paths: Optional[int] = None,
        scheduler: "str | Scheduler | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        if store_only and store_dir is None:
            raise ValueError("store_only runs need a store_dir")
        self.n_workers = n_workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.resume = resume
        self.store_only = store_only
        self.cache_max_paths = cache_max_paths
        self.scheduler = scheduler

    def _resolve_scheduler(
        self, override: "str | Scheduler | None" = None
    ) -> Scheduler:
        """The scheduler a plan run uses: override, engine default, or
        round-robin.  Names resolve through the cost layer so ``"lpt"``
        replays learned timings from this engine's store."""
        choice = override if override is not None else self.scheduler
        if choice is None:
            return InterleaveScheduler()
        if isinstance(choice, Scheduler):
            return choice
        from repro.experiments.cost import make_scheduler

        return make_scheduler(
            choice,
            store_dir=self.store_dir,
            trace_dir=telemetry.active_trace_dir(),
        )

    # ------------------------------------------------------------------
    # Single-scheme entry points (one-stream plans)
    # ------------------------------------------------------------------
    def run(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int] = None,
        scheme: Optional[str] = None,
    ) -> EngineReport:
        """Evaluate every network; results come back in workload order."""
        results = sorted(
            self.stream(scheme_factory, workload, matrices_per_network, scheme),
            key=lambda result: result.index,
        )
        return EngineReport(results=results)

    def stream(
        self,
        scheme_factory: SchemeFactory,
        workload: ZooWorkload,
        matrices_per_network: Optional[int] = None,
        scheme: Optional[str] = None,
    ) -> Iterator[NetworkResult]:
        """Yield one :class:`NetworkResult` per network as it completes.

        Serial runs yield in workload order; parallel runs yield in
        completion order (callers needing workload order use :meth:`run`).
        Store-backed runs yield stored results first (in workload order),
        then freshly evaluated ones; ``scheme`` names the store stream and
        is required when a ``store_dir`` is configured.
        """
        if not workload.networks:
            return iter(())
        if self.store_dir is not None and not scheme:
            raise ValueError("store-backed runs need a scheme name")
        plan = EvalPlan()
        plan.add(
            scheme or "run",
            scheme_factory,
            workload,
            scheme=scheme,
            matrices_per_network=matrices_per_network,
        )
        return (result for _, result in self.stream_plan(plan))

    # ------------------------------------------------------------------
    # Plan entry points
    # ------------------------------------------------------------------
    def run_plan(
        self,
        plan: EvalPlan,
        scheduler: "str | Scheduler | None" = None,
    ) -> PlanReport:
        """Execute a whole plan; per-stream results in workload order.

        ``scheduler`` overrides the engine's default sequencing policy
        for this run.  When the scheduler is cost-aware its per-task
        predictions are recorded in :attr:`PlanReport.predicted`, next
        to the measured per-task ``seconds`` on each result —
        :meth:`PlanReport.cost_report` joins the two.
        """
        resolved = self._resolve_scheduler(scheduler)
        collected: Dict[Hashable, Dict[int, NetworkResult]] = {
            key: {} for key in plan.streams
        }
        for key, result in self.stream_plan(plan, resolved):
            collected[key][result.index] = result
        predicted: Dict[Hashable, Dict[int, float]] = {}
        for (key, index), cost in resolved.predictions(plan).items():
            predicted.setdefault(key, {})[index] = cost
        return PlanReport(
            results={
                key: [collected[key][i] for i in sorted(collected[key])]
                for key in plan.streams
            },
            predicted=predicted,
            schemes={
                key: stream.scheme
                for key, stream in plan.streams.items()
                if stream.scheme
            },
        )

    def stream_plan(
        self,
        plan: EvalPlan,
        scheduler: "str | Scheduler | None" = None,
    ) -> Iterator[Tuple[Hashable, NetworkResult]]:
        """Yield ``(stream key, result)`` pairs as tasks complete.

        Store-backed runs yield each stream's stored results first (in
        index order, stream by stream), then freshly evaluated tasks in
        completion order.  The whole plan runs on one process pool;
        ``scheduler`` decides the order tasks are handed to it.
        """
        if not plan.streams:
            return iter(())
        recorder = telemetry.recorder()
        if recorder.enabled:
            # Name the trace after the plan's workload content, so every
            # process evaluating this plan — fork children, spawn
            # children, dispatch workers on other hosts — independently
            # derives the same trace id and their shards merge.
            recorder.begin_trace(telemetry.plan_trace_id(plan))
        resolved = self._resolve_scheduler(scheduler)
        if self.store_dir is not None:
            inner = self._stream_plan_stored(plan, resolved)
        else:
            with recorder.span("schedule"):
                tasks = plan.iter_tasks(scheduler=resolved)
            inner = self._stream_plan_fresh(plan, tasks)
        if recorder.enabled:
            return self._traced_stream(inner)
        return inner

    @staticmethod
    def _traced_stream(
        inner: Iterator[Tuple[Hashable, "NetworkResult"]],
    ) -> Iterator[Tuple[Hashable, "NetworkResult"]]:
        """Wrap a whole plan's streaming consumption in one root span."""
        with telemetry.recorder().span("run_plan"):
            yield from inner

    # ------------------------------------------------------------------
    def _stream_plan_stored(
        self, plan: EvalPlan, scheduler: Scheduler
    ) -> Iterator[Tuple[Hashable, NetworkResult]]:
        """Serve stored results, evaluate (and append) only the rest."""
        from repro.experiments.store import (
            MultiStreamWriter,
            ResultStore,
            StoreMissError,
            workload_signature,
        )

        store = ResultStore(self.store_dir)
        signatures = {
            key: workload_signature(
                stream.workload, stream.matrices_per_network
            )
            for key, stream in plan.streams.items()
        }

        if self.store_only:
            for key, stream in plan.streams.items():
                stored = store.load_results(signatures[key], stream.scheme)
                total = stream.n_networks
                missing = [i for i in range(total) if i not in stored]
                if missing:
                    raise StoreMissError(
                        f"store "
                        f"{store.stream_path(signatures[key], stream.scheme)} "
                        f"holds {total - len(missing)}/{total} networks; "
                        f"missing indices {missing[:8]}"
                        f"{'...' if len(missing) > 8 else ''}"
                    )
                for index in range(total):
                    yield key, stored[index]
            return

        recorder = telemetry.recorder()
        writer = MultiStreamWriter(store, resume=self.resume)
        try:
            missing: Dict[Hashable, List[int]] = {}
            for key, stream in plan.streams.items():
                total = stream.n_networks
                stored = writer.open(
                    key, signatures[key], stream.scheme, n_networks=total
                )
                valid = {
                    index: result
                    for index, result in stored.items()
                    if 0 <= index < total
                }
                if valid and recorder.enabled:
                    recorder.counter("engine.resume_skipped", len(valid))
                for index in sorted(valid):
                    yield key, valid[index]
                missing[key] = [i for i in range(total) if i not in valid]
            with recorder.span("schedule"):
                tasks = plan.iter_tasks(indices=missing, scheduler=scheduler)
            for key, result in self._stream_plan_fresh(plan, tasks):
                writer.append(key, result)
                yield key, result
        finally:
            writer.close()

    def _stream_plan_fresh(
        self, plan: EvalPlan, tasks: Iterable[EvalTask]
    ) -> Iterator[Tuple[Hashable, NetworkResult]]:
        # ``tasks`` may be a lazy iterator over a 10^5-task fleet.  Peel
        # just enough of its head to size the pool (as many tasks as the
        # bounded submission window holds), then chain it back — the
        # tail is never materialized.
        task_iter = iter(tasks)
        head = list(itertools.islice(task_iter, max(2 * self.n_workers, 2)))
        if not head:
            return iter(())
        tasks = itertools.chain(head, task_iter)
        workers = min(self.n_workers, len(head))
        if workers > 1:
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                return self._stream_plan_parallel(plan, tasks, workers)
            if "spawn" in methods and plan.spawn_safe():
                return self._stream_plan_spawn(plan, tasks, workers)
            recorder = telemetry.recorder()
            if recorder.enabled:
                recorder.counter("engine.serial_fallback")
            if "spawn" in methods:
                logger.warning(
                    "fork start method unavailable and a scheme factory "
                    "is not a picklable SchemeSpec (see "
                    "repro.experiments.spec); falling back to serial "
                    "evaluation"
                )
            else:
                logger.warning(
                    "no usable multiprocessing start method (need fork or "
                    "spawn); falling back to serial evaluation"
                )
        return self._stream_plan_serial(plan, tasks)

    def _stream_plan_serial(
        self, plan: EvalPlan, tasks: Iterable[EvalTask]
    ) -> Iterator[Tuple[Hashable, NetworkResult]]:
        for task in tasks:
            stream = plan.streams[task.stream]
            yield task.stream, self._evaluate_network(
                stream.factory,
                stream.workload.networks[task.index],
                stream.matrices_per_network,
                task.index,
                scheme=stream.scheme,
            )

    def _stream_plan_parallel(
        self, plan: EvalPlan, tasks: Iterable[EvalTask], workers: int
    ) -> Iterator[Tuple[Hashable, NetworkResult]]:
        # Workers are forked, so factories/workloads (closures, caches,
        # live generators — none of it picklable) are inherited by memory
        # image instead of serialized.  Only the run token and the task
        # (stream key + network index) cross the pipe.  Tasks are
        # submitted a bounded window at a time (like the spawn path):
        # a 10^5-task scenario fleet must not materialize as 10^5
        # pending futures.
        context = multiprocessing.get_context("fork")
        with _FORK_STATE_LOCK:
            token = next(_FORK_TOKENS)
            _FORK_STATE[token] = (self, plan)
        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            recorder = telemetry.recorder()
            remaining = iter(tasks)
            pending = {
                pool.submit(_forked_evaluate, token, task.stream, task.index)
                for task in itertools.islice(remaining, 2 * workers)
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                if recorder.enabled:
                    recorder.gauge("pool.pending", len(pending))
                for future in done:
                    for task in itertools.islice(remaining, 1):
                        pending.add(
                            pool.submit(
                                _forked_evaluate,
                                token,
                                task.stream,
                                task.index,
                            )
                        )
                    yield future.result()
        finally:
            # A consumer abandoning the iterator early must not wait out
            # the whole plan: drop everything not yet started.
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            with _FORK_STATE_LOCK:
                _FORK_STATE.pop(token, None)

    def _stream_plan_spawn(
        self, plan: EvalPlan, tasks: Iterable[EvalTask], workers: int
    ) -> Iterator[Tuple[Hashable, NetworkResult]]:
        # Spawned workers share no memory with the parent, so each task
        # carries everything it needs in picklable form: the spec, the
        # item's network and matrices (plain data), and the KSP cache's
        # materialized paths (its dump() payload, bounded like persisted
        # cache files — the live Yen generators cannot cross the boundary,
        # but they rebuild lazily on demand).  Tasks are submitted lazily,
        # a bounded window at a time: serializing the whole plan into the
        # executor up front would hold every task's matrices and cache
        # dump in flight at once.
        context = multiprocessing.get_context("spawn")
        engine_kwargs = dict(
            n_workers=1,
            cache_dir=self.cache_dir,
            cache_max_paths=self.cache_max_paths,
        )

        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)

            def submit(task: EvalTask):
                stream = plan.streams[task.stream]
                item = stream.workload.networks[task.index]
                matrices = item.matrices
                if stream.matrices_per_network is not None:
                    matrices = matrices[: stream.matrices_per_network]
                return pool.submit(
                    _spawned_evaluate,
                    task.stream,
                    engine_kwargs,
                    stream.factory,
                    item.network,
                    item.llpd,
                    matrices,
                    item.cache.dump(max_paths_per_pair=self.cache_max_paths),
                    stream.matrices_per_network,
                    task.index,
                    stream.scheme,
                    item.scenario,
                )

            remaining = iter(tasks)
            pending = {
                submit(task)
                for task in itertools.islice(remaining, 2 * workers)
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for task in itertools.islice(remaining, 1):
                        pending.add(submit(task))
                    yield future.result()
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    def _evaluate_network(
        self,
        scheme_factory: SchemeFactory,
        item: NetworkWorkload,
        matrices_per_network: Optional[int],
        index: int,
        scheme: Optional[str] = None,
    ) -> NetworkResult:
        """Evaluate one workload item, reporting it as network ``index``.

        ``index`` is the item's position in the *full* workload — shard
        workers (:mod:`repro.experiments.dispatch`) pass the original
        global index with a locally reconstructed item, so ids and stored
        streams line up across hosts.  ``scheme`` is the result-store
        stream name, carried on the task's trace span so span timings can
        feed the cost model's learned (signature, scheme) table.
        """
        recorder = telemetry.recorder()
        cache_path = self._cache_path(item)
        preloaded = 0
        if cache_path is not None:
            with recorder.span("cache_load"):
                loaded = KspCache.try_load_file(cache_path, item.network)
            if loaded is not None:
                # Swap the cache on a copy: the caller's workload must not
                # be mutated differently by serial vs parallel runs (the
                # fork path only ever touches the child's memory image).
                item = replace(item, cache=loaded)
                preloaded = self._count_paths(item)
        matrices = item.matrices
        if matrices_per_network is not None:
            matrices = matrices[:matrices_per_network]

        uid = network_id(item, index)
        signature = network_signature(item.network)
        attrs = None
        if recorder.enabled:
            attrs = {
                "index": index,
                "network_id": uid,
                "scheme": scheme or "",
                "network_signature": signature,
            }
            if item.scenario is not None:
                attrs["scenario"] = item.scenario
        # The task span covers exactly the region ``seconds`` measures,
        # so trace-replayed timings and store-stamped means agree.
        with recorder.span("task", attrs):
            start = time.perf_counter()
            with recorder.span("scheme_build"):
                built = scheme_factory(item)
            outcomes = []
            for tm in matrices:
                with recorder.span("place"):
                    placement = built.place(item.network, tm)
                outcomes.append(
                    SchemeOutcome(
                        network_name=item.network.name,
                        llpd=item.llpd,
                        congested_fraction=placement.congested_pair_fraction(),
                        latency_stretch=placement.total_latency_stretch(),
                        max_path_stretch=placement.max_path_stretch(),
                        max_utilization=placement.max_utilization(),
                        fits=placement.fits_all_traffic,
                        network_id=uid,
                    )
                )
            seconds = time.perf_counter() - start
        if cache_path is not None:
            if (
                not os.path.exists(cache_path)
                or self._count_paths(item) != preloaded
            ):
                with recorder.span("cache_dump"):
                    item.cache.dump_file(
                        cache_path, max_paths_per_pair=self.cache_max_paths
                    )
            else:
                # Skip the rewrite when evaluation added nothing: a fully-
                # warm repeat run would otherwise re-serialize every file
                # untouched.  Touch it instead, so the LRU sweep
                # (sweep_ksp_cache_dir) sees use, not just writes.
                try:
                    os.utime(cache_path)
                except OSError:
                    pass
        return NetworkResult(
            index=index,
            network_name=item.network.name,
            network_id=uid,
            outcomes=outcomes,
            seconds=seconds,
            paths_preloaded=preloaded,
            network_signature=signature,
        )

    def _cache_path(self, item: NetworkWorkload) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return ksp_cache_path(self.cache_dir, item.network)

    @staticmethod
    def _count_paths(item: NetworkWorkload) -> int:
        """Total materialized KSP paths in a workload item's cache.

        Asks the cache itself (sparse in the pairs actually requested)
        instead of enumerating the quadratic node-pair space, which
        ingest-scale graphs cannot afford.
        """
        return item.cache.total_cached()


def _forked_evaluate(
    token: int, key: Hashable, index: int
) -> Tuple[Hashable, NetworkResult]:
    """Worker entry point: evaluate one task from the inherited plan."""
    engine, plan = _FORK_STATE[token]
    stream = plan.streams[key]
    return key, engine._evaluate_network(
        stream.factory,
        stream.workload.networks[index],
        stream.matrices_per_network,
        index,
        scheme=stream.scheme,
    )


def _spawned_evaluate(
    key: Hashable,
    engine_kwargs: dict,
    factory: SchemeFactory,
    network,
    llpd: float,
    matrices: list,
    cache_payload: dict,
    matrices_per_network: Optional[int],
    index: int,
    scheme: Optional[str] = None,
    scenario: Optional[str] = None,
) -> Tuple[Hashable, NetworkResult]:
    """Spawn-pool entry point: rebuild the item, evaluate, ship back."""
    from repro.net.paths import KspCacheMismatchError

    cache = None
    try:
        cache = KspCache.load(cache_payload, network)
    except KspCacheMismatchError:
        pass  # cold cache; correctness unaffected
    item = NetworkWorkload(
        network=network, llpd=llpd, matrices=matrices, cache=cache,
        scenario=scenario,
    )
    engine = ExperimentEngine(**engine_kwargs)
    return key, engine._evaluate_network(
        factory, item, matrices_per_network, index, scheme=scheme
    )

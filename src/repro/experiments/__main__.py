"""Command-line runner: regenerate a paper figure from the terminal.

Usage::

    python -m repro.experiments fig03 [--networks 18] [--tms 2] [--workers 4]
    python -m repro.experiments list

Benchmarks under ``benchmarks/`` do the same with timing and shape
assertions; this entry point is the quick, dependency-free way to look at
one figure's numbers.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def build_workload(args, growth_factor: float = 1.3):
    from repro.experiments.workloads import build_zoo_workload

    return build_zoo_workload(
        n_networks=args.networks,
        n_matrices=args.tms,
        locality=1.0,
        growth_factor=growth_factor,
        seed=args.seed,
    )


def run_fig01(args) -> str:
    from repro.experiments.figures import fig01_apa_cdfs
    from repro.experiments.render import render_cdf

    workload = build_workload(args)
    curves = fig01_apa_cdfs([item.network for item in workload.networks])
    return "\n\n".join(
        render_cdf(f"APA: {name}", cdf) for name, cdf in sorted(curves.items())
    )


def run_fig03(args) -> str:
    from repro.experiments.figures import fig03_sp_congestion
    from repro.experiments.render import render_series

    result = fig03_sp_congestion(
        build_workload(args), n_workers=args.workers, cache_dir=args.cache_dir
    )
    return render_series(
        "Fig 3: congested fraction vs LLPD (SP)", result, x_label="LLPD"
    )


def run_fig04(args) -> str:
    from repro.experiments.figures import fig04_schemes
    from repro.experiments.render import render_series

    results = fig04_schemes(
        build_workload(args), n_workers=args.workers, cache_dir=args.cache_dir
    )
    series = {}
    for scheme, data in results.items():
        series[f"{scheme}:cong"] = data["congestion_median"]
        series[f"{scheme}:stretch"] = data["stretch_median"]
    return render_series("Fig 4: schemes vs LLPD", series, x_label="LLPD")


def run_fig07(args) -> str:
    from repro.experiments.figures import fig07_utilization_cdf
    from repro.experiments.render import render_cdf
    from repro.experiments.workloads import build_traffic_matrices
    from repro.net.zoo import gts_like

    network = gts_like()
    tm = build_traffic_matrices(
        network, 1, np.random.default_rng(args.seed), 1.0, 1.3
    )[0]
    result = fig07_utilization_cdf(network, tm)
    return "\n\n".join(
        render_cdf(name, values) for name, values in result.items()
    )


def run_fig08(args) -> str:
    from repro.experiments.figures import fig08_headroom_sweep
    from repro.experiments.render import render_series

    results = fig08_headroom_sweep(
        build_workload(args, growth_factor=1.65),
        n_workers=args.workers,
        cache_dir=args.cache_dir,
    )
    return render_series(
        "Fig 8: stretch vs LLPD per headroom",
        {f"h={h:.0%}": points for h, points in results.items()},
        x_label="LLPD",
    )


def run_fig09(args) -> str:
    from repro.experiments.figures import fig09_prediction_ratios
    from repro.experiments.render import render_cdf
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        8, np.random.default_rng(args.seed), minutes=30, sample_ms=100
    )
    ratios = fig09_prediction_ratios(traces, 600)
    return render_cdf("Fig 9: measured/predicted", ratios)


def run_fig10(args) -> str:
    from repro.experiments.figures import fig10_sigma_scatter
    from repro.experiments.render import render_scatter_summary
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        6, np.random.default_rng(args.seed), minutes=15, sample_ms=10
    )
    points = fig10_sigma_scatter(traces, 6000)
    return render_scatter_summary("Fig 10: sigma(t) vs sigma(t+1)", points)


RUNNERS = {
    "fig01": run_fig01,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig03) or 'list' to enumerate available ones",
    )
    parser.add_argument("--networks", type=int, default=12)
    parser.add_argument("--tms", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard networks across this many processes (results identical)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-network KSP caches here; repeated and parallel "
        "runs warm-start from disk",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        print("available:", ", ".join(sorted(RUNNERS)))
        print("(figures 15-20 run via pytest benchmarks/ --benchmark-only)")
        return 0
    runner = RUNNERS.get(args.figure)
    if runner is None:
        print(f"unknown figure {args.figure!r}; try 'list'", file=sys.stderr)
        return 2
    print(runner(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

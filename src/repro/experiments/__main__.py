"""Command-line runner: regenerate a paper figure from the terminal.

Usage::

    python -m repro.experiments fig03 [--networks 18] [--tms 2] [--workers 4]
    python -m repro.experiments fig03 --store-dir results/   # persist + resume
    python -m repro.experiments render fig03 --store-dir results/
    python -m repro.experiments list

With ``--store-dir``, every completed network's results are appended to a
durable result store keyed by workload content hash, so a killed run
restarted with the same arguments evaluates only the missing networks
(``--resume``, the default; ``--no-resume`` discards the stored stream and
recomputes).  The ``render`` subcommand re-draws a figure *purely* from the
store — zero scheme evaluations — and fails if any result is missing.

Benchmarks under ``benchmarks/`` do the same with timing and shape
assertions; this entry point is the quick, dependency-free way to look at
one figure's numbers.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def build_workload(args, growth_factor: float = 1.3):
    from repro.experiments.workloads import build_zoo_workload

    return build_zoo_workload(
        n_networks=args.networks,
        n_matrices=args.tms,
        locality=1.0,
        growth_factor=growth_factor,
        seed=args.seed,
    )


def engine_options(args) -> dict:
    """Engine/store keyword arguments shared by the store-backed figures."""
    return dict(
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        resume=args.resume,
        store_only=args.store_only,
        cache_max_paths=args.cache_max_paths,
    )


def run_fig01(args) -> str:
    from repro.experiments.figures import fig01_apa_cdfs
    from repro.experiments.render import render_cdf

    workload = build_workload(args)
    curves = fig01_apa_cdfs([item.network for item in workload.networks])
    return "\n\n".join(
        render_cdf(f"APA: {name}", cdf) for name, cdf in sorted(curves.items())
    )


def run_fig03(args) -> str:
    from repro.experiments.figures import fig03_sp_congestion
    from repro.experiments.render import render_series

    result = fig03_sp_congestion(build_workload(args), **engine_options(args))
    return render_series(
        "Fig 3: congested fraction vs LLPD (SP)", result, x_label="LLPD"
    )


def run_fig04(args) -> str:
    from repro.experiments.figures import fig04_schemes
    from repro.experiments.render import render_series

    results = fig04_schemes(build_workload(args), **engine_options(args))
    series = {}
    for scheme, data in results.items():
        series[f"{scheme}:cong"] = data["congestion_median"]
        series[f"{scheme}:stretch"] = data["stretch_median"]
    return render_series("Fig 4: schemes vs LLPD", series, x_label="LLPD")


def run_fig07(args) -> str:
    from repro.experiments.figures import fig07_utilization_cdf
    from repro.experiments.render import render_cdf
    from repro.experiments.workloads import build_traffic_matrices
    from repro.net.zoo import gts_like

    network = gts_like()
    tm = build_traffic_matrices(
        network, 1, np.random.default_rng(args.seed), 1.0, 1.3
    )[0]
    result = fig07_utilization_cdf(network, tm)
    return "\n\n".join(
        render_cdf(name, values) for name, values in result.items()
    )


def run_fig08(args) -> str:
    from repro.experiments.figures import fig08_headroom_sweep
    from repro.experiments.render import render_series

    results = fig08_headroom_sweep(
        build_workload(args, growth_factor=1.65), **engine_options(args)
    )
    return render_series(
        "Fig 8: stretch vs LLPD per headroom",
        {f"h={h:.0%}": points for h, points in results.items()},
        x_label="LLPD",
    )


def run_fig09(args) -> str:
    from repro.experiments.figures import fig09_prediction_ratios
    from repro.experiments.render import render_cdf
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        8, np.random.default_rng(args.seed), minutes=30, sample_ms=100
    )
    ratios = fig09_prediction_ratios(traces, 600)
    return render_cdf("Fig 9: measured/predicted", ratios)


def run_fig10(args) -> str:
    from repro.experiments.figures import fig10_sigma_scatter
    from repro.experiments.render import render_scatter_summary
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        6, np.random.default_rng(args.seed), minutes=15, sample_ms=10
    )
    points = fig10_sigma_scatter(traces, 6000)
    return render_scatter_summary("Fig 10: sigma(t) vs sigma(t+1)", points)


def run_fig17(args) -> str:
    from repro.experiments.figures import fig17_load_sweep
    from repro.experiments.render import render_series

    workload = build_workload(args)
    results = fig17_load_sweep(workload.networks, **engine_options(args))
    return render_series(
        "Fig 17: median max path stretch vs load", results, x_label="load"
    )


def run_fig18(args) -> str:
    from repro.experiments.figures import fig18_locality_sweep
    from repro.experiments.render import render_series
    from repro.net.zoo import generate_zoo

    # The sweep generates its own matrices and ignores LLPD, so build the
    # bare networks (same ensemble as build_workload) rather than paying
    # for a full workload's matrices and APA analysis.
    networks = [
        network
        for network in generate_zoo(args.networks, seed=args.seed)
        if network.num_nodes >= 2
    ]
    results = fig18_locality_sweep(
        networks,
        n_matrices=args.tms,
        seed=args.seed,
        **engine_options(args),
    )
    return render_series(
        "Fig 18: median max path stretch vs locality",
        results,
        x_label="locality",
    )


def run_fig20(args) -> str:
    from repro.experiments.figures import fig20_growth_benefit
    from repro.experiments.render import render_scatter_summary

    workload = build_workload(args)
    results = fig20_growth_benefit(workload.networks, **engine_options(args))
    sections = []
    for scheme, data in results.items():
        sections.append(
            render_scatter_summary(
                f"Fig 20 {scheme}: stretch before (x) vs after (y)",
                data["median"],
            )
        )
    return "\n\n".join(sections)


RUNNERS = {
    "fig01": run_fig01,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig20": run_fig20,
}

#: Figures whose evaluations go through the engine and hence the store.
STORE_BACKED = {"fig03", "fig04", "fig08", "fig17", "fig18", "fig20"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig03), 'render' to re-draw one purely from "
        "the result store, or 'list' to enumerate available ones",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="figure id to re-draw (only with 'render')",
    )
    parser.add_argument("--networks", type=int, default=12)
    parser.add_argument("--tms", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard networks across this many processes (results identical)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-network KSP caches here; repeated and parallel "
        "runs warm-start from disk",
    )
    parser.add_argument(
        "--cache-max-paths",
        type=int,
        default=None,
        help="keep at most this many KSP paths per node pair in each "
        "persisted cache file",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="after the run, evict least-recently-used ksp-*.json files "
        "from --cache-dir until it fits this budget",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="persist per-network results here (append-only JSONL keyed by "
        "workload content hash); interrupted runs resume and 'render' "
        "re-draws without re-evaluating",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve already-stored networks from --store-dir instead of "
        "re-evaluating them (--no-resume discards the stored stream)",
    )
    args = parser.parse_args(argv)
    args.store_only = False

    figure = args.figure
    if figure == "list":
        print("available:", ", ".join(sorted(RUNNERS)))
        print("store-backed (resumable, renderable):",
              ", ".join(sorted(STORE_BACKED)))
        print("(figures 15/16/19 run via pytest benchmarks/ --benchmark-only)")
        return 0
    if figure == "render":
        if args.target is None:
            print("render needs a figure id, e.g. 'render fig03'",
                  file=sys.stderr)
            return 2
        if args.store_dir is None:
            print("render needs --store-dir", file=sys.stderr)
            return 2
        figure = args.target
        args.store_only = True
        if figure not in STORE_BACKED:
            print(f"figure {figure!r} is not store-backed; choose one of "
                  f"{', '.join(sorted(STORE_BACKED))}", file=sys.stderr)
            return 2
    elif args.target is not None:
        print(f"unexpected extra argument {args.target!r}", file=sys.stderr)
        return 2

    runner = RUNNERS.get(figure)
    if runner is None:
        print(f"unknown figure {figure!r}; try 'list'", file=sys.stderr)
        return 2

    from repro.experiments.store import StoreError

    try:
        print(runner(args))
    except StoreError as exc:
        print(f"result store: {exc}", file=sys.stderr)
        return 1

    if args.cache_dir is not None and args.cache_max_bytes is not None:
        from repro.net.paths import sweep_ksp_cache_dir

        removed = sweep_ksp_cache_dir(args.cache_dir, args.cache_max_bytes)
        if removed:
            print(f"evicted {len(removed)} KSP cache file(s) from "
                  f"{args.cache_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line runner: regenerate a paper figure from the terminal.

Usage::

    python -m repro.experiments fig03 [--networks 18] [--tms 2] [--workers 4]
    python -m repro.experiments fig03 --store-dir results/   # persist + resume
    python -m repro.experiments fig17 --workers 8 --schedule lpt  # cost-aware
    python -m repro.experiments render fig03 --store-dir results/
    python -m repro.experiments dispatch SP --shards 2 --store-dir results/
    python -m repro.experiments dispatch fig17 --shards 2 --store-dir results/
    python -m repro.experiments worker shard-000.json --store-dir worker0/
    python -m repro.experiments store ls --store-dir results/ [--timings]
    python -m repro.experiments store gc --store-dir results/ --max-age-days 30
    python -m repro.experiments fig17 --trace-dir traces/      # record spans
    python -m repro.experiments trace summary --trace-dir traces/
    python -m repro.experiments trace critical-path --trace-dir traces/
    python -m repro.experiments ingest topo.json --format json
    python -m repro.experiments ingest synth --synth-nodes 10000 --seed 42 \\
        --out as10k.json --emit distances
    python -m repro.experiments list

Every figure is one entry in the :data:`FIGURES` registry — a render
function plus, for engine-backed figures, a plan builder — and the same
registry drives plain runs, ``render`` (re-draw purely from the result
store, zero scheme evaluations) and ``dispatch`` (shard a whole figure's
evaluation plan across worker subprocesses).  Multi-call figures (4, 8,
17, 18, 20) execute their full (scheme x sweep-point x network) grid as
ONE engine pass over one shared process pool.

With ``--store-dir``, every completed network's results are appended to a
durable result store keyed by workload content hash, so a killed run
restarted with the same arguments evaluates only the missing tasks
(``--resume``, the default; ``--no-resume`` discards the stored streams
and recomputes).

``--schedule lpt`` makes execution cost-aware: plan tasks run
longest-predicted-first and dispatch shards are balanced by predicted
makespan, with per-task costs replayed from timings the store already
measured (falling back to a static shape predictor).  Scheduling is
pure sequencing — results are bit-identical to the default interleave
schedule.  ``store ls --timings`` shows the stored per-stream seconds
the predictions replay.

``dispatch <scheme>`` shards the standard workload (one scheme) and
``dispatch <figure>`` shards the figure's whole multi-scheme plan into
self-contained JSON shard manifests, evaluates them in separate
``worker`` subprocesses (each appending to its own store), and merges the
worker stores back into ``--store-dir`` — the same cycle a multi-host run
performs by copying manifests out and store directories back.  ``worker``
is that subprocess's entry point and runs anywhere the package is
importable.  ``store ls`` / ``store gc`` list and prune the store's
streams.

``--trace-dir`` records span telemetry for any run, render, dispatch or
worker invocation: every process appends its spans and metrics to JSONL
shards under ``<trace-dir>/<trace-id>/`` (the trace id derives from the
workload, so a dispatch coordinator and its workers share one trace).
``trace summary|tree|critical-path|ls`` reads them back; tracing is off
by default and never changes any figure's output.  ``--log-level``
controls the ``repro`` logger (serial-fallback notices and friends).

Benchmarks under ``benchmarks/`` do the same with timing and shape
assertions; this entry point is the quick, dependency-free way to look at
one figure's numbers.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np


def build_workload(args, growth_factor: Optional[float] = None):
    from repro.experiments.workloads import build_zoo_workload

    if growth_factor is None:
        # Callers with a fixed setting (fig08's lighter load) pass it
        # explicitly; everything else follows --growth-factor so that
        # `store gc --match-workload` and `dispatch` can describe any
        # workload the figure runners can build.
        growth_factor = getattr(args, "growth_factor", 1.3)
    return build_zoo_workload(
        n_networks=args.networks,
        n_matrices=args.tms,
        locality=1.0,
        growth_factor=growth_factor,
        seed=args.seed,
    )


def engine_options(args) -> dict:
    """Engine/store keyword arguments shared by the store-backed figures.

    This is the single place the CLI's store/cache plumbing lives: the
    registry driver applies it to every store-backed figure, so figure
    runners never copy-paste ``n_workers``/``cache_dir``/``store_dir``
    forwarding again.
    """
    return dict(
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        resume=args.resume,
        store_only=args.store_only,
        cache_max_paths=args.cache_max_paths,
        scheduler=args.schedule,
    )


def _fig18_networks(args):
    # The sweep generates its own matrices and ignores LLPD, so build the
    # bare networks (same ensemble as build_workload) rather than paying
    # for a full workload's matrices and APA analysis.
    from repro.net.zoo import generate_zoo

    return [
        network
        for network in generate_zoo(args.networks, seed=args.seed)
        if network.num_nodes >= 2
    ]


# ----------------------------------------------------------------------
# Figure runners: (args, engine_opts) -> rendered text.  Store-backed
# runners receive engine_options(args); the rest an empty dict.
# ----------------------------------------------------------------------
def _fig01(args, opts) -> str:
    from repro.experiments.figures import fig01_apa_cdfs
    from repro.experiments.render import render_cdf

    workload = build_workload(args)
    curves = fig01_apa_cdfs([item.network for item in workload.networks])
    return "\n\n".join(
        render_cdf(f"APA: {name}", cdf) for name, cdf in sorted(curves.items())
    )


def _fig03(args, opts) -> str:
    from repro.experiments.figures import fig03_sp_congestion
    from repro.experiments.render import render_series

    result = fig03_sp_congestion(build_workload(args), **opts)
    return render_series(
        "Fig 3: congested fraction vs LLPD (SP)", result, x_label="LLPD"
    )


def _fig04(args, opts) -> str:
    from repro.experiments.figures import fig04_schemes
    from repro.experiments.render import render_series

    results = fig04_schemes(build_workload(args), **opts)
    series = {}
    for scheme, data in results.items():
        series[f"{scheme}:cong"] = data["congestion_median"]
        series[f"{scheme}:stretch"] = data["stretch_median"]
    return render_series("Fig 4: schemes vs LLPD", series, x_label="LLPD")


def _fig07(args, opts) -> str:
    from repro.experiments.figures import fig07_utilization_cdf
    from repro.experiments.render import render_cdf
    from repro.experiments.workloads import build_traffic_matrices
    from repro.net.zoo import gts_like

    network = gts_like()
    tm = build_traffic_matrices(
        network, 1, np.random.default_rng(args.seed), 1.0, 1.3
    )[0]
    result = fig07_utilization_cdf(network, tm)
    return "\n\n".join(
        render_cdf(name, values) for name, values in result.items()
    )


def _fig08(args, opts) -> str:
    from repro.experiments.figures import fig08_headroom_sweep
    from repro.experiments.render import render_series

    results = fig08_headroom_sweep(
        build_workload(args, growth_factor=1.65), **opts
    )
    return render_series(
        "Fig 8: stretch vs LLPD per headroom",
        {f"h={h:.0%}": points for h, points in results.items()},
        x_label="LLPD",
    )


def _fig09(args, opts) -> str:
    from repro.experiments.figures import fig09_prediction_ratios
    from repro.experiments.render import render_cdf
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        8, np.random.default_rng(args.seed), minutes=30, sample_ms=100
    )
    ratios = fig09_prediction_ratios(traces, 600)
    return render_cdf("Fig 9: measured/predicted", ratios)


def _fig10(args, opts) -> str:
    from repro.experiments.figures import fig10_sigma_scatter
    from repro.experiments.render import render_scatter_summary
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        6, np.random.default_rng(args.seed), minutes=15, sample_ms=10
    )
    points = fig10_sigma_scatter(traces, 6000)
    return render_scatter_summary("Fig 10: sigma(t) vs sigma(t+1)", points)


def _fig17(args, opts) -> str:
    from repro.experiments.figures import fig17_load_sweep
    from repro.experiments.render import render_series

    workload = build_workload(args)
    results = fig17_load_sweep(workload.networks, **opts)
    return render_series(
        "Fig 17: median max path stretch vs load", results, x_label="load"
    )


def _fig18(args, opts) -> str:
    from repro.experiments.figures import fig18_locality_sweep
    from repro.experiments.render import render_series

    results = fig18_locality_sweep(
        _fig18_networks(args),
        n_matrices=args.tms,
        seed=args.seed,
        **opts,
    )
    return render_series(
        "Fig 18: median max path stretch vs locality",
        results,
        x_label="locality",
    )


def _fig20(args, opts) -> str:
    from repro.experiments.figures import fig20_growth_benefit
    from repro.experiments.render import render_scatter_summary

    workload = build_workload(args)
    results = fig20_growth_benefit(workload.networks, **opts)
    sections = []
    for scheme, data in results.items():
        sections.append(
            render_scatter_summary(
                f"Fig 20 {scheme}: stretch before (x) vs after (y)",
                data["median"],
            )
        )
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Figure plan builders: (args) -> EvalPlan, for `dispatch <figure>`
# ----------------------------------------------------------------------
def _fig03_plan(args):
    from repro.experiments.figures import fig03_plan

    return fig03_plan(build_workload(args))


def _fig04_plan(args):
    from repro.experiments.figures import fig04_plan

    return fig04_plan(build_workload(args))


def _fig08_plan(args):
    from repro.experiments.figures import fig08_plan

    return fig08_plan(build_workload(args, growth_factor=1.65))


def _fig17_plan(args):
    from repro.experiments.figures import fig17_plan

    return fig17_plan(build_workload(args).networks)


def _fig18_plan(args):
    from repro.experiments.figures import fig18_plan

    return fig18_plan(
        _fig18_networks(args), n_matrices=args.tms, seed=args.seed
    )


def _fig20_plan(args):
    from repro.experiments.figures import fig20_plan

    return fig20_plan(build_workload(args).networks, cache_dir=args.cache_dir)


@dataclass(frozen=True)
class FigureDef:
    """One registry entry: how to run, render and dispatch a figure.

    ``render`` produces the figure's text output; ``store_backed``
    figures additionally run through the engine (and hence the result
    store), receiving :func:`engine_options` from the driver; ``plan``
    (store-backed figures only) declares the figure's full evaluation
    grid for ``dispatch <figure>``.
    """

    render: Callable[[argparse.Namespace, dict], str]
    store_backed: bool = False
    plan: Optional[Callable[[argparse.Namespace], object]] = None


FIGURES: Dict[str, FigureDef] = {
    "fig01": FigureDef(_fig01),
    "fig03": FigureDef(_fig03, store_backed=True, plan=_fig03_plan),
    "fig04": FigureDef(_fig04, store_backed=True, plan=_fig04_plan),
    "fig07": FigureDef(_fig07),
    "fig08": FigureDef(_fig08, store_backed=True, plan=_fig08_plan),
    "fig09": FigureDef(_fig09),
    "fig10": FigureDef(_fig10),
    "fig17": FigureDef(_fig17, store_backed=True, plan=_fig17_plan),
    "fig18": FigureDef(_fig18, store_backed=True, plan=_fig18_plan),
    "fig20": FigureDef(_fig20, store_backed=True, plan=_fig20_plan),
}


def store_backed_figures() -> list:
    """Figure ids whose evaluations go through the engine and store."""
    return sorted(
        name for name, figure in FIGURES.items() if figure.store_backed
    )


def run_worker_command(args) -> int:
    """`worker <manifest>`: evaluate one shard into its own store."""
    from repro.experiments.dispatch import run_worker

    if args.target is None:
        print("worker needs a manifest path", file=sys.stderr)
        return 2
    if args.store_dir is None:
        print("worker needs --store-dir", file=sys.stderr)
        return 2
    summary = run_worker(
        args.target,
        store_dir=args.store_dir,
        cache_dir=args.cache_dir,
        cache_max_paths=args.cache_max_paths,
        resume=args.resume,
    )
    print(
        f"worker: shard {summary['shard_index'] + 1}/{summary['n_shards']} "
        f"scheme {summary['scheme']}: evaluated {summary['evaluated']}, "
        f"skipped {summary['skipped']} (already stored) -> "
        f"{summary['stream']}"
    )
    return 0


def run_dispatch_command(args) -> int:
    """`dispatch <scheme|figure>`: shard, run workers, merge, serve."""
    import json

    from repro.experiments.spec import SchemeSpec, registered_schemes

    if args.target is None:
        print(
            f"dispatch needs a scheme name or a figure id; registered "
            f"schemes: {', '.join(registered_schemes())}; dispatchable "
            f"figures: {', '.join(dispatchable_figures())}",
            file=sys.stderr,
        )
        return 2
    if args.store_dir is None:
        print("dispatch needs --store-dir", file=sys.stderr)
        return 2

    figure = FIGURES.get(args.target)
    if figure is not None and figure.plan is None:
        # Fail fast: falling through would treat the figure id as a
        # scheme name and only crash deep inside the shard workers.
        print(
            f"figure {args.target!r} is not dispatchable; choose one of "
            f"{', '.join(dispatchable_figures())} or a scheme name",
            file=sys.stderr,
        )
        return 2
    if figure is not None:
        if args.params:
            print(
                "--params applies only to scheme dispatch; figure plans "
                "fix their own scheme parameters",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.dispatch import dispatch_plan

        plan = figure.plan(args)
        dispatch_plan(
            plan,
            n_shards=args.shards,
            store_dir=args.store_dir,
            work_dir=args.work_dir,
            cache_dir=args.cache_dir,
            cache_max_paths=args.cache_max_paths,
            resume=args.resume,
            scheduler=args.schedule,
        )
        print(
            f"dispatch: {args.shards} shard worker(s) evaluated the "
            f"{args.target} plan ({len(plan.streams)} stream(s), "
            f"{plan.n_tasks} task(s)); merged into {args.store_dir} — "
            f"`render {args.target}` re-draws it from there"
        )
        return 0

    from repro.experiments.dispatch import dispatch_run

    params = json.loads(args.params) if args.params else {}
    spec = SchemeSpec(args.target, params)
    workload = build_workload(args)
    outcomes = dispatch_run(
        spec,
        workload,
        n_shards=args.shards,
        store_dir=args.store_dir,
        work_dir=args.work_dir,
        cache_dir=args.cache_dir,
        cache_max_paths=args.cache_max_paths,
        resume=args.resume,
        scheduler=args.schedule,
    )
    print(
        f"dispatch: {args.shards} shard worker(s) evaluated "
        f"{len(workload.networks)} networks "
        f"({len(outcomes)} outcomes) for scheme {spec.scheme!r}; "
        f"merged into {args.store_dir}"
    )
    return 0


def dispatchable_figures() -> list:
    """Figure ids `dispatch` can shard as whole plans."""
    return sorted(
        name for name, figure in FIGURES.items() if figure.plan is not None
    )


def _traced_scheme_phases(trace_dir) -> Dict[str, Dict[str, float]]:
    """Per-scheme phase seconds pooled across every trace in a dir."""
    from repro.experiments import telemetry

    pooled: Dict[str, Dict[str, float]] = {}
    for trace_id in telemetry.list_traces(trace_dir):
        try:
            trace = telemetry.load_trace(trace_dir, trace_id)
        except telemetry.TraceError:
            continue
        for scheme, phases in telemetry.scheme_phases(trace).items():
            merged = pooled.setdefault(scheme, {})
            for phase, seconds in phases.items():
                merged[phase] = merged.get(phase, 0.0) + seconds
    return pooled


def run_scenarios_command(args) -> int:
    """The scenario-fleet CLI: perturb, evaluate, report robustness.

    Builds one plan — one stream per scheme over a shared lazy
    :class:`~repro.scenarios.workload.ScenarioWorkload` — and answers
    "which scheme degrades least" with per-scheme degradation quantiles
    vs the unperturbed baseline.  ``--dispatch`` runs the same plan
    through shard workers instead of the in-process engine; the report
    is byte-identical either way.
    """
    from repro.experiments.engine import ExperimentEngine
    from repro.experiments.plan import EvalPlan
    from repro.experiments.spec import SchemeSpec, registered_schemes
    from repro.scenarios import ScenarioGenerator, ScenarioWorkload
    from repro.scenarios import report as robustness

    schemes = [name for name in args.schemes.split(",") if name]
    known = set(registered_schemes())
    for name in schemes:
        if name not in known:
            print(
                f"unknown scheme {name!r}; choose from "
                f"{', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
    if not schemes:
        print("need at least one scheme (--schemes)", file=sys.stderr)
        return 2
    try:
        localities = [
            float(value) for value in args.localities.split(",") if value
        ]
    except ValueError:
        print(f"bad --localities {args.localities!r}", file=sys.stderr)
        return 2

    workload = build_workload(args)
    if not workload.networks:
        print("workload is empty", file=sys.stderr)
        return 2
    if args.base_network is not None:
        if not 0 <= args.base_network < len(workload.networks):
            print(
                f"--base-network {args.base_network} out of range "
                f"(workload has {len(workload.networks)} networks)",
                file=sys.stderr,
            )
            return 2
        base = workload.networks[args.base_network]
    else:
        # Default: the best-connected network (most physical links) —
        # the interesting what-if substrate; ties break to the lowest
        # index, deterministically.
        best = max(
            range(len(workload.networks)),
            key=lambda i: (workload.networks[i].network.num_links, -i),
        )
        base = workload.networks[best]

    generator = ScenarioGenerator(base, seed=args.seed)
    fleet = generator.fleet(
        link_failure_k=args.failures,
        node_failure_k=args.node_failures,
        surges=args.surges,
        surge_factor=args.surge_factor,
        surge_pairs=args.surge_pairs,
        localities=localities,
        growth_stages=args.growth_stages,
        budget=args.variant_budget,
    )
    scenario_workload = ScenarioWorkload(
        base,
        fleet.specs,
        locality=workload.locality,
        growth_factor=workload.growth_factor,
        seed=args.seed,
    )
    plan = EvalPlan()
    for name in schemes:
        plan.add(name, SchemeSpec(name), scenario_workload)

    per_scheme: Dict[str, Dict[int, Dict[str, float]]] = {
        name: {} for name in schemes
    }
    if args.dispatch:
        from repro.experiments.dispatch import dispatch_plan

        if args.store_dir is None:
            print("scenarios --dispatch needs --store-dir", file=sys.stderr)
            return 2
        plan_report = dispatch_plan(
            plan,
            n_shards=args.shards,
            store_dir=args.store_dir,
            work_dir=args.work_dir,
            cache_dir=args.cache_dir,
            cache_max_paths=args.cache_max_paths,
            resume=args.resume,
            scheduler=args.schedule,
        )
        for key, results in plan_report.results.items():
            for result in results:
                per_scheme[key][result.index] = robustness.variant_metrics(
                    result.outcomes
                )
    else:
        engine = ExperimentEngine(**engine_options(args))
        # Streaming consumption: only the per-variant scalar metrics are
        # retained, so a 10^5-task fleet needs O(window) result memory.
        for key, result in engine.stream_plan(plan):
            per_scheme[key][result.index] = robustness.variant_metrics(
                result.outcomes
            )

    payload = robustness.robustness_payload(
        base.network.name,
        [spec.label() for spec in fleet.specs],
        per_scheme,
        fleet.skipped,
        fleet.kind_counts(),
    )
    if args.format == "json":
        print(robustness.render_json(payload))
    else:
        print(robustness.render_text(payload))
    return 0


def run_store_command(args) -> int:
    """`store ls` / `store gc`: list and prune result-store streams."""
    from repro.experiments.store import ResultStore, workload_signature

    if args.target not in ("ls", "gc"):
        print("store needs an action: ls or gc", file=sys.stderr)
        return 2
    if args.store_dir is None:
        print("store needs --store-dir", file=sys.stderr)
        return 2
    store = ResultStore(args.store_dir)
    if args.target == "ls":
        # --timings rides the same light scanner the cost model's
        # learned-replay table reads; one pass per stream either way.
        streams = store.list_streams(timings=args.timings)
        if not streams:
            print(f"store {args.store_dir}: empty")
            return 0
        phases_by_scheme: Dict[str, Dict[str, float]] = {}
        if args.timings and args.trace_dir is not None:
            # With a trace dir, the coarse per-stream seconds gain a
            # span-derived breakdown: where inside the tasks those
            # seconds went (ksp / lp_solve / place / ...).
            from repro.experiments.telemetry import format_phases

            phases_by_scheme = _traced_scheme_phases(args.trace_dir)
        for record in streams:
            scheme = record["scheme"] or "<no valid header>"
            total = record["n_networks"]
            progress = (
                f"{record['n_results']}/{total}"
                if total is not None
                else f"{record['n_results']}"
            )
            line = (
                f"{record['signature'][:16]}  {scheme:24s} "
                f"{progress:>9s} networks  {record['bytes']:>10d} bytes"
            )
            if args.timings:
                if record["seconds_total"] is not None:
                    line += (
                        f"  {record['seconds_total']:>9.2f}s total "
                        f"{record['seconds_mean']:>8.3f}s mean"
                    )
                else:
                    line += "  <no timings>"
                phases = phases_by_scheme.get(record["scheme"])
                if phases:
                    line += f"  [{format_phases(phases)}]"
            print(line)
        return 0

    keep = None
    if args.match_workload:
        # Prune everything except the signature of the workload the other
        # CLI flags describe — the knob for "keep only the current run".
        keep = {workload_signature(build_workload(args))}
    if args.keep:
        keep = (keep or set()) | set(args.keep)
    max_age_s = (
        args.max_age_days * 86400.0 if args.max_age_days is not None else None
    )
    if max_age_s is None and keep is None:
        print(
            "store gc needs --max-age-days, --keep or --match-workload "
            "(refusing to prune everything by default)",
            file=sys.stderr,
        )
        return 2
    removed = store.gc(max_age_s=max_age_s, keep_signatures=keep)
    if removed:
        for path in removed:
            print(f"pruned {path}")
    else:
        print("nothing to prune")
    return 0


def run_trace_command(args) -> int:
    """`trace summary|tree|critical-path|ls`: read recorded telemetry."""
    import dataclasses
    import json

    from repro.experiments import telemetry

    action = args.target or "summary"
    if action not in ("summary", "tree", "critical-path", "ls"):
        print(
            "trace needs an action: summary, tree, critical-path or ls",
            file=sys.stderr,
        )
        return 2
    if args.trace_dir is None:
        print("trace needs --trace-dir", file=sys.stderr)
        return 2
    try:
        if action == "ls":
            trace_ids = telemetry.list_traces(args.trace_dir)
            if not trace_ids:
                print(f"trace dir {args.trace_dir}: no traces")
                return 0
            if args.format == "json":
                print(json.dumps(trace_ids))
                return 0
            for trace_id in trace_ids:
                trace = telemetry.load_trace(args.trace_dir, trace_id)
                print(
                    f"{trace_id}  {len(trace.spans):>7d} span(s)  "
                    f"{trace.n_shards:>3d} shard(s)  "
                    f"{len(trace.pids):>3d} process(es)"
                )
            return 0
        trace = telemetry.load_trace(args.trace_dir, args.trace)
    except telemetry.TraceError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        if action == "summary":
            payload = telemetry.summary(trace)
        elif action == "critical-path":
            payload = telemetry.critical_path(trace)
        else:
            payload = {
                "trace": trace.trace_id,
                "spans": [dataclasses.asdict(span) for span in trace.spans],
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if action == "summary":
        print(telemetry.render_summary(trace))
    elif action == "critical-path":
        print(telemetry.render_critical_path(trace))
    else:
        print("\n".join(telemetry.tree_lines(trace)))
    return 0


def run_ingest_command(args) -> int:
    """Load or synthesize an ingest-scale topology and summarize it.

    ``ingest <path>`` reads a topology file — either this library's
    ``repro-network`` JSON or the external distances+bandwidth format —
    and ``ingest synth`` synthesizes an Internet-like graph from a
    power-law degree distribution (``--synth-nodes``, ``--seed``,
    ``--degree-exponent``).  ``--out`` writes the result back out as
    ``repro-network`` JSON (``--emit distances`` for the external format),
    so synthesized or converted topologies feed any downstream run.
    """
    import json

    from repro.net import ingest, io
    from repro.net.paths import network_signature

    if args.target is None:
        print(
            "ingest needs a topology file or 'synth', e.g. "
            "'ingest topo.json' or 'ingest synth --synth-nodes 1000'",
            file=sys.stderr,
        )
        return 2
    if args.target == "synth":
        network = ingest.synthesize_internet_like(
            args.synth_nodes,
            seed=args.seed,
            degree_exponent=args.degree_exponent,
        )
    else:
        try:
            network = io.load(args.target)
        except (OSError, ValueError) as exc:
            print(f"ingest: {exc}", file=sys.stderr)
            return 1
    if args.out is not None:
        if args.emit == "distances":
            with open(args.out, "w") as handle:
                handle.write(ingest.to_distances_json(network))
        else:
            io.save(network, args.out)
    histogram = ingest.degree_histogram(network)
    degrees = [d for d, count in histogram.items() for _ in range(count)]
    min_degree = min(degrees) if degrees else 0
    max_degree = max(degrees) if degrees else 0
    mean_degree = sum(degrees) / len(degrees) if degrees else 0.0
    signature = network_signature(network)
    if args.format == "json":
        summary = {
            "name": network.name,
            "nodes": network.num_nodes,
            "directed_links": network.num_links,
            "min_degree": min_degree,
            "max_degree": max_degree,
            "mean_degree": mean_degree,
            "total_capacity_bps": network.total_capacity_bps(),
            "signature": signature,
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"{network.name}: {network.num_nodes} nodes, "
        f"{network.num_links} directed links, degree "
        f"{min_degree}..{max_degree} (mean {mean_degree:.2f})"
    )
    print(f"signature {signature[:16]}…")
    if args.out is not None:
        print(f"wrote {args.out} ({args.emit})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig03), 'render' to re-draw one purely from "
        "the result store, 'dispatch'/'worker' for sharded subprocess "
        "runs, 'scenarios' for perturbation-fleet robustness reports, "
        "'store' for ls/gc, 'trace' to analyze recorded telemetry, "
        "'ingest' to load/synthesize Internet-scale topologies, "
        "or 'list' to enumerate available ones",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="figure id (render), scheme name or figure id (dispatch), "
        "manifest path (worker), action (store: ls|gc; trace: "
        "summary|tree|critical-path|ls), topology file or 'synth' "
        "(ingest)",
    )
    parser.add_argument("--networks", type=int, default=12)
    parser.add_argument("--tms", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--growth-factor",
        type=float,
        default=1.3,
        help="workload min-cut load shaping (1.3 = the paper's default "
        "77%% load; fig08 always uses its own 1.65).  Matters for "
        "dispatch and for store gc --match-workload, whose signature "
        "must describe the workload that populated the store",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard evaluation tasks across this many processes (results "
        "identical); multi-call figures run their whole grid on one pool",
    )
    parser.add_argument(
        "--schedule",
        choices=("interleave", "lpt"),
        default="interleave",
        help="task scheduling policy: 'interleave' (round-robin across "
        "streams, the default) or 'lpt' (longest-predicted-first "
        "ordering and makespan-balanced dispatch shards; replays "
        "measured timings from --store-dir when available).  Results "
        "are identical either way",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-network KSP caches (and fig20's grown "
        "topologies) here; repeated and parallel runs warm-start from "
        "disk",
    )
    parser.add_argument(
        "--cache-max-paths",
        type=int,
        default=None,
        help="keep at most this many KSP paths per node pair in each "
        "persisted cache file",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="after the run, evict least-recently-used ksp-*.json files "
        "from --cache-dir until it fits this budget",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="persist per-network results here (append-only JSONL keyed by "
        "workload content hash); interrupted runs resume and 'render' "
        "re-draws without re-evaluating",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve already-stored networks from --store-dir instead of "
        "re-evaluating them (--no-resume discards the stored streams)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shard manifests / worker subprocesses (dispatch)",
    )
    parser.add_argument(
        "--work-dir",
        default=None,
        help="where dispatch writes shard manifests and worker stores "
        "(default: a temp directory, removed afterwards)",
    )
    parser.add_argument(
        "--params",
        default=None,
        help="JSON object of scheme params for dispatch, e.g. "
        "'{\"headroom\": 0.1}'",
    )
    parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="store gc: prune workload-signature dirs whose newest stream "
        "is older than this many days",
    )
    parser.add_argument(
        "--keep",
        action="append",
        default=None,
        metavar="SIGNATURE",
        help="store gc: prune signature dirs NOT listed here (repeatable)",
    )
    parser.add_argument(
        "--match-workload",
        action="store_true",
        help="store gc: keep only the signature of the workload described "
        "by --networks/--tms/--seed, prune the rest",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="store ls: add a per-stream column with total/mean stored "
        "evaluation seconds (the timings the 'lpt' schedule replays); "
        "with --trace-dir also a span-derived per-phase breakdown",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="threshold for the 'repro' logger on stderr (serial-fallback "
        "notices and other diagnostics)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="record span telemetry into per-process JSONL shards under "
        "this directory (off by default; never changes results); the "
        "'trace' command reads the same directory back",
    )
    parser.add_argument(
        "--trace-id",
        default=None,
        help="override the workload-derived trace id when recording "
        "(rarely needed; dispatch coordinators and workers converge on "
        "the same id without it)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="trace command: which trace id (or unique prefix) to analyze "
        "when the directory holds several",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="trace / scenarios / ingest command output format",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="ingest: write the loaded/synthesized topology to this path",
    )
    parser.add_argument(
        "--emit",
        choices=("repro", "distances"),
        default="repro",
        help="ingest --out format: 'repro' (repro-network JSON) or "
        "'distances' (external distances+bandwidth JSON)",
    )
    parser.add_argument(
        "--synth-nodes",
        type=int,
        default=1000,
        help="ingest synth: number of nodes to synthesize",
    )
    parser.add_argument(
        "--degree-exponent",
        type=float,
        default=2.1,
        help="ingest synth: power-law exponent of the degree distribution "
        "(2.1 is the usual AS-graph figure)",
    )
    parser.add_argument(
        "--failures",
        type=int,
        default=2,
        help="scenarios: fail every combination of this many physical "
        "links (0 disables; sampled beyond --variant-budget)",
    )
    parser.add_argument(
        "--node-failures",
        type=int,
        default=0,
        help="scenarios: fail every combination of this many nodes "
        "(demands touching a failed node are dropped)",
    )
    parser.add_argument(
        "--surges",
        type=int,
        default=0,
        help="scenarios: number of seeded flash-crowd variants",
    )
    parser.add_argument(
        "--surge-factor",
        type=float,
        default=5.0,
        help="scenarios: demand multiplier a flash crowd applies",
    )
    parser.add_argument(
        "--surge-pairs",
        type=int,
        default=2,
        help="scenarios: demand pairs surged per flash-crowd variant",
    )
    parser.add_argument(
        "--localities",
        default="",
        help="scenarios: comma-separated locality values, one regional "
        "demand-shift variant each (e.g. '0.5,1.0,2.0')",
    )
    parser.add_argument(
        "--growth-stages",
        type=int,
        default=0,
        help="scenarios: staged topology growth depth; stage s adds the "
        "first s candidate links (geographically shortest first)",
    )
    parser.add_argument(
        "--variant-budget",
        type=int,
        default=1000,
        help="scenarios: per-kind variant cap; failure enumeration is "
        "exhaustive while the combination count fits, seeded distinct "
        "sampling beyond it",
    )
    parser.add_argument(
        "--schemes",
        default="SP,ECMP,MPLS-TE,B4",
        help="scenarios: comma-separated schemes to compare ('list' "
        "shows the registry)",
    )
    parser.add_argument(
        "--base-network",
        type=int,
        default=None,
        help="scenarios: workload index of the base network to perturb "
        "(default: the best-connected one)",
    )
    parser.add_argument(
        "--dispatch",
        action="store_true",
        help="scenarios: run the fleet as one dispatched plan across "
        "--shards worker subprocesses (needs --store-dir); the report "
        "is byte-identical to the in-process run",
    )
    args = parser.parse_args(argv)
    args.store_only = False

    from repro.experiments.store import StoreError
    from repro.logutil import configure_logging

    configure_logging(args.log_level)

    figure = args.figure
    if args.trace_dir is not None and figure not in ("trace", "store", "list"):
        from repro.experiments import telemetry

        telemetry.configure(args.trace_dir, trace=args.trace_id)

    if figure == "trace":
        return run_trace_command(args)
    if figure in ("worker", "dispatch", "store", "scenarios", "ingest"):
        command = {
            "worker": run_worker_command,
            "dispatch": run_dispatch_command,
            "store": run_store_command,
            "scenarios": run_scenarios_command,
            "ingest": run_ingest_command,
        }[figure]
        try:
            return command(args)
        except StoreError as exc:
            print(f"{figure}: {exc}", file=sys.stderr)
            return 1
    if figure == "list":
        from repro.experiments.spec import registered_schemes

        print("available:", ", ".join(sorted(FIGURES)))
        print("store-backed (resumable, renderable):",
              ", ".join(store_backed_figures()))
        print("dispatchable (whole-plan shards):",
              ", ".join(dispatchable_figures()))
        print("dispatchable schemes (dispatch/worker):",
              ", ".join(registered_schemes()))
        print("(figures 15/16/19 run via pytest benchmarks/ --benchmark-only)")
        return 0
    if figure == "render":
        if args.target is None:
            print("render needs a figure id, e.g. 'render fig03'",
                  file=sys.stderr)
            return 2
        if args.store_dir is None:
            print("render needs --store-dir", file=sys.stderr)
            return 2
        figure = args.target
        args.store_only = True
        if figure not in FIGURES or not FIGURES[figure].store_backed:
            print(f"figure {figure!r} is not store-backed; choose one of "
                  f"{', '.join(store_backed_figures())}", file=sys.stderr)
            return 2
    elif args.target is not None:
        print(f"unexpected extra argument {args.target!r}", file=sys.stderr)
        return 2

    figure_def = FIGURES.get(figure)
    if figure_def is None:
        print(f"unknown figure {figure!r}; try 'list'", file=sys.stderr)
        return 2

    try:
        opts = engine_options(args) if figure_def.store_backed else {}
        print(figure_def.render(args, opts))
    except StoreError as exc:
        print(f"result store: {exc}", file=sys.stderr)
        return 1

    if args.cache_dir is not None and args.cache_max_bytes is not None:
        from repro.net.paths import sweep_ksp_cache_dir

        removed = sweep_ksp_cache_dir(args.cache_dir, args.cache_max_bytes)
        if removed:
            print(f"evicted {len(removed)} KSP cache file(s) from "
                  f"{args.cache_dir}")
    if args.trace_dir is not None:
        from repro.experiments import telemetry

        telemetry.recorder().flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line runner: regenerate a paper figure from the terminal.

Usage::

    python -m repro.experiments fig03 [--networks 18] [--tms 2] [--workers 4]
    python -m repro.experiments fig03 --store-dir results/   # persist + resume
    python -m repro.experiments render fig03 --store-dir results/
    python -m repro.experiments dispatch SP --shards 2 --store-dir results/
    python -m repro.experiments worker shard-000.json --store-dir worker0/
    python -m repro.experiments store ls --store-dir results/
    python -m repro.experiments store gc --store-dir results/ --max-age-days 30
    python -m repro.experiments list

With ``--store-dir``, every completed network's results are appended to a
durable result store keyed by workload content hash, so a killed run
restarted with the same arguments evaluates only the missing networks
(``--resume``, the default; ``--no-resume`` discards the stored stream and
recomputes).  The ``render`` subcommand re-draws a figure *purely* from the
store — zero scheme evaluations — and fails if any result is missing.

``dispatch`` shards the standard workload into self-contained JSON shard
manifests, evaluates them in separate ``worker`` subprocesses (each
appending to its own store), and merges the worker stores back into
``--store-dir`` — the same cycle a multi-host run performs by copying
manifests out and store directories back.  ``worker`` is that
subprocess's entry point and runs anywhere the package is importable.
``store ls`` / ``store gc`` list and prune the store's streams.

Benchmarks under ``benchmarks/`` do the same with timing and shape
assertions; this entry point is the quick, dependency-free way to look at
one figure's numbers.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def build_workload(args, growth_factor: float = None):
    from repro.experiments.workloads import build_zoo_workload

    if growth_factor is None:
        # Callers with a fixed setting (fig08's lighter load) pass it
        # explicitly; everything else follows --growth-factor so that
        # `store gc --match-workload` and `dispatch` can describe any
        # workload the figure runners can build.
        growth_factor = getattr(args, "growth_factor", 1.3)
    return build_zoo_workload(
        n_networks=args.networks,
        n_matrices=args.tms,
        locality=1.0,
        growth_factor=growth_factor,
        seed=args.seed,
    )


def engine_options(args) -> dict:
    """Engine/store keyword arguments shared by the store-backed figures."""
    return dict(
        n_workers=args.workers,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        resume=args.resume,
        store_only=args.store_only,
        cache_max_paths=args.cache_max_paths,
    )


def run_fig01(args) -> str:
    from repro.experiments.figures import fig01_apa_cdfs
    from repro.experiments.render import render_cdf

    workload = build_workload(args)
    curves = fig01_apa_cdfs([item.network for item in workload.networks])
    return "\n\n".join(
        render_cdf(f"APA: {name}", cdf) for name, cdf in sorted(curves.items())
    )


def run_fig03(args) -> str:
    from repro.experiments.figures import fig03_sp_congestion
    from repro.experiments.render import render_series

    result = fig03_sp_congestion(build_workload(args), **engine_options(args))
    return render_series(
        "Fig 3: congested fraction vs LLPD (SP)", result, x_label="LLPD"
    )


def run_fig04(args) -> str:
    from repro.experiments.figures import fig04_schemes
    from repro.experiments.render import render_series

    results = fig04_schemes(build_workload(args), **engine_options(args))
    series = {}
    for scheme, data in results.items():
        series[f"{scheme}:cong"] = data["congestion_median"]
        series[f"{scheme}:stretch"] = data["stretch_median"]
    return render_series("Fig 4: schemes vs LLPD", series, x_label="LLPD")


def run_fig07(args) -> str:
    from repro.experiments.figures import fig07_utilization_cdf
    from repro.experiments.render import render_cdf
    from repro.experiments.workloads import build_traffic_matrices
    from repro.net.zoo import gts_like

    network = gts_like()
    tm = build_traffic_matrices(
        network, 1, np.random.default_rng(args.seed), 1.0, 1.3
    )[0]
    result = fig07_utilization_cdf(network, tm)
    return "\n\n".join(
        render_cdf(name, values) for name, values in result.items()
    )


def run_fig08(args) -> str:
    from repro.experiments.figures import fig08_headroom_sweep
    from repro.experiments.render import render_series

    results = fig08_headroom_sweep(
        build_workload(args, growth_factor=1.65), **engine_options(args)
    )
    return render_series(
        "Fig 8: stretch vs LLPD per headroom",
        {f"h={h:.0%}": points for h, points in results.items()},
        x_label="LLPD",
    )


def run_fig09(args) -> str:
    from repro.experiments.figures import fig09_prediction_ratios
    from repro.experiments.render import render_cdf
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        8, np.random.default_rng(args.seed), minutes=30, sample_ms=100
    )
    ratios = fig09_prediction_ratios(traces, 600)
    return render_cdf("Fig 9: measured/predicted", ratios)


def run_fig10(args) -> str:
    from repro.experiments.figures import fig10_sigma_scatter
    from repro.experiments.render import render_scatter_summary
    from repro.traces import trace_ensemble

    traces = trace_ensemble(
        6, np.random.default_rng(args.seed), minutes=15, sample_ms=10
    )
    points = fig10_sigma_scatter(traces, 6000)
    return render_scatter_summary("Fig 10: sigma(t) vs sigma(t+1)", points)


def run_fig17(args) -> str:
    from repro.experiments.figures import fig17_load_sweep
    from repro.experiments.render import render_series

    workload = build_workload(args)
    results = fig17_load_sweep(workload.networks, **engine_options(args))
    return render_series(
        "Fig 17: median max path stretch vs load", results, x_label="load"
    )


def run_fig18(args) -> str:
    from repro.experiments.figures import fig18_locality_sweep
    from repro.experiments.render import render_series
    from repro.net.zoo import generate_zoo

    # The sweep generates its own matrices and ignores LLPD, so build the
    # bare networks (same ensemble as build_workload) rather than paying
    # for a full workload's matrices and APA analysis.
    networks = [
        network
        for network in generate_zoo(args.networks, seed=args.seed)
        if network.num_nodes >= 2
    ]
    results = fig18_locality_sweep(
        networks,
        n_matrices=args.tms,
        seed=args.seed,
        **engine_options(args),
    )
    return render_series(
        "Fig 18: median max path stretch vs locality",
        results,
        x_label="locality",
    )


def run_fig20(args) -> str:
    from repro.experiments.figures import fig20_growth_benefit
    from repro.experiments.render import render_scatter_summary

    workload = build_workload(args)
    results = fig20_growth_benefit(workload.networks, **engine_options(args))
    sections = []
    for scheme, data in results.items():
        sections.append(
            render_scatter_summary(
                f"Fig 20 {scheme}: stretch before (x) vs after (y)",
                data["median"],
            )
        )
    return "\n\n".join(sections)


def run_worker_command(args) -> int:
    """`worker <manifest>`: evaluate one shard into its own store."""
    from repro.experiments.dispatch import run_worker

    if args.target is None:
        print("worker needs a manifest path", file=sys.stderr)
        return 2
    if args.store_dir is None:
        print("worker needs --store-dir", file=sys.stderr)
        return 2
    summary = run_worker(
        args.target,
        store_dir=args.store_dir,
        cache_dir=args.cache_dir,
        cache_max_paths=args.cache_max_paths,
        resume=args.resume,
    )
    print(
        f"worker: shard {summary['shard_index'] + 1}/{summary['n_shards']} "
        f"scheme {summary['scheme']}: evaluated {summary['evaluated']}, "
        f"skipped {summary['skipped']} (already stored) -> "
        f"{summary['stream']}"
    )
    return 0


def run_dispatch_command(args) -> int:
    """`dispatch <scheme>`: shard, run subprocess workers, merge, serve."""
    import json

    from repro.experiments.dispatch import dispatch_run
    from repro.experiments.spec import SchemeSpec, registered_schemes

    if args.target is None:
        print(
            f"dispatch needs a scheme name; registered: "
            f"{', '.join(registered_schemes())}",
            file=sys.stderr,
        )
        return 2
    if args.store_dir is None:
        print("dispatch needs --store-dir", file=sys.stderr)
        return 2
    params = json.loads(args.params) if args.params else {}
    spec = SchemeSpec(args.target, params)
    workload = build_workload(args)
    outcomes = dispatch_run(
        spec,
        workload,
        n_shards=args.shards,
        store_dir=args.store_dir,
        work_dir=args.work_dir,
        cache_dir=args.cache_dir,
        cache_max_paths=args.cache_max_paths,
        resume=args.resume,
    )
    print(
        f"dispatch: {args.shards} shard worker(s) evaluated "
        f"{len(workload.networks)} networks "
        f"({len(outcomes)} outcomes) for scheme {spec.scheme!r}; "
        f"merged into {args.store_dir}"
    )
    return 0


def run_store_command(args) -> int:
    """`store ls` / `store gc`: list and prune result-store streams."""
    from repro.experiments.store import ResultStore, workload_signature

    if args.target not in ("ls", "gc"):
        print("store needs an action: ls or gc", file=sys.stderr)
        return 2
    if args.store_dir is None:
        print("store needs --store-dir", file=sys.stderr)
        return 2
    store = ResultStore(args.store_dir)
    if args.target == "ls":
        streams = store.list_streams()
        if not streams:
            print(f"store {args.store_dir}: empty")
            return 0
        for record in streams:
            scheme = record["scheme"] or "<no valid header>"
            total = record["n_networks"]
            progress = (
                f"{record['n_results']}/{total}"
                if total is not None
                else f"{record['n_results']}"
            )
            print(
                f"{record['signature'][:16]}  {scheme:24s} "
                f"{progress:>9s} networks  {record['bytes']:>10d} bytes"
            )
        return 0

    keep = None
    if args.match_workload:
        # Prune everything except the signature of the workload the other
        # CLI flags describe — the knob for "keep only the current run".
        keep = {workload_signature(build_workload(args))}
    if args.keep:
        keep = (keep or set()) | set(args.keep)
    max_age_s = (
        args.max_age_days * 86400.0 if args.max_age_days is not None else None
    )
    if max_age_s is None and keep is None:
        print(
            "store gc needs --max-age-days, --keep or --match-workload "
            "(refusing to prune everything by default)",
            file=sys.stderr,
        )
        return 2
    removed = store.gc(max_age_s=max_age_s, keep_signatures=keep)
    if removed:
        for path in removed:
            print(f"pruned {path}")
    else:
        print("nothing to prune")
    return 0


RUNNERS = {
    "fig01": run_fig01,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig20": run_fig20,
}

#: Figures whose evaluations go through the engine and hence the store.
STORE_BACKED = {"fig03", "fig04", "fig08", "fig17", "fig18", "fig20"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig03), 'render' to re-draw one purely from "
        "the result store, 'dispatch'/'worker' for sharded subprocess "
        "runs, 'store' for ls/gc, or 'list' to enumerate available ones",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="figure id (render), scheme name (dispatch), manifest path "
        "(worker), or action (store: ls|gc)",
    )
    parser.add_argument("--networks", type=int, default=12)
    parser.add_argument("--tms", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--growth-factor",
        type=float,
        default=1.3,
        help="workload min-cut load shaping (1.3 = the paper's default "
        "77%% load; fig08 always uses its own 1.65).  Matters for "
        "dispatch and for store gc --match-workload, whose signature "
        "must describe the workload that populated the store",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard networks across this many processes (results identical)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-network KSP caches here; repeated and parallel "
        "runs warm-start from disk",
    )
    parser.add_argument(
        "--cache-max-paths",
        type=int,
        default=None,
        help="keep at most this many KSP paths per node pair in each "
        "persisted cache file",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="after the run, evict least-recently-used ksp-*.json files "
        "from --cache-dir until it fits this budget",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="persist per-network results here (append-only JSONL keyed by "
        "workload content hash); interrupted runs resume and 'render' "
        "re-draws without re-evaluating",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve already-stored networks from --store-dir instead of "
        "re-evaluating them (--no-resume discards the stored stream)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shard manifests / worker subprocesses (dispatch)",
    )
    parser.add_argument(
        "--work-dir",
        default=None,
        help="where dispatch writes shard manifests and worker stores "
        "(default: a temp directory, removed afterwards)",
    )
    parser.add_argument(
        "--params",
        default=None,
        help="JSON object of scheme params for dispatch, e.g. "
        "'{\"headroom\": 0.1}'",
    )
    parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="store gc: prune workload-signature dirs whose newest stream "
        "is older than this many days",
    )
    parser.add_argument(
        "--keep",
        action="append",
        default=None,
        metavar="SIGNATURE",
        help="store gc: prune signature dirs NOT listed here (repeatable)",
    )
    parser.add_argument(
        "--match-workload",
        action="store_true",
        help="store gc: keep only the signature of the workload described "
        "by --networks/--tms/--seed, prune the rest",
    )
    args = parser.parse_args(argv)
    args.store_only = False

    from repro.experiments.store import StoreError

    figure = args.figure
    if figure in ("worker", "dispatch", "store"):
        command = {
            "worker": run_worker_command,
            "dispatch": run_dispatch_command,
            "store": run_store_command,
        }[figure]
        try:
            return command(args)
        except StoreError as exc:
            print(f"{figure}: {exc}", file=sys.stderr)
            return 1
    if figure == "list":
        from repro.experiments.spec import registered_schemes

        print("available:", ", ".join(sorted(RUNNERS)))
        print("store-backed (resumable, renderable):",
              ", ".join(sorted(STORE_BACKED)))
        print("dispatchable schemes (dispatch/worker):",
              ", ".join(registered_schemes()))
        print("(figures 15/16/19 run via pytest benchmarks/ --benchmark-only)")
        return 0
    if figure == "render":
        if args.target is None:
            print("render needs a figure id, e.g. 'render fig03'",
                  file=sys.stderr)
            return 2
        if args.store_dir is None:
            print("render needs --store-dir", file=sys.stderr)
            return 2
        figure = args.target
        args.store_only = True
        if figure not in STORE_BACKED:
            print(f"figure {figure!r} is not store-backed; choose one of "
                  f"{', '.join(sorted(STORE_BACKED))}", file=sys.stderr)
            return 2
    elif args.target is not None:
        print(f"unexpected extra argument {args.target!r}", file=sys.stderr)
        return 2

    runner = RUNNERS.get(figure)
    if runner is None:
        print(f"unknown figure {figure!r}; try 'list'", file=sys.stderr)
        return 2

    from repro.experiments.store import StoreError

    try:
        print(runner(args))
    except StoreError as exc:
        print(f"result store: {exc}", file=sys.stderr)
        return 1

    if args.cache_dir is not None and args.cache_max_bytes is not None:
        from repro.net.paths import sweep_ksp_cache_dir

        removed = sweep_ksp_cache_dir(args.cache_dir, args.cache_max_bytes)
        if removed:
            print(f"evicted {len(removed)} KSP cache file(s) from "
                  f"{args.cache_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

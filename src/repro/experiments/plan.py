"""Evaluation plans: whole-figure batches across schemes and sweeps.

The paper's headline scaling result (its Figure 15) is about evaluation
runtime, yet running a figure one ``evaluate_scheme`` call at a time
serializes the outer loops: Figure 17 is 16 calls (4 loads x 4 schemes)
and Figure 18 is 20, each paying for a fresh process pool while tasks
from different schemes and sweep points never overlap.  An
:class:`EvalPlan` turns the whole (scheme x sweep-point x network) grid
into one flat batch:

* A **stream** is one (scheme factory, workload) pairing — exactly the
  unit today's per-call path evaluates — registered under a hashable
  ``key`` (a string, or a structured tuple like ``("B4", 0.6)``).  Each
  stream also names its durable result-store stream (``scheme``), so a
  plan run resumes per-stream against the same
  ``<store>/<workload-sig>/<scheme>.jsonl`` files the per-call path used.
* An :class:`EvalTask` is the flat, picklable unit of execution: one
  (stream key, network index) pair.  Paired with its plan's stream entry
  it denotes (scheme spec, workload item, global index, store stream
  key); only the task itself ever crosses a process boundary on ``fork``
  pools.
* :meth:`EvalPlan.tasks` flattens the plan through a pluggable
  :class:`Scheduler`.  The default :class:`InterleaveScheduler` keeps
  the historical round-robin order (a shared pool alternates schemes
  and sweep points instead of draining one scheme before starting the
  next); :class:`~repro.experiments.cost.LptScheduler` orders
  longest-predicted-first so the pool never tails on one heavy LP
  solve scheduled last.

Execution is the engine's job —
:meth:`repro.experiments.engine.ExperimentEngine.run_plan` runs an
entire plan on **one** shared process pool (fork and spawn alike) and
returns a :class:`PlanReport` keyed by stream.  Because every task is
the same pure per-network function the per-call path runs, plan
execution is bit-identical to per-call execution for any worker count
*and any task order* — scheduling is pure sequencing, never semantics;
:func:`execute_plan` is the one-call convenience wrapper mirroring
:func:`repro.experiments.runner.evaluate_scheme`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.workloads import NetworkWorkload, ZooWorkload

if TYPE_CHECKING:  # circular at runtime: the engine imports this module
    from repro.experiments.engine import NetworkResult
    from repro.experiments.runner import SchemeOutcome

#: Same shape the engine consumes: ``(item) -> RoutingScheme``.
SchemeFactory = Callable[[NetworkWorkload], object]


@dataclass(frozen=True)
class EvalTask:
    """One flat unit of plan execution: a network of one stream.

    ``stream`` is the plan key of the stream the task belongs to and
    ``index`` the item's position in that stream's workload — the same
    global index the per-call path would report, so ids and store
    records line up exactly.  Tasks are trivially picklable; the stream
    entry they reference (factory, workload item, store stream name)
    stays on the plan and never crosses a ``fork`` pipe.
    """

    stream: Hashable
    index: int


@dataclass
class PlanStream:
    """One (factory, workload) pairing of a plan.

    ``key`` is the plan-local handle reducers read results back under;
    ``scheme`` names the durable result-store stream (a string, since it
    becomes a file name).  Keeping the two separate is what kills the
    string-mangled result keys the figure layer used to build: reducers
    index ``("B4", 0.6)`` while the store keeps its stable
    ``"B4@load=0.6"`` stream names.
    """

    key: Hashable
    factory: SchemeFactory
    workload: ZooWorkload
    scheme: str
    matrices_per_network: Optional[int] = None
    #: Relative difficulty multiplier for the static cost predictor
    #: (:mod:`repro.experiments.cost`).  Plan builders set it for sweep
    #: parameters that shape solver difficulty without changing the
    #: topology the predictor can see — e.g. fig17's target load or
    #: fig08's headroom.  Pure scheduling input; never affects results.
    cost_hint: float = 1.0

    @property
    def n_networks(self) -> int:
        return len(self.workload.networks)


class Scheduler:
    """Sequencing policy for a plan's flat task list.

    A scheduler decides pure *order*, never semantics: every task is an
    independent pure function and results are keyed by (stream, index),
    so any scheduler yields bit-identical :class:`PlanReport` contents.
    Three hooks:

    * :meth:`order` — the execution sequence :meth:`EvalPlan.tasks`
      returns (what a shared process pool consumes, first-come
      first-served).
    * :meth:`partition` — how :mod:`repro.experiments.dispatch` splits a
      whole plan into per-worker shards.  The default cuts contiguous,
      equal-*count* chunks of :meth:`order`'s sequence; cost-aware
      schedulers override it to balance predicted *makespan* instead.
    * :meth:`predictions` — per-task predicted cost in seconds, empty
      when the scheduler is not cost-aware.  The engine records these
      in :attr:`PlanReport.predicted` next to the measured seconds.
    """

    #: Stable identifier (the CLI's ``--schedule`` vocabulary).
    name: str = "scheduler"

    def order(
        self, plan: "EvalPlan", per_stream: List[List["EvalTask"]]
    ) -> List["EvalTask"]:
        """Flatten per-stream task lists into one execution sequence."""
        raise NotImplementedError

    def iter_order(
        self, plan: "EvalPlan", per_stream: List[Iterable["EvalTask"]]
    ) -> Iterator["EvalTask"]:
        """Lazily flatten per-stream task iterables into one sequence.

        The default materializes each stream and delegates to
        :meth:`order` — correct for every scheduler (including
        cost-aware ones, which need the whole list anyway).  Schedulers
        whose order is computable online (the round-robin default)
        override this to stay O(streams) in memory, which is what lets
        a 10^5-task scenario fleet stream without ever holding its task
        list.  Must yield exactly :meth:`order`'s sequence.
        """
        return iter(self.order(plan, [list(tasks) for tasks in per_stream]))

    def predictions(
        self, plan: "EvalPlan"
    ) -> Dict[Tuple[Hashable, int], float]:
        """Predicted seconds per (stream key, index); ``{}`` if unknown."""
        return {}

    def partition(
        self, plan: "EvalPlan", n_shards: int
    ) -> List[List["EvalTask"]]:
        """Split the plan's tasks into at most ``n_shards`` shards.

        Default policy: contiguous, equal-size chunks of this
        scheduler's :meth:`order` sequence.  For the round-robin default
        that gives every shard a balanced mix of all streams (a
        contiguous chunk of an interleaved list cycles through every
        stream, whereas stride striping would resonate with the stream
        count).  Always returns at least one shard; never more shards
        than tasks.
        """
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        tasks = plan.tasks(scheduler=self)
        n_effective = min(n_shards, max(len(tasks), 1))
        base, extra = divmod(len(tasks), n_effective)
        shards: List[List[EvalTask]] = []
        position = 0
        for shard in range(n_effective):
            size = base + (1 if shard < extra else 0)
            shards.append(tasks[position:position + size])
            position += size
        return shards


class InterleaveScheduler(Scheduler):
    """The byte-compatible default: round-robin across streams.

    Position ``i`` of every stream runs before position ``i + 1`` of
    any, so a pool with few workers alternates schemes and sweep points
    — and a single-stream plan degenerates to plain workload order.
    Cost-blind by design; see
    :class:`~repro.experiments.cost.LptScheduler` for the cost-aware
    alternative.
    """

    name = "interleave"

    def order(
        self, plan: "EvalPlan", per_stream: List[List["EvalTask"]]
    ) -> List["EvalTask"]:
        interleaved: List[EvalTask] = []
        for position in range(max((len(t) for t in per_stream), default=0)):
            for tasks in per_stream:
                if position < len(tasks):
                    interleaved.append(tasks[position])
        return interleaved

    def iter_order(
        self, plan: "EvalPlan", per_stream: List[Iterable["EvalTask"]]
    ) -> Iterator["EvalTask"]:
        """Truly lazy round-robin: O(streams) state, same sequence.

        Exhausted streams drop out of the rotation, matching
        :meth:`order` exactly (position ``i`` of every live stream
        before position ``i + 1`` of any).
        """
        live = [iter(tasks) for tasks in per_stream]
        while live:
            still_live: List[Iterator[EvalTask]] = []
            for tasks_iter in live:
                task = next(tasks_iter, None)
                if task is not None:
                    yield task
                    still_live.append(tasks_iter)
            live = still_live


class EvalPlan:
    """A whole figure's evaluation grid, declared up front.

    Builders :meth:`add` one stream per (scheme, sweep point); the
    engine executes all of them in a single pass over one shared pool.
    Stream keys must be unique per plan and hashable; non-string keys
    (sweep tuples) must name their store stream explicitly.
    """

    def __init__(self) -> None:
        self.streams: Dict[Hashable, PlanStream] = {}

    def add(
        self,
        key: Hashable,
        factory: SchemeFactory,
        workload: ZooWorkload,
        scheme: Optional[str] = None,
        matrices_per_network: Optional[int] = None,
        cost_hint: float = 1.0,
    ) -> Hashable:
        """Register one stream; returns ``key`` for chaining convenience.

        ``cost_hint`` biases the static cost predictor for this stream
        (see :class:`PlanStream`); it has no effect on results.
        """
        if key in self.streams:
            raise ValueError(f"duplicate plan stream key {key!r}")
        if scheme is None:
            if not isinstance(key, str):
                raise ValueError(
                    f"stream key {key!r} is not a string; pass an explicit "
                    f"scheme stream name"
                )
            scheme = key
        if not scheme:
            raise ValueError("scheme stream name must be non-empty")
        if cost_hint <= 0.0:
            raise ValueError(f"cost_hint must be positive, got {cost_hint}")
        self.streams[key] = PlanStream(
            key=key,
            factory=factory,
            workload=workload,
            scheme=scheme,
            matrices_per_network=matrices_per_network,
            cost_hint=cost_hint,
        )
        return key

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def n_tasks(self) -> int:
        return sum(stream.n_networks for stream in self.streams.values())

    def item(self, task: EvalTask) -> NetworkWorkload:
        """The workload item a task evaluates."""
        return self.streams[task.stream].workload.networks[task.index]

    def tasks(
        self,
        indices: Optional[Dict[Hashable, Sequence[int]]] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> List[EvalTask]:
        """Flatten the plan into one execution sequence.

        ``indices`` restricts each stream to the given network indices
        (the store-resume path passes only the missing ones); by default
        every network of every stream is included.  ``scheduler`` picks
        the sequencing policy; the default
        :class:`InterleaveScheduler` keeps the historical round-robin
        order.  Sequencing never changes results — only which task a
        pool starts when.
        """
        return list(self.iter_tasks(indices=indices, scheduler=scheduler))

    def iter_tasks(
        self,
        indices: Optional[Dict[Hashable, Sequence[int]]] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> Iterator[EvalTask]:
        """Lazily generate the execution sequence of :meth:`tasks`.

        Per-stream tasks are generated on demand and flattened through
        :meth:`Scheduler.iter_order`; with the round-robin default the
        whole pipeline is O(streams) in memory, so plans over lazy
        workloads (scenario fleets of 10^5+ variants) stream without
        ever materializing the task list.  The sequence is identical to
        :meth:`tasks` by contract.
        """
        def stream_tasks(
            key: Hashable, wanted: Iterable[int]
        ) -> Iterator[EvalTask]:
            for i in wanted:
                yield EvalTask(stream=key, index=i)

        per_stream: List[Iterable[EvalTask]] = []
        for key, stream in self.streams.items():
            wanted: Iterable[int] = (
                indices.get(key, []) if indices is not None
                else range(stream.n_networks)
            )
            per_stream.append(stream_tasks(key, wanted))
        if scheduler is None:
            scheduler = InterleaveScheduler()
        return scheduler.iter_order(self, per_stream)

    def spawn_safe(self) -> bool:
        """Whether every stream's factory can cross a spawn/host boundary."""
        from repro.experiments.spec import is_spawn_safe

        return all(
            is_spawn_safe(stream.factory) for stream in self.streams.values()
        )


@dataclass
class PlanReport:
    """Result of one plan run: per-stream results in workload order.

    ``predicted`` holds the scheduler's per-task cost predictions (by
    stream key, then index) when a cost-aware scheduler ran; measured
    times live on each :class:`NetworkResult`, and
    :meth:`cost_report` joins the two for calibration analysis.
    """

    results: Dict[Hashable, List["NetworkResult"]] = field(
        default_factory=dict
    )
    #: Predicted seconds per stream key and network index — empty for
    #: cost-blind schedulers (the interleave default).
    predicted: Dict[Hashable, Dict[int, float]] = field(default_factory=dict)
    #: Result-store scheme stream name per plan key (streams without a
    #: scheme name are absent).  Lets :meth:`cost_report` join telemetry
    #: phase breakdowns — which are keyed by scheme — back to plan keys.
    schemes: Dict[Hashable, str] = field(default_factory=dict)

    def outcomes(self, key: Hashable) -> List["SchemeOutcome"]:
        """One stream's outcomes flattened in workload order."""
        return [o for result in self.results[key] for o in result.outcomes]

    def all_outcomes(self) -> Dict[Hashable, List["SchemeOutcome"]]:
        """Every stream's flattened outcomes, keyed like the plan."""
        return {key: self.outcomes(key) for key in self.results}

    @property
    def total_seconds(self) -> float:
        """Sum of per-network evaluation times across all streams."""
        return sum(
            result.seconds
            for results in self.results.values()
            for result in results
        )

    def timings(self) -> List[Tuple[str, float]]:
        """(network_id, measured seconds) pairs across every stream.

        Streams appear in plan declaration order, each in workload
        order — the flat shape benchmarks and ad-hoc profiling want.
        """
        return [
            (result.network_id, result.seconds)
            for results in self.results.values()
            for result in results
        ]

    def timings_by_stream(self) -> Dict[Hashable, List[Tuple[str, float]]]:
        """Per-stream (network_id, measured seconds) pairs, plan-keyed."""
        return {
            key: [(r.network_id, r.seconds) for r in results]
            for key, results in self.results.items()
        }

    def cost_report(
        self, trace_dir: Optional[str] = None
    ) -> List[Tuple[Hashable, str, float, float, Dict[str, float]]]:
        """(stream key, network_id, predicted, actual, phases) per task.

        Empty when the run's scheduler made no predictions.  The
        calibration view: how far the cost model's guesses landed from
        the seconds the engine then measured.  With a ``trace_dir``, the
        trailing dict breaks each task's actual seconds into span-derived
        phases (``ksp``/``lp_solve``/``place``/...); it is empty when no
        trace covers the task (tracing off, or the row served purely
        from the result store).
        """
        phase_rows: Dict[Tuple[str, str], Dict[str, float]] = {}
        if trace_dir is not None:
            from repro.experiments import telemetry

            for trace_id in telemetry.list_traces(trace_dir):
                try:
                    trace = telemetry.load_trace(trace_dir, trace_id)
                except telemetry.TraceError:
                    continue
                for scheme, networks in telemetry.phase_breakdown(
                    trace
                ).items():
                    for network, phases in networks.items():
                        merged = phase_rows.setdefault((scheme, network), {})
                        for phase, seconds in phases.items():
                            merged[phase] = merged.get(phase, 0.0) + seconds
        rows: List[Tuple[Hashable, str, float, float, Dict[str, float]]] = []
        for key, by_index in self.predicted.items():
            scheme = self.schemes.get(key, "")
            for result in self.results.get(key, []):
                predicted = by_index.get(result.index)
                if predicted is not None:
                    rows.append(
                        (
                            key,
                            result.network_id,
                            predicted,
                            result.seconds,
                            phase_rows.get((scheme, result.network_id), {}),
                        )
                    )
        return rows


def execute_plan(
    plan: EvalPlan,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    resume: bool = True,
    store_only: bool = False,
    cache_max_paths: Optional[int] = None,
    scheduler: "str | Scheduler | None" = None,
) -> PlanReport:
    """Run a whole plan on one shared pool; mirror of ``evaluate_scheme``.

    All engine knobs behave exactly as they do for single-scheme runs:
    ``cache_dir`` warm-starts per-network KSP caches, ``store_dir``
    persists (and resumes) every stream of the plan in one pass, and
    ``store_only`` serves the entire plan from disk, raising
    :class:`~repro.experiments.store.StoreMissError` if any stream is
    incomplete.  ``scheduler`` picks the task sequencing policy — a
    :class:`Scheduler`, a schedule name (``"interleave"``/``"lpt"``) or
    ``None`` for the round-robin default; with ``"lpt"`` and a
    ``store_dir`` the cost model replays learned timings from that
    store.  Results are bit-identical to looping
    :func:`~repro.experiments.runner.evaluate_scheme` over the plan's
    streams, for any worker count, task order, and on fork and spawn
    pools alike.
    """
    from repro.experiments.engine import ExperimentEngine

    engine = ExperimentEngine(
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        resume=resume,
        store_only=store_only,
        cache_max_paths=cache_max_paths,
        scheduler=scheduler,
    )
    return engine.run_plan(plan)

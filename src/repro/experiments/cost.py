"""Cost-aware scheduling: predicted task costs drive LPT ordering.

The heaviest experiments are dominated by a few large LP solves (big
topologies x dense traffic matrices), yet round-robin task interleaving
and contiguous dispatch chunks are blind to cost: a pool drains level on
the small tasks and then tails on one heavy network that happened to
sort last.  The classic fix is longest-processing-time-first (LPT)
scheduling — start the heavy tasks first so the small ones pack into the
gaps — which needs exactly one ingredient: a per-task cost estimate.

:class:`CostModel` supplies it from two sources, best first:

* **Learned costs** — the engine measures per-network evaluation
  ``seconds`` for every task it runs and the result store persists them
  (alongside each network's content-hash signature).  When the store
  holds a measured time for the *same network signature and scheme
  stream*, that measurement IS the prediction: a resumed, repeated or
  re-dispatched run schedules on ground truth.
* **A static predictor** — otherwise cost is estimated from what the
  task's shape reveals: node/link counts, demand-pair count, matrix
  count, a per-scheme-class weight (an LP solve dwarfs a Dijkstra pass)
  and the stream's ``cost_hint`` (sweep parameters like load or headroom
  that shape difficulty without changing the topology).  Units are
  nominal seconds; only the *ordering* matters, so the predictor is
  deliberately simple and fully deterministic.

Two consumers sit on top:

* :class:`LptScheduler` — a :class:`~repro.experiments.plan.Scheduler`
  that orders a plan's flat task list longest-first (engine pools drain
  level instead of tailing), and partitions dispatch shards by greedy
  makespan balancing (:func:`lpt_partition`) instead of contiguous
  chunks.
* :func:`replay_timings` — the store-side reader that feeds the learned
  table; ``store ls --timings`` reuses it to show per-stream totals.

Scheduling never changes results: every task is a pure function of its
workload item and factory, and the store merge is keyed by (signature,
scheme, index), so any execution order yields bit-identical keyed
reports (property-tested in ``tests/test_plan.py``).
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.experiments.plan import (
    EvalPlan,
    EvalTask,
    InterleaveScheduler,
    PlanStream,
    Scheduler,
)
from repro.experiments.workloads import NetworkWorkload

if TYPE_CHECKING:  # runtime import stays lazy (see replay_timings)
    from repro.experiments.store import TaskTiming

#: Relative cost of one (network, matrix) evaluation per scheme class,
#: anchored at shortest-path = 1.  LP-backed schemes (MinMax, LDR, the
#: link-based baseline) dominate greedy path packing (B4, MPLS-TE),
#: which dominates plain path selection (SP, ECMP) — the ordering the
#: paper's Figure 15 runtime comparison measures.  Aliases mirror the
#: spec registry.
SCHEME_WEIGHTS: Dict[str, float] = {
    "SP": 1.0,
    "ShortestPath": 1.0,
    "ECMP": 2.0,
    "MPLS-TE": 6.0,
    "MplsTe": 6.0,
    "B4": 6.0,
    "MinMax": 20.0,
    "MinMaxK10": 25.0,
    "LDR": 30.0,
    "LatencyOptimal": 30.0,
    "Optimal": 30.0,
    "LinkBased": 60.0,
}

#: Weight for closures and unregistered schemes: heavier than the greedy
#: packers, lighter than a known LP — unknown work is assumed expensive
#: enough to schedule early rather than to tail on.
DEFAULT_SCHEME_WEIGHT = 10.0

#: Nominal seconds per (weight x demand x link) unit.  Pure scale: it
#: calibrates static predictions to the rough magnitude of measured
#: seconds so the two sources mix sanely, but LPT only compares costs.
STATIC_COST_SCALE = 2e-7


def scheme_class(factory: object) -> Optional[str]:
    """The registry scheme name a factory resolves to, if declarative.

    :class:`~repro.experiments.spec.SchemeSpec` factories carry their
    name; closures reveal nothing and map to the default weight.
    """
    scheme = getattr(factory, "scheme", None)
    return scheme if isinstance(scheme, str) else None


def static_task_cost(
    item: NetworkWorkload,
    n_matrices: Optional[int],
    weight: float,
    cost_hint: float = 1.0,
) -> float:
    """Predict one task's cost from its shape alone, in nominal seconds.

    The dominant solver costs scale with how many demand pairs must be
    routed over how many links (LP columns x rows; greedy packing is
    demands x candidate paths x path length), with an additive
    nodes-x-links term for the per-network KSP warm-up every scheme
    pays.  Deterministic by construction — no timing, no randomness.
    """
    network = item.network
    if n_matrices is None:
        n_matrices = len(item.matrices)
    else:
        n_matrices = min(n_matrices, len(item.matrices))
    if item.matrices:
        n_demands = max(len(item.matrices[0].pairs), 1)
    else:
        n_demands = max(network.num_nodes * (network.num_nodes - 1), 1)
    links = max(network.num_links, 1)
    per_matrix = n_demands * links
    warmup = network.num_nodes * links
    return (
        STATIC_COST_SCALE
        * weight
        * cost_hint
        * (n_matrices * per_matrix + warmup)
    )


class CostModel:
    """Predicts per-task evaluation seconds; learned when possible.

    With a ``store_dir``, the model lazily scans every result-store
    stream once and indexes measured ``seconds`` by (network signature,
    scheme stream name): a task whose network and scheme were evaluated
    before — in any workload — is predicted at the mean of its measured
    times.  Everything else falls back to :func:`static_task_cost`.
    Records written before network signatures were stored replay as
    static predictions, never as errors.
    """

    def __init__(
        self,
        store_dir: Optional[object] = None,
        trace_dir: Optional[object] = None,
    ) -> None:
        self.store_dir = store_dir
        self.trace_dir = trace_dir
        self._learned: Optional[Dict[Tuple[str, str], float]] = None

    # ------------------------------------------------------------------
    def learned_seconds(self) -> Dict[Tuple[str, str], float]:
        """Mean measured seconds keyed by (network signature, scheme).

        Store-stamped timings and telemetry task spans (when a
        ``trace_dir`` is given) pool into one table: both measure the
        same per-task evaluation region, so a span recorded by a traced
        run replays exactly like a store record from an untraced one.
        """
        if self._learned is None:
            self._learned = {}
            totals: Dict[Tuple[str, str], List[float]] = {}
            if self.store_dir is not None:
                for _, scheme, timings in replay_timings(self.store_dir):
                    for timing in timings:
                        if not timing.network_signature:
                            continue  # pre-signature store record
                        key = (timing.network_signature, scheme)
                        totals.setdefault(key, []).append(timing.seconds)
            if self.trace_dir is not None:
                from repro.experiments import telemetry

                for signature, scheme, seconds in telemetry.task_timings(
                    self.trace_dir
                ):
                    if not signature or not scheme:
                        continue
                    totals.setdefault((signature, scheme), []).append(
                        seconds
                    )
            self._learned = {
                key: sum(values) / len(values)
                for key, values in totals.items()
            }
        return self._learned

    @staticmethod
    def _network_signature(item: NetworkWorkload) -> str:
        # Memoized as an attribute on the network object itself (the
        # workload_signature idiom): plans share network objects across
        # streams, and re-hashing the full network per (stream, task)
        # would dominate prediction cost.  An id()-keyed side table
        # would be wrong here — a long-lived scheduler can outlive one
        # plan's networks, and a recycled object id would replay a stale
        # signature.  Networks must not be mutated mid-evaluation (the
        # engine and KSP-cache contracts already assume it), so the memo
        # cannot go stale.
        from repro.net.paths import network_signature

        network = item.network
        memo = getattr(network, "_cost_signature_memo", None)
        if isinstance(memo, str):
            return memo
        signature = network_signature(network)
        setattr(network, "_cost_signature_memo", signature)
        return signature

    # ------------------------------------------------------------------
    def predict(self, stream: PlanStream, index: int) -> float:
        """Predicted seconds for one task of a plan stream.

        Lazy scenario workloads expose ``cost_basis(index)`` — the base
        item plus a relative factor — so predicting a perturbed
        variant's cost reuses the base network's learned timings without
        ever materializing the variant topology.
        """
        basis = getattr(stream.workload, "cost_basis", None)
        if callable(basis):
            base_item, factor = basis(index)
            return float(factor) * self.predict_item(
                stream.factory,
                base_item,
                n_matrices=stream.matrices_per_network,
                scheme=stream.scheme,
                cost_hint=stream.cost_hint,
            )
        return self.predict_item(
            stream.factory,
            stream.workload.networks[index],
            n_matrices=stream.matrices_per_network,
            scheme=stream.scheme,
            cost_hint=stream.cost_hint,
        )

    def predict_item(
        self,
        factory: object,
        item: NetworkWorkload,
        n_matrices: Optional[int] = None,
        scheme: Optional[str] = None,
        cost_hint: float = 1.0,
    ) -> float:
        """Predicted seconds for evaluating ``item`` under ``factory``.

        ``scheme`` is the result-store stream name the evaluation would
        write to; a learned entry under (network signature, scheme)
        wins over the static predictor.  Measured times already include
        whatever the hint models, so hints scale static predictions
        only.
        """
        if scheme:
            learned = self.learned_seconds().get(
                (self._network_signature(item), scheme)
            )
            if learned is not None:
                return learned
        name = scheme_class(factory)
        if name is None:
            weight = DEFAULT_SCHEME_WEIGHT
        else:
            weight = SCHEME_WEIGHTS.get(name, DEFAULT_SCHEME_WEIGHT)
        return static_task_cost(item, n_matrices, weight, cost_hint)


T = TypeVar("T")


def lpt_partition(
    items: Sequence[T],
    costs: Sequence[float],
    n_bins: int,
) -> List[List[T]]:
    """Greedy makespan balancing: heaviest item onto the lightest bin.

    The classic LPT bin-packing heuristic (4/3-approximate for makespan):
    items are taken in descending cost order and each goes to the bin
    with the smallest total so far.  Bins keep that descending order
    internally, so a worker draining one bin is itself LPT-scheduled.
    Fully deterministic: ties break by original item position, then by
    bin index.  At most ``min(n_bins, len(items))`` bins are returned
    (never an empty bin), except that empty input yields one empty bin —
    mirroring the contiguous-chunk path, which always writes at least
    one manifest.
    """
    if n_bins < 1:
        raise ValueError(f"need at least one bin, got {n_bins}")
    if len(items) != len(costs):
        raise ValueError(
            f"{len(items)} items but {len(costs)} costs"
        )
    if not items:
        return [[]]
    n_effective = min(n_bins, len(items))
    bins: List[List[T]] = [[] for _ in range(n_effective)]
    heap: List[Tuple[float, int]] = [(0.0, b) for b in range(n_effective)]
    order = sorted(
        range(len(items)), key=lambda i: (-costs[i], i)
    )
    for position in order:
        load, bin_index = heapq.heappop(heap)
        bins[bin_index].append(items[position])
        heapq.heappush(heap, (load + costs[position], bin_index))
    return bins


class LptScheduler(Scheduler):
    """Longest-processing-time-first ordering and balanced partitioning.

    Ordering: the flat task list sorts by predicted cost, descending, so
    a shared pool starts the heavy LP solves immediately and packs the
    cheap tasks into the remaining capacity — the pool drains level
    instead of tailing on one heavy task scheduled last.  Partitioning
    (dispatch shards) uses :func:`lpt_partition` so every worker's
    predicted makespan is balanced, not merely its task count.
    Deterministic throughout: ties break by stream declaration order,
    then task index.
    """

    name = "lpt"

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()

    def _costs(
        self, plan: EvalPlan, tasks: Sequence[EvalTask]
    ) -> Dict[Tuple[Hashable, int], float]:
        """The one cost table all three hooks consume.

        Sharing it is what keeps :meth:`order`, :meth:`predictions` and
        :meth:`partition` consistent by construction: the predictions a
        run records are exactly the costs its order and shards were
        built from.
        """
        return {
            (task.stream, task.index): self.cost_model.predict(
                plan.streams[task.stream], task.index
            )
            for task in tasks
        }

    def order(
        self, plan: EvalPlan, per_stream: List[List[EvalTask]]
    ) -> List[EvalTask]:
        flat = [task for tasks in per_stream for task in tasks]
        position = {key: i for i, key in enumerate(plan.streams)}
        costs = self._costs(plan, flat)
        flat.sort(
            key=lambda task: (
                -costs[(task.stream, task.index)],
                position[task.stream],
                task.index,
            )
        )
        return flat

    def predictions(
        self, plan: EvalPlan
    ) -> Dict[Tuple[Hashable, int], float]:
        return self._costs(plan, plan.tasks())

    def partition(
        self, plan: EvalPlan, n_shards: int
    ) -> List[List[EvalTask]]:
        tasks = plan.tasks(scheduler=self)
        costs = self._costs(plan, tasks)
        return lpt_partition(
            tasks,
            [costs[(task.stream, task.index)] for task in tasks],
            n_shards,
        )


#: The schedule names the CLI exposes (``--schedule {interleave,lpt}``).
SCHEDULES: Dict[str, Callable[..., Scheduler]] = {
    "interleave": lambda store_dir=None, trace_dir=None: (
        InterleaveScheduler()
    ),
    "lpt": lambda store_dir=None, trace_dir=None: LptScheduler(
        CostModel(store_dir=store_dir, trace_dir=trace_dir)
    ),
}


def make_scheduler(
    choice: "str | Scheduler | None",
    store_dir: Optional[object] = None,
    trace_dir: Optional[object] = None,
) -> Scheduler:
    """Resolve a schedule name (or pass through a ready scheduler).

    ``None`` and ``"interleave"`` give the byte-compatible round-robin
    default; ``"lpt"`` gives cost-aware scheduling whose
    :class:`CostModel` replays learned timings from ``store_dir`` and
    telemetry task spans from ``trace_dir`` when either is given.
    """
    if choice is None:
        return InterleaveScheduler()
    if isinstance(choice, Scheduler):
        return choice
    factory = SCHEDULES.get(choice)
    if factory is None:
        raise ValueError(
            f"unknown schedule {choice!r}; choose one of "
            f"{', '.join(sorted(SCHEDULES))}"
        )
    return factory(store_dir=store_dir, trace_dir=trace_dir)


def replay_timings(
    store_dir: object,
) -> "Iterator[Tuple[str, str, List[TaskTiming]]]":
    """Iterate every store stream's timing records (the replay reader).

    Thin indirection over
    :meth:`repro.experiments.store.ResultStore.iter_timings` so cost
    consumers (the learned table, ``store ls --timings``, benchmarks)
    share one reader without importing store internals.
    """
    from repro.experiments.store import ResultStore

    return ResultStore(store_dir).iter_timings()

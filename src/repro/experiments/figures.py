"""One entry point per paper figure.

Every function returns plain data (lists/dicts of numbers) so that the
benchmark harness can both assert on the *shape* of the result (who wins,
where crossovers fall) and print the same series the paper plots.  Figure
numbering follows the paper:

====== ==============================================================
Fig 1  CDFs of APA per network (stretch limit 1.4)
Fig 3  congested-pair fraction vs LLPD under shortest-path routing
Fig 4  congestion + latency stretch vs LLPD for Optimal/B4/MinMax/K10
Fig 7  link-utilization CDF, latency-optimal vs MinMax, GTS median TM
Fig 8  median delay change vs LLPD as headroom grows (lighter load)
Fig 9  CDF of measured/predicted rate ratios (Algorithm 1)
Fig 10 sigma(t) vs sigma(t+1) scatter
Fig 15 runtime: iterative path LP (warm/cold cache) vs link-based LP
Fig 16 CDFs of max path stretch by LLPD class and headroom
Fig 17 median max stretch vs load (high-LLPD networks)
Fig 18 median max stretch vs locality
Fig 19 Fig 3 plus a Google-like topology
Fig 20 latency stretch before/after LLPD-guided growth
====== ==============================================================

Every multi-call figure (4, 8, 16, 17, 18, 20) is a thin pair of

* a **plan builder** (``figNN_plan``) that declares the figure's whole
  (scheme x sweep-point x network) grid as one
  :class:`~repro.experiments.plan.EvalPlan`, and
* a **reducer** inside the public ``figNN_*`` function that folds the
  keyed result set into the series the paper plots.

The plan executes as ONE engine pass over one shared process pool —
schemes and sweep points interleave instead of running one
``evaluate_scheme`` call (and one pool) at a time — with results
bit-identical to the per-call path for any worker count.  Store stream
names are unchanged, so stores written by the per-call path resume
seamlessly under plans and vice versa.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.metrics import ApaParameters, apa_all_pairs, apa_cdf, llpd
from repro.experiments.plan import EvalPlan, PlanReport, execute_plan
from repro.experiments.telemetry import traced
from repro.experiments.runner import per_network_quantiles
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import (
    NetworkWorkload,
    ZooWorkload,
    build_traffic_matrices,
)
from repro.net.graph import Network
from repro.net.paths import KspCache
from repro.routing import LatencyOptimalRouting, MinMaxRouting
from repro.tm import TrafficMatrix, scale_to_growth_headroom


def _adhoc_workload(
    items: Sequence[NetworkWorkload],
    locality: float = 0.0,
    growth_factor: float = 0.0,
) -> ZooWorkload:
    """Wrap bare workload items for the engine.

    The shaping parameters of hand-assembled item lists are unknown; the
    placeholders only feed the result-store signature, which also hashes
    the matrices themselves, so no two distinct workloads can collide on
    them.
    """
    return ZooWorkload(
        networks=list(items), locality=locality, growth_factor=growth_factor
    )


def scheme_factories(
    headroom: float = 0.0,
) -> Dict[str, Callable[[NetworkWorkload], object]]:
    """The paper's four active schemes, sharing each network's KSP cache.

    Factories are declarative :class:`~repro.experiments.spec.SchemeSpec`
    instances — callable like the closures they replaced, but picklable,
    so every figure built on them can run on a ``spawn`` pool or be
    dispatched to another host (:mod:`repro.experiments.dispatch`).

    LDR's placement engine is the latency-optimal LP with headroom; the
    full controller (prediction + multiplexing) lives in
    :mod:`repro.core.ldr` and is exercised separately.
    """
    return {
        "B4": SchemeSpec("B4", {"headroom": headroom}),
        "LDR": SchemeSpec("LDR", {"headroom": headroom}),
        "MinMax": SchemeSpec("MinMax"),
        "MinMaxK10": SchemeSpec("MinMaxK10"),
    }


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def fig01_apa_cdfs(
    networks: Sequence[Network], params: ApaParameters = ApaParameters()
) -> Dict[str, np.ndarray]:
    """Per-network sorted APA values (each is one CDF curve of Figure 1)."""
    return {
        network.name: apa_cdf(apa_all_pairs(network, params))
        for network in networks
    }


# ----------------------------------------------------------------------
# Figures 3 and 19
# ----------------------------------------------------------------------
@traced("plan_build")
def fig03_plan(workload: ZooWorkload) -> EvalPlan:
    """Figure 3 as a (single-stream) plan: SP over the whole ensemble."""
    plan = EvalPlan()
    plan.add("SP", SchemeSpec("SP"), workload)
    return plan


def fig03_sp_congestion(
    workload: ZooWorkload,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Median and 90th-percentile congested-pair fraction vs LLPD (SP).

    With a ``store_dir`` results persist to (and re-render from) the
    durable result store; ``engine_opts`` (``resume``, ``store_only``,
    ``cache_max_paths``) pass through to :func:`execute_plan`.
    """
    report = execute_plan(
        fig03_plan(workload),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    outcomes = report.outcomes("SP")
    return {
        "median": per_network_quantiles(outcomes, "congested_fraction", 0.5),
        "p90": per_network_quantiles(outcomes, "congested_fraction", 0.9),
    }


def fig19_google(
    workload_with_google: ZooWorkload,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Same as Figure 3 but the workload includes a Google-like network."""
    return fig03_sp_congestion(
        workload_with_google,
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
@traced("plan_build")
def fig04_plan(
    workload: ZooWorkload,
    schemes: Optional[Dict[str, Callable[[NetworkWorkload], object]]] = None,
) -> EvalPlan:
    """All of Figure 4's schemes over the ensemble, as one plan."""
    if schemes is None:
        schemes = scheme_factories(headroom=0.0)
    plan = EvalPlan()
    for name, factory in schemes.items():
        plan.add(name, factory, workload)
    return plan


def fig04_schemes(
    workload: ZooWorkload,
    schemes: Optional[Dict[str, Callable[[NetworkWorkload], object]]] = None,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Congestion and latency stretch vs LLPD for each active scheme.

    All schemes run in one engine pass over one shared pool, interleaved
    across networks; with a ``cache_dir`` every task warm-starts from the
    persistent per-network KSP caches.

    With a ``store_dir``, each scheme's results live in a store stream
    named by its key in ``schemes`` — callers passing custom factories
    must give behaviorally different schemes different keys.
    """
    if schemes is None:
        schemes = scheme_factories(headroom=0.0)
    report = execute_plan(
        fig04_plan(workload, schemes),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    results: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in schemes:
        outcomes = report.outcomes(name)
        results[name] = {
            "congestion_median": per_network_quantiles(
                outcomes, "congested_fraction", 0.5
            ),
            "congestion_p90": per_network_quantiles(
                outcomes, "congested_fraction", 0.9
            ),
            "stretch_median": per_network_quantiles(
                outcomes, "latency_stretch", 0.5
            ),
            "stretch_p90": per_network_quantiles(outcomes, "latency_stretch", 0.9),
        }
    return results


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def fig07_utilization_cdf(
    network: Network, tm: TrafficMatrix, cache: Optional[KspCache] = None
) -> Dict[str, np.ndarray]:
    """Sorted link utilizations under latency-optimal and MinMax routing."""
    cache = cache or KspCache(network)
    optimal = LatencyOptimalRouting(cache=cache).place(network, tm)
    minmax = MinMaxRouting(cache=cache).place(network, tm)
    return {
        "latency_optimal": np.sort(
            np.fromiter(optimal.link_utilizations().values(), dtype=float)
        ),
        "minmax": np.sort(
            np.fromiter(minmax.link_utilizations().values(), dtype=float)
        ),
    }


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
@traced("plan_build")
def fig08_plan(
    workload: ZooWorkload,
    headrooms: Sequence[float] = (0.0, 0.11, 0.23, 0.40),
) -> EvalPlan:
    """The whole headroom sweep as one plan: one LDR stream per setting."""
    plan = EvalPlan()
    for headroom in headrooms:
        plan.add(
            headroom,
            SchemeSpec("LDR", {"headroom": headroom}),
            workload,
            scheme=f"LDR@h={headroom!r}",
            # Headroom shrinks effective capacity, so the LP needs more
            # paths (and iterations) to fit the same traffic — invisible
            # to the static cost predictor, hence the hint.
            cost_hint=1.0 + headroom,
        )
    return plan


def fig08_headroom_sweep(
    workload: ZooWorkload,
    headrooms: Sequence[float] = (0.0, 0.11, 0.23, 0.40),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[float, List[Tuple[float, float]]]:
    """Median latency stretch vs LLPD for each headroom setting.

    The paper runs this on a lighter load (min-cut at 60%, growth 1.65) so
    even 40% headroom remains feasible; pass a workload built with
    ``growth_factor=1.65``.  All headroom settings execute as one engine
    pass over a single shared pool.
    """
    report = execute_plan(
        fig08_plan(workload, headrooms),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    return {
        headroom: per_network_quantiles(
            report.outcomes(headroom), "latency_stretch", 0.5
        )
        for headroom in headrooms
    }


# ----------------------------------------------------------------------
# Figures 9 and 10
# ----------------------------------------------------------------------
def fig09_prediction_ratios(traces: Sequence[np.ndarray],
                            samples_per_minute: int) -> np.ndarray:
    """Sorted measured/predicted ratios pooled across traces."""
    from repro.core.prediction import prediction_ratios
    from repro.traces.stats import minute_means

    ratios: List[np.ndarray] = []
    for trace in traces:
        means = minute_means(trace, samples_per_minute)
        ratios.append(prediction_ratios(means))
    return np.sort(np.concatenate(ratios))


def fig10_sigma_scatter(
    traces: Sequence[np.ndarray], samples_per_minute: int
) -> List[Tuple[float, float]]:
    """(sigma_t, sigma_{t+1}) pairs pooled across traces."""
    from repro.traces.stats import minute_sigma_pairs

    points: List[Tuple[float, float]] = []
    for trace in traces:
        points.extend(minute_sigma_pairs(trace, samples_per_minute))
    return points


# ----------------------------------------------------------------------
# Figure 15
# ----------------------------------------------------------------------
def fig15_runtimes(
    items: Sequence[NetworkWorkload],
    include_link_based: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Wall-clock runtimes (seconds) of the three optimizers.

    "LDR" solves with a pre-warmed k-shortest-path cache, "cold cache"
    without, and "link-based" is the monolithic node-arc LP.

    With a ``cache_dir``, each network's warmed cache is persisted there
    (keyed by content hash) and, when a valid persisted cache already
    exists, an extra ``ldr_persisted`` series times a solve warm-started
    purely from disk — the cross-run/cross-process warm start the paper's
    "readily cached" observation promises.
    """
    from repro.net.paths import ksp_cache_path
    from repro.routing.linkbased import LinkBasedOptimalRouting
    from repro.routing.optimal import solve_iterative_latency

    times: Dict[str, List[float]] = {"ldr": [], "ldr_cold": [], "link_based": []}
    if cache_dir is not None:
        times["ldr_persisted"] = []
    for item in items:
        tm = item.matrices[0]

        persisted = None
        if cache_dir is not None:
            path = ksp_cache_path(cache_dir, item.network)
            persisted = KspCache.try_load_file(path, item.network)
            if persisted is not None:
                start = time.perf_counter()
                solve_iterative_latency(item.network, tm, cache=persisted)
                times["ldr_persisted"].append(time.perf_counter() - start)

        cold_cache = KspCache(item.network)
        start = time.perf_counter()
        solve_iterative_latency(item.network, tm, cache=cold_cache)
        times["ldr_cold"].append(time.perf_counter() - start)

        # Warm run: reuse the now-populated cache.
        start = time.perf_counter()
        solve_iterative_latency(item.network, tm, cache=cold_cache)
        times["ldr"].append(time.perf_counter() - start)

        if cache_dir is not None:
            # Dump the superset: re-persisting only this run's tm0-warmed
            # cache would shrink a cache another run (e.g. the engine over
            # a full matrix ensemble) built up.
            (persisted if persisted is not None else cold_cache).dump_file(path)

        if include_link_based:
            scheme = LinkBasedOptimalRouting()
            start = time.perf_counter()
            scheme.place(item.network, tm)
            times["link_based"].append(time.perf_counter() - start)
    return times


# ----------------------------------------------------------------------
# Figure 16
# ----------------------------------------------------------------------
@traced("plan_build")
def fig16_plan(
    workload: ZooWorkload,
    llpd_split: float = 0.5,
    headrooms: Sequence[float] = (0.0, 0.10),
) -> EvalPlan:
    """All (LLPD class, headroom, scheme) cells of Figure 16 as one plan.

    Stream keys are ``(class_key, scheme_name)`` tuples; store stream
    names keep the headroom qualifier (``B4@h=0.1``) because ``high_h0``
    and ``high_h10`` share a workload signature (same subset, same
    matrices) and the scheme name alone would collide in the store.
    """
    low = ZooWorkload(
        networks=[w for w in workload.networks if w.llpd < llpd_split],
        locality=workload.locality,
        growth_factor=workload.growth_factor,
        seed=workload.seed,
    )
    high = ZooWorkload(
        networks=[w for w in workload.networks if w.llpd >= llpd_split],
        locality=workload.locality,
        growth_factor=workload.growth_factor,
        seed=workload.seed,
    )
    cases = {
        "low_h0": (low, headrooms[0]),
        "high_h0": (high, headrooms[0]),
        "high_h10": (high, headrooms[1]),
    }
    plan = EvalPlan()
    for key, (subset, headroom) in cases.items():
        for name, factory in scheme_factories(headroom=headroom).items():
            plan.add(
                (key, name),
                factory,
                subset,
                scheme=f"{name}@h={headroom!r}",
                # Headroom tightens capacity without changing topology —
                # hint the cost predictor (see fig08_plan).
                cost_hint=1.0 + headroom,
            )
    return plan


def fig16_max_stretch_cdfs(
    workload: ZooWorkload,
    llpd_split: float = 0.5,
    headrooms: Sequence[float] = (0.0, 0.10),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Max-path-stretch CDF data per (LLPD class, headroom, scheme).

    Returns ``result[class_key][scheme] = {"stretches": sorted list of max
    path stretch over routable cases, "unroutable_fraction": float}``, with
    class keys ``low_h0``, ``high_h0`` and ``high_h10`` as in the paper's
    Figures 16(a)-(c).
    """
    report = execute_plan(
        fig16_plan(workload, llpd_split, headrooms),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    for key in ("low_h0", "high_h0", "high_h10"):
        results[key] = {}
        for name in scheme_factories():
            outcomes = report.outcomes((key, name))
            routable = [o.max_path_stretch for o in outcomes if o.fits]
            unroutable = sum(1 for o in outcomes if not o.fits)
            results[key][name] = {
                "stretches": sorted(routable),
                "unroutable_fraction": (
                    unroutable / len(outcomes) if outcomes else 0.0
                ),
            }
    return results


# ----------------------------------------------------------------------
# Figure 17
# ----------------------------------------------------------------------
@traced("plan_build")
def fig17_plan(
    items: Sequence[NetworkWorkload],
    loads: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
) -> EvalPlan:
    """The whole (load x scheme) grid of Figure 17 as one plan.

    Base matrices are rescaled per target load (growth = 1/load); stream
    keys are ``(scheme_name, load)`` tuples and store stream names keep
    the historical ``<scheme>@load=<load>`` form, so stores written by
    the per-call path resume under plans unchanged.
    """
    plan = EvalPlan()
    for load in loads:
        rescaled_items = [
            NetworkWorkload(
                network=item.network,
                llpd=item.llpd,
                matrices=[
                    scale_to_growth_headroom(item.network, tm, 1.0 / load)
                    for tm in item.matrices
                ],
                cache=item.cache,
            )
            for item in items
        ]
        workload = _adhoc_workload(rescaled_items, growth_factor=1.0 / load)
        for name, factory in scheme_factories().items():
            plan.add(
                (name, load),
                factory,
                workload,
                scheme=f"{name}@load={load!r}",
                # Matrices are rescaled per load, so every sweep point
                # has the same static shape; higher load means links run
                # nearer capacity and LP solvers iterate more.
                cost_hint=load,
            )
    return plan


def fig17_load_sweep(
    items: Sequence[NetworkWorkload],
    loads: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Median max flow stretch vs min-cut load, high-LLPD networks.

    The full (load, scheme, network) grid executes as ONE engine pass
    over a single shared pool — no per-(scheme, sweep-point) pool
    construction — sharding across ``n_workers``, warm-starting from
    ``cache_dir`` and persisting per stream to ``store_dir``.
    """
    report = execute_plan(
        fig17_plan(items, loads),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in scheme_factories()
    }
    for load in loads:
        for name in results:
            outcomes = report.outcomes((name, load))
            results[name].append(
                (load, float(np.median([o.max_path_stretch for o in outcomes])))
            )
    return results


# ----------------------------------------------------------------------
# Figure 18
# ----------------------------------------------------------------------
@traced("plan_build")
def fig18_plan(
    networks: Sequence[Network],
    localities: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    n_matrices: int = 2,
    growth_factor: float = 1.3,
    seed: int = 0,
) -> EvalPlan:
    """The whole (locality x scheme) grid of Figure 18 as one plan.

    The base gravity matrix is scaled to the target load *first* and
    locality is applied to the scaled matrix.  This matches the paper's
    described dynamics: "a locality parameter of zero tends to load long
    distance links more, whereas localities above one tend to load local
    links more" and large localities "under-load long-distance links" —
    effects that only exist if the load normalization is not re-done per
    locality value (which would re-inflate whatever the locality shift
    relieved).
    """
    from repro.tm import apply_locality, gravity_traffic_matrix

    rng = np.random.default_rng(seed)
    caches = [KspCache(network) for network in networks]
    bases: List[List[TrafficMatrix]] = []
    for network in networks:
        per_network: List[TrafficMatrix] = []
        for _ in range(n_matrices):
            base = gravity_traffic_matrix(network, rng)
            base = scale_to_growth_headroom(network, base, growth_factor)
            per_network.append(base)
        bases.append(per_network)
    plan = EvalPlan()
    for locality in localities:
        items = [
            NetworkWorkload(
                network=network,
                llpd=0.0,  # not needed for this sweep
                matrices=[
                    apply_locality(network, base, locality)
                    for base in bases[position]
                ],
                cache=caches[position],
            )
            for position, network in enumerate(networks)
        ]
        workload = ZooWorkload(
            networks=items,
            locality=locality,
            growth_factor=growth_factor,
            seed=seed,
        )
        for name, factory in scheme_factories().items():
            plan.add(
                (name, locality),
                factory,
                workload,
                scheme=f"{name}@loc={locality!r}",
            )
    return plan


def fig18_locality_sweep(
    networks: Sequence[Network],
    localities: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    n_matrices: int = 2,
    growth_factor: float = 1.3,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Median max flow stretch vs traffic locality.

    The full (locality, scheme, network) grid executes as ONE engine
    pass over a single shared pool; see :func:`fig18_plan` for the
    load-then-locality matrix construction the sweep depends on.
    """
    report = execute_plan(
        fig18_plan(networks, localities, n_matrices, growth_factor, seed),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in scheme_factories()
    }
    for locality in localities:
        for name in results:
            outcomes = report.outcomes((name, locality))
            results[name].append(
                (
                    locality,
                    float(np.median([o.max_path_stretch for o in outcomes])),
                )
            )
    return results


# ----------------------------------------------------------------------
# Figure 20
# ----------------------------------------------------------------------
def _grow_network_cached(
    network: Network,
    growth_fraction: float,
    max_candidates: int,
    apa_params: ApaParameters,
    cache_dir: Optional[str],
) -> Network:
    """LLPD-guided growth with an on-disk topology cache.

    Growth is deterministic but expensive (each candidate link costs a
    full LLPD evaluation), and a store-only re-render used to pay it
    again for every network despite doing zero scheme evaluations.  With
    a ``cache_dir``, the grown topology is persisted as JSON under a key
    covering the source network's content hash and every growth
    parameter; the JSON round trip is exact (floats via repr, node and
    link order preserved), so a cache hit yields the same store
    signature and the same evaluation results as regrowing.
    """
    from repro.net.mutate import grow_by_llpd

    path = None
    if cache_dir is not None:
        from repro.net.io import from_json
        from repro.net.paths import network_signature

        key = hashlib.sha256(
            f"grown|{network_signature(network)}|{growth_fraction!r}"
            f"|{max_candidates!r}|{apa_params.stretch_limit!r}"
            f"|{apa_params.max_alternates!r}"
            f"|{apa_params.llpd_threshold!r}".encode()
        ).hexdigest()
        path = Path(cache_dir) / f"grown-{key}.json"
        if path.exists():
            try:
                return from_json(path.read_text())
            except (OSError, ValueError, KeyError, TypeError):
                pass  # corrupt or stale cache file: regrow

    grown, _ = grow_by_llpd(
        network,
        score=lambda net: llpd(net, apa_params),
        growth_fraction=growth_fraction,
        max_candidates=max_candidates,
    )
    if path is not None:
        import tempfile

        from repro.net.io import to_json

        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp file + atomic rename, like KspCache.dump_file: a
        # shared temp path would let two concurrent runs race — one
        # renaming the other's half-written file into place and the
        # loser crashing on the vanished temp.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(to_json(grown))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    return grown


@traced("plan_build")
def fig20_plan(
    items: Sequence[NetworkWorkload],
    growth_fraction: float = 0.05,
    max_candidates: int = 20,
    apa_params: ApaParameters = ApaParameters(),
    cache_dir: Optional[str] = None,
) -> EvalPlan:
    """Figure 20's (scheme x {base, grown}) grid as one plan.

    With a ``cache_dir`` the LLPD-grown topologies come from (and are
    persisted to) the on-disk topology cache, so a ``store_only``
    re-render does zero ``grow_by_llpd`` recomputation on top of its
    zero scheme evaluations.
    """
    grown_items: List[NetworkWorkload] = []
    for item in items:
        grown_network = _grow_network_cached(
            item.network,
            growth_fraction=growth_fraction,
            max_candidates=max_candidates,
            apa_params=apa_params,
            cache_dir=cache_dir,
        )
        grown_items.append(
            NetworkWorkload(
                network=grown_network, llpd=item.llpd, matrices=item.matrices
            )
        )
    base_workload = _adhoc_workload(items)
    grown_workload = _adhoc_workload(grown_items)
    plan = EvalPlan()
    for name, factory in scheme_factories().items():
        for phase, workload in (
            ("base", base_workload),
            ("grown", grown_workload),
        ):
            plan.add(
                (name, phase), factory, workload, scheme=f"{name}@{phase}"
            )
    return plan


def fig20_growth_benefit(
    items: Sequence[NetworkWorkload],
    growth_fraction: float = 0.05,
    max_candidates: int = 20,
    apa_params: ApaParameters = ApaParameters(),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Latency stretch before/after LLPD-guided link additions.

    Returns per scheme the (before, after) latency-stretch pairs: medians
    and 90th percentiles across each network's traffic matrices.

    Base and grown ensembles for every scheme execute as ONE engine pass
    over a single shared pool.  Per-network grouping falls out of the
    plan's keyed result set — each stream's results arrive chunked per
    network, so no manual offset re-chunking of a flattened outcome list
    is needed.
    """
    report = execute_plan(
        fig20_plan(
            items,
            growth_fraction=growth_fraction,
            max_candidates=max_candidates,
            apa_params=apa_params,
            cache_dir=cache_dir,
        ),
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )
    results: Dict[str, Dict[str, List[Tuple[float, float]]]] = {
        name: {"median": [], "p90": []} for name in scheme_factories()
    }
    for name in results:
        base_results = report.results[(name, "base")]
        grown_results = report.results[(name, "grown")]
        for base, grown in zip(base_results, grown_results):
            before = [o.latency_stretch for o in base.outcomes]
            after = [o.latency_stretch for o in grown.outcomes]
            results[name]["median"].append(
                (float(np.median(before)), float(np.median(after)))
            )
            results[name]["p90"].append(
                (
                    float(np.quantile(before, 0.9)),
                    float(np.quantile(after, 0.9)),
                )
            )
    return results

"""One entry point per paper figure.

Every function returns plain data (lists/dicts of numbers) so that the
benchmark harness can both assert on the *shape* of the result (who wins,
where crossovers fall) and print the same series the paper plots.  Figure
numbering follows the paper:

====== ==============================================================
Fig 1  CDFs of APA per network (stretch limit 1.4)
Fig 3  congested-pair fraction vs LLPD under shortest-path routing
Fig 4  congestion + latency stretch vs LLPD for Optimal/B4/MinMax/K10
Fig 7  link-utilization CDF, latency-optimal vs MinMax, GTS median TM
Fig 8  median delay change vs LLPD as headroom grows (lighter load)
Fig 9  CDF of measured/predicted rate ratios (Algorithm 1)
Fig 10 sigma(t) vs sigma(t+1) scatter
Fig 15 runtime: iterative path LP (warm/cold cache) vs link-based LP
Fig 16 CDFs of max path stretch by LLPD class and headroom
Fig 17 median max stretch vs load (high-LLPD networks)
Fig 18 median max stretch vs locality
Fig 19 Fig 3 plus a Google-like topology
Fig 20 latency stretch before/after LLPD-guided growth
====== ==============================================================
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.metrics import ApaParameters, apa_all_pairs, apa_cdf, llpd
from repro.experiments.runner import evaluate_scheme, per_network_quantiles
from repro.experiments.spec import SchemeSpec
from repro.experiments.workloads import (
    NetworkWorkload,
    ZooWorkload,
    build_traffic_matrices,
)
from repro.net.graph import Network
from repro.net.paths import KspCache
from repro.routing import LatencyOptimalRouting, MinMaxRouting
from repro.tm import TrafficMatrix, scale_to_growth_headroom


def _adhoc_workload(
    items: Sequence[NetworkWorkload],
    locality: float = 0.0,
    growth_factor: float = 0.0,
) -> ZooWorkload:
    """Wrap bare workload items for the engine.

    The shaping parameters of hand-assembled item lists are unknown; the
    placeholders only feed the result-store signature, which also hashes
    the matrices themselves, so no two distinct workloads can collide on
    them.
    """
    return ZooWorkload(
        networks=list(items), locality=locality, growth_factor=growth_factor
    )


def scheme_factories(
    headroom: float = 0.0,
) -> Dict[str, Callable[[NetworkWorkload], object]]:
    """The paper's four active schemes, sharing each network's KSP cache.

    Factories are declarative :class:`~repro.experiments.spec.SchemeSpec`
    instances — callable like the closures they replaced, but picklable,
    so every figure built on them can run on a ``spawn`` pool or be
    dispatched to another host (:mod:`repro.experiments.dispatch`).

    LDR's placement engine is the latency-optimal LP with headroom; the
    full controller (prediction + multiplexing) lives in
    :mod:`repro.core.ldr` and is exercised separately.
    """
    return {
        "B4": SchemeSpec("B4", {"headroom": headroom}),
        "LDR": SchemeSpec("LDR", {"headroom": headroom}),
        "MinMax": SchemeSpec("MinMax"),
        "MinMaxK10": SchemeSpec("MinMaxK10"),
    }


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def fig01_apa_cdfs(
    networks: Sequence[Network], params: ApaParameters = ApaParameters()
) -> Dict[str, np.ndarray]:
    """Per-network sorted APA values (each is one CDF curve of Figure 1)."""
    return {
        network.name: apa_cdf(apa_all_pairs(network, params))
        for network in networks
    }


# ----------------------------------------------------------------------
# Figures 3 and 19
# ----------------------------------------------------------------------
def fig03_sp_congestion(
    workload: ZooWorkload,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Median and 90th-percentile congested-pair fraction vs LLPD (SP).

    With a ``store_dir`` results persist to (and re-render from) the
    durable result store; ``engine_opts`` (``resume``, ``store_only``,
    ``cache_max_paths``) pass through to :func:`evaluate_scheme`.
    """
    outcomes = evaluate_scheme(
        SchemeSpec("SP"), workload,
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        scheme="SP",
        **engine_opts,
    )
    return {
        "median": per_network_quantiles(outcomes, "congested_fraction", 0.5),
        "p90": per_network_quantiles(outcomes, "congested_fraction", 0.9),
    }


def fig19_google(
    workload_with_google: ZooWorkload,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Same as Figure 3 but the workload includes a Google-like network."""
    return fig03_sp_congestion(
        workload_with_google,
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        **engine_opts,
    )


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def fig04_schemes(
    workload: ZooWorkload,
    schemes: Optional[Dict[str, Callable[[NetworkWorkload], object]]] = None,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Congestion and latency stretch vs LLPD for each active scheme.

    For parallel runs pass a ``cache_dir``: forked shards warm only their
    own memory image, so without persistence each scheme's pool redoes the
    k-shortest paths from cold; the on-disk caches carry the warmth from
    one scheme's pool to the next.

    With a ``store_dir``, each scheme's results live in a store stream
    named by its key in ``schemes`` — callers passing custom factories
    must give behaviorally different schemes different keys.
    """
    if schemes is None:
        schemes = scheme_factories(headroom=0.0)
    results: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name, factory in schemes.items():
        outcomes = evaluate_scheme(
            factory,
            workload,
            n_workers=n_workers,
            cache_dir=cache_dir,
            store_dir=store_dir,
            scheme=name,
            **engine_opts,
        )
        results[name] = {
            "congestion_median": per_network_quantiles(
                outcomes, "congested_fraction", 0.5
            ),
            "congestion_p90": per_network_quantiles(
                outcomes, "congested_fraction", 0.9
            ),
            "stretch_median": per_network_quantiles(
                outcomes, "latency_stretch", 0.5
            ),
            "stretch_p90": per_network_quantiles(outcomes, "latency_stretch", 0.9),
        }
    return results


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def fig07_utilization_cdf(
    network: Network, tm: TrafficMatrix, cache: Optional[KspCache] = None
) -> Dict[str, np.ndarray]:
    """Sorted link utilizations under latency-optimal and MinMax routing."""
    cache = cache or KspCache(network)
    optimal = LatencyOptimalRouting(cache=cache).place(network, tm)
    minmax = MinMaxRouting(cache=cache).place(network, tm)
    return {
        "latency_optimal": np.sort(
            np.fromiter(optimal.link_utilizations().values(), dtype=float)
        ),
        "minmax": np.sort(
            np.fromiter(minmax.link_utilizations().values(), dtype=float)
        ),
    }


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
def fig08_headroom_sweep(
    workload: ZooWorkload,
    headrooms: Sequence[float] = (0.0, 0.11, 0.23, 0.40),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[float, List[Tuple[float, float]]]:
    """Median latency stretch vs LLPD for each headroom setting.

    The paper runs this on a lighter load (min-cut at 60%, growth 1.65) so
    even 40% headroom remains feasible; pass a workload built with
    ``growth_factor=1.65``.
    """
    results: Dict[float, List[Tuple[float, float]]] = {}
    for headroom in headrooms:
        outcomes = evaluate_scheme(
            SchemeSpec("LDR", {"headroom": headroom}),
            workload,
            n_workers=n_workers,
            cache_dir=cache_dir,
            store_dir=store_dir,
            scheme=f"LDR@h={headroom!r}",
            **engine_opts,
        )
        results[headroom] = per_network_quantiles(outcomes, "latency_stretch", 0.5)
    return results


# ----------------------------------------------------------------------
# Figures 9 and 10
# ----------------------------------------------------------------------
def fig09_prediction_ratios(traces: Sequence[np.ndarray],
                            samples_per_minute: int) -> np.ndarray:
    """Sorted measured/predicted ratios pooled across traces."""
    from repro.core.prediction import prediction_ratios
    from repro.traces.stats import minute_means

    ratios: List[np.ndarray] = []
    for trace in traces:
        means = minute_means(trace, samples_per_minute)
        ratios.append(prediction_ratios(means))
    return np.sort(np.concatenate(ratios))


def fig10_sigma_scatter(
    traces: Sequence[np.ndarray], samples_per_minute: int
) -> List[Tuple[float, float]]:
    """(sigma_t, sigma_{t+1}) pairs pooled across traces."""
    from repro.traces.stats import minute_sigma_pairs

    points: List[Tuple[float, float]] = []
    for trace in traces:
        points.extend(minute_sigma_pairs(trace, samples_per_minute))
    return points


# ----------------------------------------------------------------------
# Figure 15
# ----------------------------------------------------------------------
def fig15_runtimes(
    items: Sequence[NetworkWorkload],
    include_link_based: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Wall-clock runtimes (seconds) of the three optimizers.

    "LDR" solves with a pre-warmed k-shortest-path cache, "cold cache"
    without, and "link-based" is the monolithic node-arc LP.

    With a ``cache_dir``, each network's warmed cache is persisted there
    (keyed by content hash) and, when a valid persisted cache already
    exists, an extra ``ldr_persisted`` series times a solve warm-started
    purely from disk — the cross-run/cross-process warm start the paper's
    "readily cached" observation promises.
    """
    from repro.net.paths import ksp_cache_path
    from repro.routing.linkbased import LinkBasedOptimalRouting
    from repro.routing.optimal import solve_iterative_latency

    times: Dict[str, List[float]] = {"ldr": [], "ldr_cold": [], "link_based": []}
    if cache_dir is not None:
        times["ldr_persisted"] = []
    for item in items:
        tm = item.matrices[0]

        persisted = None
        if cache_dir is not None:
            path = ksp_cache_path(cache_dir, item.network)
            persisted = KspCache.try_load_file(path, item.network)
            if persisted is not None:
                start = time.perf_counter()
                solve_iterative_latency(item.network, tm, cache=persisted)
                times["ldr_persisted"].append(time.perf_counter() - start)

        cold_cache = KspCache(item.network)
        start = time.perf_counter()
        solve_iterative_latency(item.network, tm, cache=cold_cache)
        times["ldr_cold"].append(time.perf_counter() - start)

        # Warm run: reuse the now-populated cache.
        start = time.perf_counter()
        solve_iterative_latency(item.network, tm, cache=cold_cache)
        times["ldr"].append(time.perf_counter() - start)

        if cache_dir is not None:
            # Dump the superset: re-persisting only this run's tm0-warmed
            # cache would shrink a cache another run (e.g. the engine over
            # a full matrix ensemble) built up.
            (persisted if persisted is not None else cold_cache).dump_file(path)

        if include_link_based:
            scheme = LinkBasedOptimalRouting()
            start = time.perf_counter()
            scheme.place(item.network, tm)
            times["link_based"].append(time.perf_counter() - start)
    return times


# ----------------------------------------------------------------------
# Figure 16
# ----------------------------------------------------------------------
def fig16_max_stretch_cdfs(
    workload: ZooWorkload,
    llpd_split: float = 0.5,
    headrooms: Sequence[float] = (0.0, 0.10),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Max-path-stretch CDism data per (LLPD class, headroom, scheme).

    Returns ``result[class_key][scheme] = {"stretches": sorted list of max
    path stretch over routable cases, "unroutable_fraction": float}``, with
    class keys ``low_h0``, ``high_h0`` and ``high_h10`` as in the paper's
    Figures 16(a)-(c).
    """
    low = ZooWorkload(
        networks=[w for w in workload.networks if w.llpd < llpd_split],
        locality=workload.locality,
        growth_factor=workload.growth_factor,
        seed=workload.seed,
    )
    high = ZooWorkload(
        networks=[w for w in workload.networks if w.llpd >= llpd_split],
        locality=workload.locality,
        growth_factor=workload.growth_factor,
        seed=workload.seed,
    )
    cases = {
        "low_h0": (low, headrooms[0]),
        "high_h0": (high, headrooms[0]),
        "high_h10": (high, headrooms[1]),
    }
    results: Dict[str, Dict[str, Dict[str, object]]] = {}
    for key, (subset, headroom) in cases.items():
        results[key] = {}
        for name, factory in scheme_factories(headroom=headroom).items():
            # The headroom goes into the stream key: high_h0 and high_h10
            # share a workload signature (same subset, same matrices), so
            # the scheme name alone would collide in the store.
            outcomes = evaluate_scheme(
                factory,
                subset,
                n_workers=n_workers,
                cache_dir=cache_dir,
                store_dir=store_dir,
                scheme=f"{name}@h={headroom!r}",
                **engine_opts,
            )
            routable = [o.max_path_stretch for o in outcomes if o.fits]
            unroutable = sum(1 for o in outcomes if not o.fits)
            results[key][name] = {
                "stretches": sorted(routable),
                "unroutable_fraction": (
                    unroutable / len(outcomes) if outcomes else 0.0
                ),
            }
    return results


# ----------------------------------------------------------------------
# Figure 17
# ----------------------------------------------------------------------
def fig17_load_sweep(
    items: Sequence[NetworkWorkload],
    loads: Sequence[float] = (0.6, 0.7, 0.8, 0.9),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Median max flow stretch vs min-cut load, high-LLPD networks.

    Base matrices are rescaled per target load (growth = 1/load).  Each
    (load, scheme) evaluation runs through :func:`evaluate_scheme`, so the
    sweep shards across ``n_workers``, warm-starts from ``cache_dir`` and
    persists to ``store_dir`` like figures 3/4/8/16.
    """
    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in scheme_factories()
    }
    for load in loads:
        rescaled_items = [
            NetworkWorkload(
                network=item.network,
                llpd=item.llpd,
                matrices=[
                    scale_to_growth_headroom(item.network, tm, 1.0 / load)
                    for tm in item.matrices
                ],
                cache=item.cache,
            )
            for item in items
        ]
        workload = _adhoc_workload(rescaled_items, growth_factor=1.0 / load)
        for name, factory in scheme_factories().items():
            outcomes = evaluate_scheme(
                factory,
                workload,
                n_workers=n_workers,
                cache_dir=cache_dir,
                store_dir=store_dir,
                scheme=f"{name}@load={load!r}",
                **engine_opts,
            )
            results[name].append(
                (load, float(np.median([o.max_path_stretch for o in outcomes])))
            )
    return results


# ----------------------------------------------------------------------
# Figure 18
# ----------------------------------------------------------------------
def fig18_locality_sweep(
    networks: Sequence[Network],
    localities: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    n_matrices: int = 2,
    growth_factor: float = 1.3,
    seed: int = 0,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, List[Tuple[float, float]]]:
    """Median max flow stretch vs traffic locality.

    The base gravity matrix is scaled to the target load *first* and
    locality is applied to the scaled matrix.  This matches the paper's
    described dynamics: "a locality parameter of zero tends to load long
    distance links more, whereas localities above one tend to load local
    links more" and large localities "under-load long-distance links" —
    effects that only exist if the load normalization is not re-done per
    locality value (which would re-inflate whatever the locality shift
    relieved).
    """
    from repro.tm import apply_locality, gravity_traffic_matrix, scale_to_growth_headroom

    results: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in scheme_factories()
    }
    rng = np.random.default_rng(seed)
    caches = [KspCache(network) for network in networks]
    bases: List[List[TrafficMatrix]] = []
    for network in networks:
        per_network: List[TrafficMatrix] = []
        for _ in range(n_matrices):
            base = gravity_traffic_matrix(network, rng)
            base = scale_to_growth_headroom(network, base, growth_factor)
            per_network.append(base)
        bases.append(per_network)
    for locality in localities:
        items = [
            NetworkWorkload(
                network=network,
                llpd=0.0,  # not needed for this sweep
                matrices=[
                    apply_locality(network, base, locality)
                    for base in bases[position]
                ],
                cache=caches[position],
            )
            for position, network in enumerate(networks)
        ]
        workload = ZooWorkload(
            networks=items,
            locality=locality,
            growth_factor=growth_factor,
            seed=seed,
        )
        for name, factory in scheme_factories().items():
            outcomes = evaluate_scheme(
                factory,
                workload,
                n_workers=n_workers,
                cache_dir=cache_dir,
                store_dir=store_dir,
                scheme=f"{name}@loc={locality!r}",
                **engine_opts,
            )
            results[name].append(
                (
                    locality,
                    float(np.median([o.max_path_stretch for o in outcomes])),
                )
            )
    return results


# ----------------------------------------------------------------------
# Figure 20
# ----------------------------------------------------------------------
def fig20_growth_benefit(
    items: Sequence[NetworkWorkload],
    growth_fraction: float = 0.05,
    max_candidates: int = 20,
    apa_params: ApaParameters = ApaParameters(),
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    **engine_opts,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Latency stretch before/after LLPD-guided link additions.

    Returns per scheme the (before, after) latency-stretch pairs: medians
    and 90th percentiles across each network's traffic matrices.

    The before- and after-growth ensembles each run through
    :func:`evaluate_scheme` (parallelizable, cacheable, storable).  Note a
    store-only re-render still recomputes the LLPD-guided growth itself —
    the grown topologies feed the store key — but performs zero scheme
    evaluations.
    """
    from repro.net.mutate import grow_by_llpd

    grown_items: List[NetworkWorkload] = []
    for item in items:
        grown_network, _ = grow_by_llpd(
            item.network,
            score=lambda net: llpd(net, apa_params),
            growth_fraction=growth_fraction,
            max_candidates=max_candidates,
        )
        grown_items.append(
            NetworkWorkload(
                network=grown_network, llpd=item.llpd, matrices=item.matrices
            )
        )
    base_workload = _adhoc_workload(items)
    grown_workload = _adhoc_workload(grown_items)

    results: Dict[str, Dict[str, List[Tuple[float, float]]]] = {
        name: {"median": [], "p90": []} for name in scheme_factories()
    }
    for name, factory in scheme_factories().items():
        evaluations = {}
        for phase, workload in (
            ("base", base_workload),
            ("grown", grown_workload),
        ):
            evaluations[phase] = evaluate_scheme(
                factory,
                workload,
                n_workers=n_workers,
                cache_dir=cache_dir,
                store_dir=store_dir,
                scheme=f"{name}@{phase}",
                **engine_opts,
            )
        # Outcomes come back flattened in workload order (network, then
        # matrix); chunk them back per item to take per-network quantiles.
        offset = 0
        for item in items:
            count = len(item.matrices)
            before = [
                o.latency_stretch
                for o in evaluations["base"][offset:offset + count]
            ]
            after = [
                o.latency_stretch
                for o in evaluations["grown"][offset:offset + count]
            ]
            offset += count
            results[name]["median"].append(
                (float(np.median(before)), float(np.median(after)))
            )
            results[name]["p90"].append(
                (
                    float(np.quantile(before, 0.9)),
                    float(np.quantile(after, 0.9)),
                )
            )
    return results

"""Evaluate routing schemes over workloads and collect the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.workloads import NetworkWorkload, ZooWorkload
from repro.routing.base import RoutingScheme


@dataclass
class SchemeOutcome:
    """Metrics of one scheme on one (network, traffic matrix) pair."""

    network_name: str
    llpd: float
    congested_fraction: float
    latency_stretch: float
    max_path_stretch: float
    max_utilization: float
    fits: bool
    #: Unique id of the workload entry this outcome came from.  Zoo names
    #: are not unique, so grouping keys on this, not ``network_name``;
    #: empty (hand-built outcomes) falls back to (name, llpd).
    network_id: str = ""


def evaluate_scheme(
    scheme_factory: Callable[[NetworkWorkload], RoutingScheme],
    workload: ZooWorkload,
    matrices_per_network: Optional[int] = None,
    n_workers: int = 1,
    cache_dir: Optional[str] = None,
    store_dir: Optional[str] = None,
    scheme: Optional[str] = None,
    resume: bool = True,
    store_only: bool = False,
    cache_max_paths: Optional[int] = None,
) -> List[SchemeOutcome]:
    """Run a scheme across the whole workload.

    ``scheme_factory`` receives the per-network workload so schemes can
    share its KSP cache; a fresh scheme per network keeps state clean.  It
    can be an ad-hoc closure or — preferably — a declarative
    :class:`~repro.experiments.spec.SchemeSpec`, which additionally works
    on ``spawn``-only platforms and under multi-host dispatch
    (:mod:`repro.experiments.dispatch`).

    Evaluation is delegated to :class:`repro.experiments.engine.
    ExperimentEngine`: ``n_workers>1`` shards networks across a process
    pool, and ``cache_dir`` persists each network's KSP cache across runs
    (``cache_max_paths`` bounds those files).  Results are identical for
    any worker count.

    With a ``store_dir``, per-network results are persisted to (and served
    from) the durable result store under the stream named by ``scheme``
    (required in that case): stored networks are not re-evaluated when
    ``resume`` is true, and ``store_only=True`` serves entirely from the
    store, raising :class:`~repro.experiments.store.StoreMissError` rather
    than evaluating anything.  Stored outcomes compare equal to freshly
    computed ones.
    """
    from repro.experiments.engine import ExperimentEngine

    engine = ExperimentEngine(
        n_workers=n_workers,
        cache_dir=cache_dir,
        store_dir=store_dir,
        resume=resume,
        store_only=store_only,
        cache_max_paths=cache_max_paths,
    )
    return engine.run(
        scheme_factory, workload, matrices_per_network, scheme
    ).outcomes


def per_network_quantiles(
    outcomes: Sequence[SchemeOutcome],
    metric: str,
    quantile: float,
) -> List[tuple]:
    """(llpd, quantile-of-metric) per network, sorted by LLPD.

    This is the shape of the paper's Figures 3 and 4: networks on the
    x-axis ordered by LLPD, a per-network quantile across traffic matrices
    on the y-axis.

    Outcomes are grouped by ``network_id`` (falling back to the
    (name, llpd) pair when unset), never by name alone: two zoo networks
    can share a name, and merging them would mislabel the merged point
    with the first one's LLPD.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    by_network: Dict[Tuple, List[SchemeOutcome]] = {}
    for outcome in outcomes:
        key = (
            ("id", outcome.network_id)
            if outcome.network_id
            else ("name-llpd", outcome.network_name, outcome.llpd)
        )
        by_network.setdefault(key, []).append(outcome)
    points = []
    for network_outcomes in by_network.values():
        values = [getattr(o, metric) for o in network_outcomes]
        points.append(
            (network_outcomes[0].llpd, float(np.quantile(values, quantile)))
        )
    points.sort()
    return points

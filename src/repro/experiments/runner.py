"""Evaluate routing schemes over workloads and collect the paper's metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.workloads import NetworkWorkload, ZooWorkload
from repro.routing.base import Placement, RoutingScheme
from repro.tm.matrix import TrafficMatrix


@dataclass
class SchemeOutcome:
    """Metrics of one scheme on one (network, traffic matrix) pair."""

    network_name: str
    llpd: float
    congested_fraction: float
    latency_stretch: float
    max_path_stretch: float
    max_utilization: float
    fits: bool


def evaluate_scheme(
    scheme_factory: Callable[[NetworkWorkload], RoutingScheme],
    workload: ZooWorkload,
    matrices_per_network: Optional[int] = None,
) -> List[SchemeOutcome]:
    """Run a scheme across the whole workload.

    ``scheme_factory`` receives the per-network workload so schemes can
    share its KSP cache; a fresh scheme per network keeps state clean.
    """
    outcomes: List[SchemeOutcome] = []
    for item in workload.networks:
        matrices = item.matrices
        if matrices_per_network is not None:
            matrices = matrices[:matrices_per_network]
        scheme = scheme_factory(item)
        for tm in matrices:
            placement = scheme.place(item.network, tm)
            outcomes.append(
                SchemeOutcome(
                    network_name=item.network.name,
                    llpd=item.llpd,
                    congested_fraction=placement.congested_pair_fraction(),
                    latency_stretch=placement.total_latency_stretch(),
                    max_path_stretch=placement.max_path_stretch(),
                    max_utilization=placement.max_utilization(),
                    fits=placement.fits_all_traffic,
                )
            )
    return outcomes


def per_network_quantiles(
    outcomes: Sequence[SchemeOutcome],
    metric: str,
    quantile: float,
) -> List[tuple]:
    """(llpd, quantile-of-metric) per network, sorted by LLPD.

    This is the shape of the paper's Figures 3 and 4: networks on the
    x-axis ordered by LLPD, a per-network quantile across traffic matrices
    on the y-axis.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    by_network: Dict[str, List[SchemeOutcome]] = {}
    for outcome in outcomes:
        by_network.setdefault(outcome.network_name, []).append(outcome)
    points = []
    for network_outcomes in by_network.values():
        values = [getattr(o, metric) for o in network_outcomes]
        points.append(
            (network_outcomes[0].llpd, float(np.quantile(values, quantile)))
        )
    points.sort()
    return points

"""Text rendering of experiment results.

The environment has no plotting stack, so every figure is reported as an
aligned text table of the same series the paper plots.  These helpers are
shared by the benchmark suite and the example scripts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def render_series(
    title: str,
    series: Dict[str, List[Tuple[float, float]]],
    x_label: str = "x",
    y_format: str = "{:.3f}",
) -> str:
    """Tabulate several (x, y) series side by side on a shared x column.

    Series may have different x grids; missing cells print blank.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    names = list(series)
    lines = [title]
    header = f"{x_label:>10s} " + " ".join(f"{name:>12s}" for name in names)
    lines.append(header)
    lookup = {
        name: {round(x, 9): y for x, y in points} for name, points in series.items()
    }
    for x in xs:
        cells = []
        for name in names:
            y = lookup[name].get(round(x, 9))
            cells.append(y_format.format(y) if y is not None else "")
        lines.append(
            f"{x:>10.3f} " + " ".join(f"{cell:>12s}" for cell in cells)
        )
    return "\n".join(lines)


def render_cdf(
    title: str,
    values: Sequence[float],
    quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
    value_format: str = "{:.4f}",
) -> str:
    """Summarize a CDF by its quantiles (one line per quantile)."""
    data = np.asarray(list(values), dtype=float)
    lines = [title, f"{'quantile':>10s} {'value':>12s}"]
    if len(data) == 0:
        lines.append("  (no data)")
        return "\n".join(lines)
    for q in quantiles:
        lines.append(
            f"{q:>10.2f} {value_format.format(float(np.quantile(data, q))):>12s}"
        )
    return "\n".join(lines)


def render_scatter_summary(
    title: str, points: Sequence[Tuple[float, float]]
) -> str:
    """Summarize a scatter by correlation and relative deviation from x=y."""
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    lines = [title]
    if len(points) < 2:
        lines.append("  (insufficient data)")
        return "\n".join(lines)
    correlation = float(np.corrcoef(xs, ys)[0, 1])
    relative = np.abs(ys - xs) / np.maximum(xs, 1e-12)
    lines.append(f"  points:            {len(points)}")
    lines.append(f"  corr(x, y):        {correlation:.4f}")
    lines.append(f"  median |y-x|/x:    {float(np.median(relative)):.4f}")
    lines.append(f"  p90    |y-x|/x:    {float(np.quantile(relative, 0.9)):.4f}")
    return "\n".join(lines)

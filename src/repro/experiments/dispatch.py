"""Multi-host shard dispatch: manifests, workers, and store merge.

The engine shards one plan across local processes; this module shards
it across *store directories*, which is what makes the boundary a host
boundary: a shard manifest is a self-contained JSON file (networks,
traffic matrices, scheme specs, and the store signatures of every
stream), a worker is any interpreter anywhere running

    python -m repro.experiments worker <manifest> --store-dir <dir>

and collection is a merge of the worker's result-store streams back into
the main store.  N-host dispatch is therefore: copy N manifests to N
hosts, run N workers, copy N store directories back, merge.  The local
coordinators (:func:`dispatch_run` for one scheme, :func:`dispatch_plan`
for a whole multi-scheme evaluation plan) do exactly that with
subprocesses and temp directories, so the single-host path exercises the
same manifest/worker/merge machinery a cluster run would.

Manifests come in two versions: version 1 carries one scheme over one
workload (the classic ``dispatch <scheme>`` cycle), version 2 carries an
entire :class:`~repro.experiments.plan.EvalPlan` shard — a stream table
(spec + signature per stream) plus a flat task list, so every worker
gets a mix of schemes and sweep points rather than one scheme's
heaviest networks.  How work is split across shards is a scheduling
choice: the default cuts equal-*count* shards (version 1 stripes
indices round-robin; version 2 chunks the interleaved task order), and
a cost-aware scheduler (``--schedule lpt``) instead balances predicted
*makespan* — greedy LPT bin-packing over the cost model's per-task
predictions (:mod:`repro.experiments.cost`), so one worker is never
handed all the heavy LP solves.  The merge is version-blind and
order-blind either way: worker stores are just (signature, scheme)
streams, deduplicated by network index, so any partitioning yields the
same merged store.

Determinism
-----------

A worker reconstructs its networks and matrices from the manifest's JSON
forms (floats round-trip exactly), resolves the scheme spec through the
registry, and evaluates each item with the *original* workload index — so
its :class:`~repro.experiments.engine.NetworkResult` records are
bit-identical to what the in-process engine would have produced, and the
merged store serves outcomes equal to a serial
:func:`~repro.experiments.runner.evaluate_scheme` run
(:func:`dispatch_run` with ``verify=True`` asserts this).

The merge deduplicates by (workload signature, scheme, network index):
re-merging a worker store is a no-op, and two workers that redundantly
evaluated the same network contribute one record.  A record whose
``network_id`` disagrees with an already-merged one for the same index
raises :class:`~repro.experiments.store.StoreMismatchError` — that is two
*different* workloads colliding on a key and must never be papered over.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.experiments import telemetry
from repro.experiments.engine import ExperimentEngine, NetworkResult
from repro.experiments.plan import (
    EvalPlan,
    EvalTask,
    InterleaveScheduler,
    PlanReport,
    Scheduler,
)

if TYPE_CHECKING:
    from repro.experiments.cost import CostModel
from repro.experiments.spec import SchemeSpec, is_spawn_safe
from repro.experiments.store import (
    ResultStore,
    StoreError,
    StoreMismatchError,
    workload_signature,
)
from repro.experiments.workloads import NetworkWorkload, ZooWorkload
from repro.net.io import from_json as network_from_json
from repro.net.io import to_json as network_to_json
from repro.tm.matrix import from_json as tm_from_json
from repro.tm.matrix import to_json as tm_to_json

MANIFEST_FORMAT = "repro-shard-manifest"
MANIFEST_VERSION = 1
#: Version tag of whole-plan shard manifests (stream table + task list).
PLAN_MANIFEST_VERSION = 2


class DispatchError(StoreError):
    """A shard worker failed or produced an inconsistent store."""


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def shard_indices(n_networks: int, n_shards: int) -> List[List[int]]:
    """Stripe workload indices across shards (round-robin).

    This is the **version-1** (single-scheme) default partitioning only:
    striping balances better than contiguous chunks when network size
    correlates with position (the zoo generator tends to emit similar
    sizes in runs), and every index appears in exactly one shard.
    Version-2 whole-plan manifests do NOT use it — their flat task list
    is already interleaved across streams, so
    :func:`write_plan_manifests` cuts contiguous chunks of that order
    (stride striping there would resonate with the stream count).  Both
    paths switch to cost-balanced LPT bin-packing when given a
    cost-aware scheduler; see :func:`write_shard_manifests` and
    :func:`write_plan_manifests`.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    shards: List[List[int]] = [[] for _ in range(min(n_shards, n_networks))]
    for index in range(n_networks):
        shards[index % len(shards)].append(index)
    return shards


def build_manifest(
    spec: SchemeSpec,
    workload: ZooWorkload,
    indices: Sequence[int],
    scheme: str,
    signature: str,
    shard_index: int,
    n_shards: int,
    matrices_per_network: Optional[int] = None,
) -> dict:
    """The self-contained JSON payload for one shard."""
    entries = []
    for index in indices:
        item = workload.networks[index]
        matrices = item.matrices
        if matrices_per_network is not None:
            matrices = matrices[:matrices_per_network]
        entries.append(
            {
                "index": index,
                "llpd": item.llpd,
                "network": json.loads(network_to_json(item.network)),
                "matrices": [json.loads(tm_to_json(tm)) for tm in matrices],
            }
        )
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "scheme": scheme,
        "spec": spec.to_jsonable(),
        "signature": signature,
        "n_networks": len(workload.networks),
        "matrices_per_network": matrices_per_network,
        "shard_index": shard_index,
        "n_shards": n_shards,
        "shaping": {
            "locality": workload.locality,
            "growth_factor": workload.growth_factor,
            "seed": workload.seed,
        },
        "networks": entries,
    }


def write_shard_manifests(
    spec: SchemeSpec,
    workload: ZooWorkload,
    n_shards: int,
    out_dir: "os.PathLike[str] | str",
    scheme: Optional[str] = None,
    matrices_per_network: Optional[int] = None,
    cost_model: Optional["CostModel"] = None,
) -> List[Path]:
    """Split a workload into shard manifest files under ``out_dir``.

    ``scheme`` names the result-store stream (defaults to the spec's
    registry name); the signature stored in every manifest is the *full*
    workload's, so all shards append into one mergeable key.  Without a
    ``cost_model`` indices are striped round-robin
    (:func:`shard_indices`); with one, shards are balanced by greedy
    LPT bin-packing over predicted per-network costs, so no worker is
    handed all the heavy networks.
    """
    scheme = scheme or spec.scheme
    signature = workload_signature(workload, matrices_per_network)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    if cost_model is not None and workload.networks:
        from repro.experiments.cost import lpt_partition

        indices = list(range(len(workload.networks)))
        costs = [
            cost_model.predict_item(
                spec,
                workload.networks[i],
                n_matrices=matrices_per_network,
                scheme=scheme,
            )
            for i in indices
        ]
        shards = lpt_partition(indices, costs, n_shards)
    else:
        shards = shard_indices(len(workload.networks), n_shards)
    recorder = telemetry.recorder()
    for shard_index, indices in enumerate(shards):
        with recorder.span("manifest_write", {"shard_index": shard_index}):
            manifest = build_manifest(
                spec,
                workload,
                indices,
                scheme=scheme,
                signature=signature,
                shard_index=shard_index,
                n_shards=len(shards),
                matrices_per_network=matrices_per_network,
            )
            path = out / f"shard-{shard_index:03d}.json"
            path.write_text(json.dumps(manifest, indent=2))
        paths.append(path)
    return paths


def load_manifest(path: "os.PathLike[str] | str") -> dict:
    """Read and validate a shard manifest file (either version)."""
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise DispatchError(f"{path}: not a {MANIFEST_FORMAT} document")
    if manifest.get("version") not in (MANIFEST_VERSION, PLAN_MANIFEST_VERSION):
        raise DispatchError(
            f"{path}: unsupported manifest version "
            f"{manifest.get('version')!r}"
        )
    return manifest


# ----------------------------------------------------------------------
# Plan manifests (version 2)
# ----------------------------------------------------------------------
def build_plan_manifest(
    plan: EvalPlan,
    tasks: Sequence[EvalTask],
    shard_index: int,
    n_shards: int,
) -> dict:
    """The self-contained JSON payload for one shard of a whole plan.

    The manifest carries a stream table (spec, store signature, scheme
    stream name, workload size per stream) and a flat task list; each
    task references its stream by table position and its workload item
    by position in a deduplicated item table — two streams evaluating
    the same network (the common case: every scheme of a figure runs
    over the same workload) serialize that network once per manifest,
    not once per task.

    Lazy scenario workloads (anything exposing ``to_manifest_jsonable``)
    ship *compactly*: the fleet description (base item + specs) lands
    once in a deduplicated ``scenarios`` table, the stream entry points
    at it, and the stream's tasks are run-length encoded as
    ``task_chunks`` (contiguous index ranges) instead of one entry per
    task — a 10^5-variant shard is a handful of chunk records, and no
    variant is ever materialized while writing the manifest.  Both
    additions are optional fields of the version-2 layout; manifests
    without them read exactly as before.
    """
    stream_ids: Dict[object, int] = {}
    streams = []
    scenarios: List[dict] = []
    scenario_ids: Dict[int, int] = {}
    for key, stream in plan.streams.items():
        if not is_spawn_safe(stream.factory):
            raise DispatchError(
                f"plan stream {key!r} uses a non-SchemeSpec factory; "
                f"only registry specs can cross a host boundary"
            )
        scenario_ref = None
        to_payload = getattr(stream.workload, "to_manifest_jsonable", None)
        if callable(to_payload):
            scenario_ref = scenario_ids.get(id(stream.workload))
            if scenario_ref is None:
                scenario_ref = len(scenarios)
                scenario_ids[id(stream.workload)] = scenario_ref
                scenarios.append(to_payload())
        stream_ids[key] = len(streams)
        streams.append(
            {
                "scheme": stream.scheme,
                "spec": stream.factory.to_jsonable(),
                "signature": workload_signature(
                    stream.workload, stream.matrices_per_network
                ),
                "n_networks": stream.n_networks,
                "matrices_per_network": stream.matrices_per_network,
                "scenario": scenario_ref,
            }
        )
    items: List[dict] = []
    item_ids: Dict[tuple, int] = {}
    task_entries = []
    task_chunks: List[dict] = []
    open_chunks: Dict[int, dict] = {}
    for task in tasks:
        stream = plan.streams[task.stream]
        sid = stream_ids[task.stream]
        if streams[sid]["scenario"] is not None:
            chunk = open_chunks.get(sid)
            if (
                chunk is not None
                and chunk["start"] + chunk["count"] == task.index
            ):
                chunk["count"] += 1
            else:
                chunk = {"stream": sid, "start": task.index, "count": 1}
                open_chunks[sid] = chunk
                task_chunks.append(chunk)
            continue
        item = stream.workload.networks[task.index]
        ident = (
            id(stream.workload), task.index, stream.matrices_per_network
        )
        item_id = item_ids.get(ident)
        if item_id is None:
            matrices = item.matrices
            if stream.matrices_per_network is not None:
                matrices = matrices[: stream.matrices_per_network]
            item_id = len(items)
            item_ids[ident] = item_id
            items.append(
                {
                    "llpd": item.llpd,
                    "network": json.loads(network_to_json(item.network)),
                    "matrices": [
                        json.loads(tm_to_json(tm)) for tm in matrices
                    ],
                }
            )
        task_entries.append(
            {
                "stream": stream_ids[task.stream],
                "index": task.index,
                "item": item_id,
            }
        )
    return {
        "format": MANIFEST_FORMAT,
        "version": PLAN_MANIFEST_VERSION,
        "shard_index": shard_index,
        "n_shards": n_shards,
        "streams": streams,
        "items": items,
        "tasks": task_entries,
        "scenarios": scenarios,
        "task_chunks": task_chunks,
    }


def write_plan_manifests(
    plan: EvalPlan,
    n_shards: int,
    out_dir: "os.PathLike[str] | str",
    scheduler: Optional[Scheduler] = None,
) -> List[Path]:
    """Split a whole plan into shard manifest files under ``out_dir``.

    Partitioning is the scheduler's :meth:`~repro.experiments.plan.
    Scheduler.partition` policy.  The default (round-robin interleave)
    splits :meth:`EvalPlan.tasks` into contiguous, equal-size chunks of
    the interleaved order, so every worker receives a mix of *all*
    schemes and sweep points.  (Stride striping would resonate with the
    stream count — with 4 schemes and 2 shards, every other task is the
    same two schemes — whereas a contiguous chunk of a round-robin list
    cycles through every stream.)  A cost-aware scheduler
    (:class:`~repro.experiments.cost.LptScheduler`) instead balances
    shards by predicted makespan: greedy LPT bin-packing, heaviest task
    onto the lightest shard, each shard internally ordered
    longest-first.  Either way every stream's signature is the full
    workload's, so all shards append into the same mergeable store keys
    the in-process plan run would use — partitioning never changes the
    merged results.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if scheduler is None:
        scheduler = InterleaveScheduler()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    shards = scheduler.partition(plan, n_shards)
    recorder = telemetry.recorder()
    for shard_index, shard_tasks in enumerate(shards):
        with recorder.span("manifest_write", {"shard_index": shard_index}):
            manifest = build_plan_manifest(
                plan,
                shard_tasks,
                shard_index=shard_index,
                n_shards=len(shards),
            )
            path = out / f"shard-{shard_index:03d}.json"
            path.write_text(json.dumps(manifest, indent=2))
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def manifest_items(manifest: dict) -> List[tuple]:
    """(global index, rebuilt :class:`NetworkWorkload`) per shard entry."""
    items = []
    for entry in manifest["networks"]:
        network = network_from_json(json.dumps(entry["network"]))
        matrices = [tm_from_json(json.dumps(tm)) for tm in entry["matrices"]]
        items.append(
            (
                entry["index"],
                NetworkWorkload(
                    network=network, llpd=entry["llpd"], matrices=matrices
                ),
            )
        )
    return items


def run_worker(
    manifest_path: "os.PathLike[str] | str",
    store_dir: "os.PathLike[str] | str",
    cache_dir: Optional["os.PathLike[str] | str"] = None,
    cache_max_paths: Optional[int] = None,
    resume: bool = True,
) -> dict:
    """Evaluate one shard and append its results to ``store_dir``.

    The worker's store streams carry the manifest's full-workload
    signatures, so several workers' stores merge into one key set.
    Already-stored indices are skipped (a re-run worker resumes like the
    engine does).  Handles both single-scheme (version 1) and whole-plan
    (version 2) manifests.  Returns a summary dict for logging.
    """
    manifest = load_manifest(manifest_path)
    if manifest["version"] == PLAN_MANIFEST_VERSION:
        return _run_plan_worker(
            manifest,
            store_dir,
            cache_dir=cache_dir,
            cache_max_paths=cache_max_paths,
            resume=resume,
        )
    spec = SchemeSpec.from_jsonable(manifest["spec"])
    scheme = manifest["scheme"]
    signature = manifest["signature"]
    recorder = telemetry.recorder()
    if recorder.enabled:
        # The manifest's (scheme, signature) pair derives the same trace
        # id the coordinator uses: shards converge without handing an id
        # across the process boundary.
        recorder.begin_trace(
            telemetry.trace_id_for_streams([(scheme, signature)])
        )
    engine = ExperimentEngine(
        n_workers=1, cache_dir=cache_dir, cache_max_paths=cache_max_paths
    )
    store = ResultStore(store_dir)
    writer = store.open_writer(
        signature, scheme, n_networks=manifest["n_networks"], resume=resume
    )
    evaluated = skipped = 0
    attrs = None
    if recorder.enabled:
        attrs = {
            "shard_index": manifest["shard_index"],
            "n_shards": manifest["n_shards"],
        }
    try:
        with recorder.span("worker", attrs):
            for index, item in manifest_items(manifest):
                if index in writer.stored:
                    skipped += 1
                    continue
                result = engine._evaluate_network(
                    spec,
                    item,
                    manifest["matrices_per_network"],
                    index,
                    scheme=scheme,
                )
                writer.append(result)
                evaluated += 1
            if recorder.enabled and skipped:
                recorder.counter("engine.resume_skipped", skipped)
    finally:
        writer.close()
    return {
        "shard_index": manifest["shard_index"],
        "n_shards": manifest["n_shards"],
        "scheme": scheme,
        "signature": signature,
        "evaluated": evaluated,
        "skipped": skipped,
        "stream": os.fspath(store.stream_path(signature, scheme)),
    }


def _run_plan_worker(
    manifest: dict,
    store_dir: "os.PathLike[str] | str",
    cache_dir: Optional["os.PathLike[str] | str"] = None,
    cache_max_paths: Optional[int] = None,
    resume: bool = True,
) -> dict:
    """Evaluate one whole-plan shard (version 2 manifest).

    One store stream per plan stream; each task resolves its spec
    through the registry, rebuilds its workload item from the shared
    item table, and evaluates under its *original* global index — so the
    worker's records are bit-identical to the in-process engine's and
    merge conflict-free by (signature, scheme, index).
    """
    from repro.experiments.store import MultiStreamWriter

    recorder = telemetry.recorder()
    if recorder.enabled:
        # The stream table always carries the *whole* plan's streams, so
        # every shard — and the coordinator via plan_trace_id — derives
        # the same trace id independently.
        recorder.begin_trace(
            telemetry.trace_id_for_streams(
                [
                    (stream["scheme"], stream["signature"])
                    for stream in manifest["streams"]
                ]
            )
        )
    engine = ExperimentEngine(
        n_workers=1, cache_dir=cache_dir, cache_max_paths=cache_max_paths
    )
    store = ResultStore(store_dir)
    writer = MultiStreamWriter(store, resume=resume)
    specs = [
        SchemeSpec.from_jsonable(stream["spec"])
        for stream in manifest["streams"]
    ]
    rebuilt_items: Dict[int, NetworkWorkload] = {}
    scenario_fleets: Dict[int, object] = {}

    def scenario_item(sid: int, index: int) -> NetworkWorkload:
        """Materialize one variant of a scenario stream on demand."""
        ref = manifest["streams"][sid]["scenario"]
        fleet = scenario_fleets.get(ref)
        if fleet is None:
            # Imported lazily: scenarios imports the store layer, and
            # this module must stay importable without it at play.
            from repro.scenarios.workload import ScenarioWorkload

            fleet = ScenarioWorkload.from_manifest_jsonable(
                manifest["scenarios"][ref]
            )
            scenario_fleets[ref] = fleet
        return fleet.networks[index]

    def shard_tasks():
        """Explicit task entries, then run-length-encoded chunks.

        Yields ``(stream id, global index, item ref)``; a ``None`` item
        ref means the stream's scenario fleet materializes the item.
        """
        for task in manifest["tasks"]:
            yield task["stream"], task["index"], task["item"]
        for chunk in manifest.get("task_chunks") or []:
            for index in range(
                chunk["start"], chunk["start"] + chunk["count"]
            ):
                yield chunk["stream"], index, None

    evaluated = skipped = 0
    attrs = None
    if recorder.enabled:
        attrs = {
            "shard_index": manifest["shard_index"],
            "n_shards": manifest["n_shards"],
        }
    try:
        with recorder.span("worker", attrs):
            stored = [
                writer.open(
                    sid,
                    stream["signature"],
                    stream["scheme"],
                    n_networks=stream["n_networks"],
                )
                for sid, stream in enumerate(manifest["streams"])
            ]
            for sid, index, item_ref in shard_tasks():
                if index in stored[sid]:
                    skipped += 1
                    continue
                if item_ref is None:
                    item = scenario_item(sid, index)
                else:
                    item = rebuilt_items.get(item_ref)
                    if item is None:
                        entry = manifest["items"][item_ref]
                        item = NetworkWorkload(
                            network=network_from_json(
                                json.dumps(entry["network"])
                            ),
                            llpd=entry["llpd"],
                            matrices=[
                                tm_from_json(json.dumps(tm))
                                for tm in entry["matrices"]
                            ],
                        )
                        rebuilt_items[item_ref] = item
                result = engine._evaluate_network(
                    specs[sid],
                    item,
                    manifest["streams"][sid]["matrices_per_network"],
                    index,
                    scheme=manifest["streams"][sid]["scheme"],
                )
                writer.append(sid, result)
                evaluated += 1
            if recorder.enabled and skipped:
                recorder.counter("engine.resume_skipped", skipped)
    finally:
        writer.close()
    schemes = sorted({stream["scheme"] for stream in manifest["streams"]})
    return {
        "shard_index": manifest["shard_index"],
        "n_shards": manifest["n_shards"],
        "scheme": "+".join(schemes),
        "signature": "<plan>",
        "evaluated": evaluated,
        "skipped": skipped,
        "stream": os.fspath(store.root),
    }


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_worker_store(
    main_store_dir: "os.PathLike[str] | str",
    worker_store_dir: "os.PathLike[str] | str",
) -> Dict[str, int]:
    """Merge every stream of a worker store into the main store.

    Deduplicates by (signature, scheme, network index): records whose
    index the main stream already holds are dropped, so merging is
    idempotent — re-merging the same worker store appends nothing.  An
    index collision with a *different* ``network_id`` raises
    :class:`StoreMismatchError` instead of silently keeping either.

    Returns ``{"<signature>/<scheme>": records appended}`` per stream.
    """
    worker_root = Path(worker_store_dir)
    main = ResultStore(main_store_dir)
    appended: Dict[str, int] = {}
    if not worker_root.is_dir():
        return appended
    with telemetry.recorder().span("merge"):
        _merge_worker_streams(worker_root, main, appended)
    return appended


def _merge_worker_streams(
    worker_root: Path, main: ResultStore, appended: Dict[str, int]
) -> None:
    """The per-stream body of :func:`merge_worker_store`."""
    from repro.experiments.store import _scan_stream

    for stream in sorted(worker_root.glob("*/*.jsonl")):
        signature = stream.parent.name
        header, results, _ = _scan_stream(os.fspath(stream))
        if header is None:
            raise StoreMismatchError(f"{stream}: no valid header record")
        if header.get("signature") != signature:
            raise StoreMismatchError(
                f"{stream}: header signature "
                f"{header.get('signature')!r} does not match its "
                f"directory {signature!r}"
            )
        scheme = header["scheme"]
        writer = main.open_writer(
            signature,
            scheme,
            n_networks=header.get("n_networks", len(results)),
            resume=True,
        )
        count = 0
        try:
            for index in sorted(results):
                result = results[index]
                existing = writer.stored.get(index)
                if existing is not None:
                    if existing.network_id != result.network_id:
                        raise StoreMismatchError(
                            f"{stream}: index {index} holds "
                            f"{result.network_id!r} but the main store has "
                            f"{existing.network_id!r} under the same key"
                        )
                    continue
                writer.append(result)
                count += 1
        finally:
            writer.close()
        appended[f"{signature}/{scheme}"] = count


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _worker_command(
    manifest: Path,
    store_dir: Path,
    cache_dir: Optional[Path],
    cache_max_paths: Optional[int],
) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro.experiments",
        "worker",
        os.fspath(manifest),
        "--store-dir",
        os.fspath(store_dir),
    ]
    if cache_dir is not None:
        command += ["--cache-dir", os.fspath(cache_dir)]
    if cache_max_paths is not None:
        command += ["--cache-max-paths", str(cache_max_paths)]
    trace_dir = telemetry.active_trace_dir()
    if trace_dir is not None:
        # Local workers would inherit REPRO_TRACE_DIR anyway; the flag
        # also documents exactly what a remote host must be handed.  The
        # worker derives its trace id from the manifest, so no id flag.
        command += ["--trace-dir", trace_dir]
    return command


def _worker_env() -> dict:
    """Subprocess environment with this repro package importable."""
    env = dict(os.environ)
    package_root = os.fspath(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


def _run_shard_workers(
    manifests: Sequence[Path],
    work: Path,
    cache_dir: Optional["os.PathLike[str] | str"],
    cache_max_paths: Optional[int],
) -> List[Path]:
    """Launch one worker subprocess per manifest; return worker stores.

    Every worker gets its own store directory under ``work``.  All
    workers run concurrently; any non-zero exit raises
    :class:`DispatchError` carrying each failure's stderr tail.
    """
    env = _worker_env()
    procs = []
    for shard_index, manifest in enumerate(manifests):
        worker_store = work / f"worker-{shard_index:03d}"
        procs.append(
            (
                manifest,
                worker_store,
                subprocess.Popen(
                    _worker_command(
                        manifest,
                        worker_store,
                        Path(cache_dir) if cache_dir else None,
                        cache_max_paths,
                    ),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env=env,
                    text=True,
                ),
            )
        )
    failures = []
    for manifest, _, proc in procs:
        _, stderr = proc.communicate()
        if proc.returncode != 0:
            failures.append(
                f"{manifest.name} exited {proc.returncode}: "
                f"{stderr.strip()[-2000:]}"
            )
    if failures:
        raise DispatchError(
            "shard worker(s) failed:\n" + "\n".join(failures)
        )
    return [worker_store for _, worker_store, _ in procs]


def dispatch_run(
    spec: SchemeSpec,
    workload: ZooWorkload,
    n_shards: int,
    store_dir: "os.PathLike[str] | str",
    scheme: Optional[str] = None,
    matrices_per_network: Optional[int] = None,
    work_dir: Optional["os.PathLike[str] | str"] = None,
    cache_dir: Optional["os.PathLike[str] | str"] = None,
    cache_max_paths: Optional[int] = None,
    resume: bool = True,
    verify: bool = False,
    scheduler: "str | Scheduler | None" = None,
) -> List:
    """Shard, run workers as subprocesses, merge, and serve the results.

    The full coordinator cycle on one machine: write ``n_shards`` shard
    manifests under ``work_dir`` (a temp directory by default), launch one
    ``python -m repro.experiments worker`` subprocess per manifest (each
    appending to its own store directory), merge the worker stores into
    ``store_dir``, and return the outcomes served from the merged store —
    in workload order, equal to what a serial in-process run returns.

    ``scheduler`` picks the shard partitioning: the default stripes
    indices round-robin; a cost-aware scheduler (``"lpt"``, resolving
    its cost model against ``store_dir`` so previously measured
    timings replay) balances shards by predicted makespan instead.
    Partitioning never changes the merged, served results.

    ``resume=False`` discards the main store's existing stream for this
    (workload, scheme) before merging, so the freshly dispatched results
    replace — rather than lose to — whatever the store already held.  The
    discard happens only after every worker succeeded; a failed dispatch
    never destroys existing results.

    ``verify=True`` additionally runs the in-process serial engine and
    raises :class:`DispatchError` on any outcome difference; it exists for
    tests and smoke checks, since it obviously re-pays the whole
    evaluation cost.
    """
    from repro.experiments.cost import make_scheduler

    scheme = scheme or spec.scheme
    recorder = telemetry.recorder()
    if recorder.enabled:
        recorder.begin_trace(
            telemetry.trace_id_for_streams(
                [(scheme, workload_signature(workload, matrices_per_network))]
            )
        )
    resolved = make_scheduler(
        scheduler,
        store_dir=store_dir,
        trace_dir=telemetry.active_trace_dir(),
    )
    own_work_dir = None
    if work_dir is None:
        own_work_dir = tempfile.TemporaryDirectory(prefix="repro-dispatch-")
        work_dir = own_work_dir.name
    work = Path(work_dir)
    try:
        manifests = write_shard_manifests(
            spec,
            workload,
            n_shards,
            work / "manifests",
            scheme=scheme,
            matrices_per_network=matrices_per_network,
            cost_model=getattr(resolved, "cost_model", None),
        )
        worker_stores = _run_shard_workers(
            manifests, work, cache_dir, cache_max_paths
        )
        if not resume:
            # Reset the main stream so merged records replace, not lose
            # to, stale ones the store already held for this key.
            ResultStore(store_dir).open_writer(
                workload_signature(workload, matrices_per_network),
                scheme,
                n_networks=len(workload.networks),
                resume=False,
            ).close()
        for worker_store in worker_stores:
            merge_worker_store(store_dir, worker_store)
    finally:
        if own_work_dir is not None:
            own_work_dir.cleanup()

    served = ExperimentEngine(store_dir=store_dir, store_only=True).run(
        spec, workload, matrices_per_network, scheme
    )
    outcomes = served.outcomes
    if verify:
        direct = ExperimentEngine(n_workers=1).run(
            spec, workload, matrices_per_network
        )
        if outcomes != direct.outcomes:
            raise DispatchError(
                "dispatched outcomes differ from the in-process engine's "
                f"for scheme {scheme!r}"
            )
    return outcomes


def dispatch_plan(
    plan: EvalPlan,
    n_shards: int,
    store_dir: "os.PathLike[str] | str",
    work_dir: Optional["os.PathLike[str] | str"] = None,
    cache_dir: Optional["os.PathLike[str] | str"] = None,
    cache_max_paths: Optional[int] = None,
    resume: bool = True,
    verify: bool = False,
    scheduler: "str | Scheduler | None" = None,
) -> PlanReport:
    """Shard a whole evaluation plan across worker subprocesses and merge.

    The multi-scheme analogue of :func:`dispatch_run`: the plan's flat
    task list — every (scheme, sweep point, network) cell of a figure —
    is partitioned across ``n_shards`` manifests by the ``scheduler``
    (default: contiguous chunks of the round-robin interleave, so each
    worker evaluates a mix of *all* streams; ``"lpt"`` balances shards
    by predicted makespan, replaying learned timings from
    ``store_dir``).  Worker stores merge back into ``store_dir`` with
    the usual idempotent, conflict-checked (signature, scheme, index)
    dedup, and the merged store then serves the full
    :class:`~repro.experiments.plan.PlanReport` — equal to what an
    in-process :func:`~repro.experiments.plan.execute_plan` run
    returns regardless of partitioning (``verify=True`` asserts exactly
    that).

    ``resume=False`` resets every stream of the plan in the main store
    before merging, and only after every worker succeeded — a failed
    dispatch never destroys existing results.
    """
    from repro.experiments.cost import make_scheduler

    recorder = telemetry.recorder()
    if recorder.enabled:
        recorder.begin_trace(telemetry.plan_trace_id(plan))
    resolved = make_scheduler(
        scheduler,
        store_dir=store_dir,
        trace_dir=telemetry.active_trace_dir(),
    )
    own_work_dir = None
    if work_dir is None:
        own_work_dir = tempfile.TemporaryDirectory(prefix="repro-dispatch-")
        work_dir = own_work_dir.name
    work = Path(work_dir)
    try:
        manifests = write_plan_manifests(
            plan, n_shards, work / "manifests", scheduler=resolved
        )
        worker_stores = _run_shard_workers(
            manifests, work, cache_dir, cache_max_paths
        )
        if not resume:
            store = ResultStore(store_dir)
            for stream in plan.streams.values():
                store.open_writer(
                    workload_signature(
                        stream.workload, stream.matrices_per_network
                    ),
                    stream.scheme,
                    n_networks=stream.n_networks,
                    resume=False,
                ).close()
        for worker_store in worker_stores:
            merge_worker_store(store_dir, worker_store)
    finally:
        if own_work_dir is not None:
            own_work_dir.cleanup()

    report = ExperimentEngine(store_dir=store_dir, store_only=True).run_plan(
        plan
    )
    if verify:
        direct = ExperimentEngine(n_workers=1).run_plan(plan)
        for key in plan.streams:
            if report.outcomes(key) != direct.outcomes(key):
                raise DispatchError(
                    "dispatched outcomes differ from the in-process "
                    f"engine's for plan stream {key!r}"
                )
    return report

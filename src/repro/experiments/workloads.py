"""Workload construction for the paper's experiments.

Each evaluation figure runs over (network, traffic-matrix ensemble) pairs:
networks from the (synthetic) topology zoo, and per-network gravity
matrices shaped by locality and scaled to a target load, exactly as §3
describes.  LLPD values are computed once per network and cached on the
workload, since every figure plots against them.

Scale note: the paper uses 116 networks x 100 matrices.  The defaults here
(a few dozen networks x a handful of matrices) keep the full benchmark
suite laptop-sized; every knob is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.metrics import ApaParameters, llpd
from repro.net.graph import Network
from repro.net.paths import KspCache
from repro.net.zoo import generate_zoo
from repro.tm import (
    TrafficMatrix,
    apply_locality,
    gravity_traffic_matrix,
    scale_to_growth_headroom,
)


@dataclass
class NetworkWorkload:
    """One network plus its traffic matrices and cached analysis state."""

    network: Network
    llpd: float
    matrices: List[TrafficMatrix]
    cache: KspCache = field(repr=False, default=None)  # type: ignore[assignment]
    #: Scenario label when this item is a perturbed variant produced by
    #: :mod:`repro.scenarios` (``None`` for ordinary zoo items).  Purely
    #: descriptive — telemetry tags task spans with it; results and
    #: signatures derive from the perturbed content itself.
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = KspCache(self.network)


@dataclass
class ZooWorkload:
    """The full ensemble for one experiment configuration."""

    networks: List[NetworkWorkload]
    locality: float
    growth_factor: float
    #: RNG seed the ensemble was built from; ``None`` for hand-assembled
    #: workloads.  Recorded so the result store's workload signature covers
    #: it (see :func:`repro.experiments.store.workload_signature`).
    seed: Optional[int] = None

    def sorted_by_llpd(self) -> List[NetworkWorkload]:
        return sorted(self.networks, key=lambda item: item.llpd)


def build_traffic_matrices(
    network: Network,
    n_matrices: int,
    rng: np.random.Generator,
    locality: float = 1.0,
    growth_factor: float = 1.3,
) -> List[TrafficMatrix]:
    """Gravity matrices, locality-shaped and scaled to the target load."""
    matrices = []
    for _ in range(n_matrices):
        tm = gravity_traffic_matrix(network, rng)
        tm = apply_locality(network, tm, locality)
        tm = scale_to_growth_headroom(network, tm, growth_factor)
        matrices.append(tm)
    return matrices


def build_zoo_workload(
    n_networks: int = 24,
    n_matrices: int = 3,
    locality: float = 1.0,
    growth_factor: float = 1.3,
    seed: int = 0,
    min_nodes: int = 2,
    include_named: bool = True,
    apa_params: ApaParameters = ApaParameters(),
    extra_networks: Optional[List[Network]] = None,
) -> ZooWorkload:
    """Build the standard evaluation ensemble.

    ``growth_factor`` 1.3 gives the paper's default 77% min-cut load (its
    Figures 3, 4, 16); 1.65 gives the lighter 60% load of its Figure 8.
    """
    rng = np.random.default_rng(seed)
    networks = generate_zoo(n_networks, seed=seed, include_named=include_named)
    if extra_networks:
        networks = networks + list(extra_networks)
    items: List[NetworkWorkload] = []
    for network in networks:
        if network.num_nodes < min_nodes:
            continue
        value = llpd(network, apa_params)
        matrices = build_traffic_matrices(
            network, n_matrices, rng, locality, growth_factor
        )
        items.append(NetworkWorkload(network=network, llpd=value, matrices=matrices))
    return ZooWorkload(
        networks=items, locality=locality, growth_factor=growth_factor, seed=seed
    )

"""Run telemetry: span tracing and metrics across the execution spine.

The stack schedules work it could not previously *see*: the cost model
learns one coarse per-network number (the engine's ``seconds``) and
nothing else answers "where did this run spend its time — LP solves,
Yen's KSP, store appends, or pool idle?".  This module is that
monitoring plane: a span-based tracer plus a metrics registry threaded
through every layer (plan build → scheduling → per-task evaluation with
KSP/LP sub-spans → store appends → manifest writes → dispatch workers),
recording *where* time goes without ever touching *what* is computed.

Design constraints, in the order they shaped the module:

* **Off by default, free when off.**  The global recorder defaults to a
  no-op whose ``span()`` returns one shared singleton context manager —
  an instrumented call site costs two method calls and zero allocations
  when tracing is disabled, so instrumentation can live on hot paths
  (``KspCache.get``, ``LpModel.solve``) permanently.
* **Results are untouchable.**  Telemetry only ever *observes*: spans
  wrap existing work, nothing reads a span to decide anything, and the
  figures a traced run renders are byte-identical to an untraced run's
  (CI asserts this).  Wall-clock reads live here and only here, declared
  once via the analyzer's module-scoped D102 allowlist below.
* **Same durability discipline as the result store.**  Spans append to
  per-process JSONL shard files under ``<trace_dir>/<trace_id>/``; one
  flushed line per record at top-level span boundaries, so a crash tears
  at most a trailing line and readers skip the torn tail.  Forked pool
  workers, spawn pool workers and dispatch worker subprocesses each
  write their own shard (a process-identity check reopens the writer
  after ``fork``), and :func:`load_trace` merges shards by trace id.
* **Traces are keyed by workload.**  A run's trace id derives from its
  plan's (scheme, workload signature) pairs
  (:func:`trace_id_for_streams`), so a dispatch coordinator and its
  worker subprocesses converge on the same trace id without coordination
  — their shards land in one trace directory and merge for free —
  and re-runs of the same workload append new shards (distinguished by
  the per-process ``run`` token) to the same trace.
* **Telemetry feeds scheduling.**  ``task`` spans carry the network
  content signature and scheme stream name, so
  :meth:`repro.experiments.cost.CostModel.learned_seconds` can replay
  span timings from a trace directory exactly like store-stamped means
  (:func:`task_timings` is the reader).

Span vocabulary (what :func:`summary` / ``trace critical-path`` report):

========================= =============================================
``run_plan``              one whole plan execution (engine)
``schedule``              scheduler resolution + task flattening
``task``                  one (stream, network) evaluation; attrs carry
                          index / network_id / scheme / signature
``scheme_build``          scheme construction inside a task
``place``                 one traffic matrix placement inside a task
``ksp``                   Yen's k-shortest-paths materialization
``lp_assemble``           LP model assembly / compilation to solver
                          form; attrs carry backend + warm/cold
``lp_solve``              one LP solve (scipy-HiGHS or highspy); attrs
                          carry backend + warm/cold
``cache_load``/``_dump``  persistent KSP cache file I/O
``store_append``          one result-store record append
``manifest_write``        shard manifest serialization (dispatch)
``merge``                 one worker store merged back (dispatch)
``worker``                one dispatch worker subprocess run
========================= =============================================

Child processes enable tracing automatically through the environment
(``REPRO_TRACE_DIR`` / ``REPRO_TRACE_ID``): :func:`configure` exports
both, spawn pools and worker subprocesses inherit them, and the first
:func:`recorder` call in the child initializes from them.
"""

# analysis: allow-module[D102] — telemetry is the sanctioned
# instrumentation layer: wall-clock stamps annotate traces for humans
# and order nothing; results never read them.

from __future__ import annotations

import io
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Environment variables child processes inherit tracing through.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
TRACE_ID_ENV = "REPRO_TRACE_ID"

#: Trace id used before any plan declares a workload-derived one.
ADHOC_TRACE = "adhoc"


# ----------------------------------------------------------------------
# Recorder: the write side
# ----------------------------------------------------------------------
class _NoopSpan:
    """The do-nothing span; one shared instance, no per-call state."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Recorder:
    """The no-op recorder every call site talks to by default.

    Subclasses (one: :class:`TraceRecorder`) override everything; call
    sites check :attr:`enabled` only when building span attributes
    would itself cost something.  ``span`` returns a reusable singleton
    context manager, so the disabled path allocates nothing.
    """

    enabled: bool = False
    trace: Optional[str] = None
    trace_dir: Optional[str] = None

    def span(self, name: str, attrs: Optional[dict] = None) -> object:
        return _NOOP_SPAN

    def counter(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def begin_trace(self, trace_id: str) -> None:
        pass

    def flush(self) -> None:
        pass


#: The process-wide no-op instance (also what :func:`disable` restores).
NOOP = Recorder()


class _Span:
    """One live span: a context manager that emits itself on exit."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent", "t0")

    def __init__(
        self, recorder: "TraceRecorder", name: str, attrs: Optional[dict]
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._recorder._enter_span(self)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._recorder._exit_span(self)
        return False


class TraceRecorder(Recorder):
    """Active recorder: spans and metrics to per-process JSONL shards.

    One instance serves a whole process tree: forked children inherit it
    and transparently re-open their own shard file on first use (the
    process-identity check in :meth:`_local`), so two processes never
    interleave writes within one file.  Writes are line-buffered and
    flushed whenever the span stack empties — a crash loses at most the
    records of the task in flight, which readers tolerate exactly like
    the result store tolerates a torn tail.
    """

    enabled = True

    def __init__(
        self,
        trace_dir: "os.PathLike[str] | str",
        trace: Optional[str] = None,
        export_env: bool = True,
    ) -> None:
        self.trace_dir = os.fspath(trace_dir)
        self.trace = trace
        self._lock = threading.Lock()
        self._pid: Optional[int] = None
        self._run: str = ""
        self._handle: Optional[io.TextIOBase] = None
        self._seq = itertools.count()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._dirty = False
        self._stacks = threading.local()
        if export_env:
            os.environ[TRACE_DIR_ENV] = self.trace_dir
            if trace is not None:
                os.environ[TRACE_ID_ENV] = trace

    # ------------------------------------------------------------------
    def _local(self) -> int:
        """Per-process state guard: reset inherited state after fork.

        A forked pool worker inherits the parent's recorder object —
        including its open file handle, cumulative counters and span
        sequence.  Writing through any of them would interleave two
        processes into one shard (and double-count every metric), so the
        first operation in a new pid drops the handle, zeroes the
        metrics and starts a fresh span sequence; the next emit then
        opens this process's own shard file.
        """
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._handle = None
            self._seq = itertools.count()
            self._counters = {}
            self._gauges = {}
            self._dirty = False
            self._run = f"{int(time.time() * 1e6):x}-{pid:x}"
            self._stacks = threading.local()
        return pid

    def _stack(self) -> List[str]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _ensure_handle(self) -> io.TextIOBase:
        if self._handle is None:
            directory = Path(self.trace_dir) / (self.trace or ADHOC_TRACE)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"spans-{self._run}.jsonl"
            self._handle = open(path, "a", encoding="utf-8")
            self._write(
                {
                    "kind": "trace",
                    "trace": self.trace or ADHOC_TRACE,
                    "run": self._run,
                    "pid": self._pid,
                    "wall": time.time(),
                }
            )
        return self._handle

    def _write(self, record: dict) -> None:
        handle = self._handle
        if handle is None:  # pragma: no cover - guarded by callers
            return
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------
    def span(self, name: str, attrs: Optional[dict] = None) -> _Span:
        return _Span(self, name, attrs)

    def _enter_span(self, span: _Span) -> None:
        with self._lock:
            self._local()
            span.span_id = f"{self._pid:x}:{next(self._seq)}"
            stack = self._stack()
            span.parent = stack[-1] if stack else None
            stack.append(span.span_id)
        span.t0 = time.perf_counter()

    def _exit_span(self, span: _Span) -> None:
        t1 = time.perf_counter()
        with self._lock:
            self._local()
            stack = self._stack()
            if stack and stack[-1] == span.span_id:
                stack.pop()
            self._ensure_handle()
            record = {
                "kind": "span",
                "trace": self.trace or ADHOC_TRACE,
                "run": self._run,
                "pid": self._pid,
                "id": span.span_id,
                "parent": span.parent,
                "name": span.name,
                "t0": span.t0,
                "t1": t1,
            }
            if span.attrs:
                record["attrs"] = span.attrs
            self._write(record)
            if not stack:
                self._flush_locked()

    def counter(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._local()
            self._counters[name] = self._counters.get(name, 0) + n
            self._dirty = True

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._local()
            previous = self._gauges.get(name)
            self._gauges[name] = value
            # High-water marks are what the reader reports; keep them
            # alongside the last value so a draining queue still shows
            # how deep it got.
            peak = f"{name}.max"
            if previous is None or value > self._gauges.get(peak, value - 1):
                self._gauges[peak] = value
            self._dirty = True

    def begin_trace(self, trace_id: str) -> None:
        """Adopt a trace id; subsequent records land under it.

        The first plan of a run names the trace (workload-derived); a
        recorder already writing under the same id keeps its shard.  A
        *different* id flushes and rolls to a new shard file, so one
        process tracing two workloads writes two cleanly-split shards.
        """
        with self._lock:
            self._local()
            if trace_id == self.trace:
                return
            self._flush_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self.trace = trace_id
            if os.environ.get(TRACE_DIR_ENV) == self.trace_dir:
                os.environ[TRACE_ID_ENV] = trace_id

    def flush(self) -> None:
        with self._lock:
            self._local()
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._dirty:
            self._ensure_handle()
            self._write(
                {
                    "kind": "metrics",
                    "trace": self.trace or ADHOC_TRACE,
                    "run": self._run,
                    "pid": self._pid,
                    "counters": dict(self._counters),
                    "gauges": dict(self._gauges),
                }
            )
            self._dirty = False
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._local()
            self._flush_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# Global recorder management
# ----------------------------------------------------------------------
_RECORDER: Optional[Recorder] = None
_RECORDER_LOCK = threading.Lock()


def recorder() -> Recorder:
    """The process-wide recorder (no-op unless tracing is configured).

    First call initializes from the environment, which is how spawn-pool
    children and dispatch worker subprocesses — fresh interpreters that
    inherit ``REPRO_TRACE_DIR``/``REPRO_TRACE_ID`` but no Python state —
    join the parent's trace without any explicit plumbing.
    """
    global _RECORDER
    if _RECORDER is None:
        with _RECORDER_LOCK:
            if _RECORDER is None:
                trace_dir = os.environ.get(TRACE_DIR_ENV)
                if trace_dir:
                    _RECORDER = TraceRecorder(
                        trace_dir,
                        trace=os.environ.get(TRACE_ID_ENV) or None,
                        export_env=False,
                    )
                else:
                    _RECORDER = NOOP
    return _RECORDER


def configure(
    trace_dir: "os.PathLike[str] | str", trace: Optional[str] = None
) -> Recorder:
    """Enable tracing into ``trace_dir`` (exported to child processes)."""
    global _RECORDER
    with _RECORDER_LOCK:
        current = _RECORDER
        if isinstance(current, TraceRecorder):
            current.close()
        _RECORDER = TraceRecorder(trace_dir, trace=trace)
    return _RECORDER


def disable() -> None:
    """Flush and turn tracing off (and stop exporting it to children)."""
    global _RECORDER
    with _RECORDER_LOCK:
        current = _RECORDER
        if isinstance(current, TraceRecorder):
            current.close()
        _RECORDER = NOOP
        os.environ.pop(TRACE_DIR_ENV, None)
        os.environ.pop(TRACE_ID_ENV, None)


def active_trace_dir() -> Optional[str]:
    """The configured trace directory, or ``None`` when tracing is off."""
    return recorder().trace_dir


# ----------------------------------------------------------------------
# Trace identity
# ----------------------------------------------------------------------
def trace_id_for_streams(pairs: Iterable[Tuple[str, str]]) -> str:
    """Deterministic trace id from (scheme, workload signature) pairs.

    Sorted before hashing, so a dispatch coordinator (which sees the
    whole plan) and each of its workers (which see a shard manifest's
    stream table) derive the *same* id — their shards merge into one
    trace with no id ever crossing the process boundary.
    """
    import hashlib

    digest = hashlib.sha256()
    for scheme, signature in sorted(pairs):
        digest.update(f"|{scheme}|{signature}".encode())
    return digest.hexdigest()[:12]


def plan_trace_id(plan: object) -> str:
    """The trace id of one evaluation plan (workload-signature keyed)."""
    from repro.experiments.store import workload_signature

    pairs = [
        (
            stream.scheme,
            workload_signature(stream.workload, stream.matrices_per_network),
        )
        for stream in plan.streams.values()  # type: ignore[attr-defined]
    ]
    return trace_id_for_streams(pairs)


def traced(name: str):
    """Decorator wrapping a function body in a span (used by plan builders)."""

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with recorder().span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Reader: merge shards by trace id
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanRecord:
    """One completed span read back from a shard."""

    trace: str
    run: str
    pid: int
    span_id: str
    parent: Optional[str]
    name: str
    t0: float
    t1: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


@dataclass
class Trace:
    """One merged trace: every shard's spans plus aggregated metrics."""

    trace_id: str
    spans: List[SpanRecord] = field(default_factory=list)
    #: Counter totals summed across shards (each shard's records are
    #: cumulative within its process; the last one per shard wins).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Gauge high-water marks (max across shards' final values).
    gauges: Dict[str, float] = field(default_factory=dict)
    n_shards: int = 0
    #: Earliest wall-clock stamp any shard recorded (0.0 if none).
    wall_start: float = 0.0

    @property
    def pids(self) -> List[int]:
        return sorted({span.pid for span in self.spans})

    def by_name(self, name: str) -> List[SpanRecord]:
        return [span for span in self.spans if span.name == name]


class TraceError(Exception):
    """A trace directory cannot be resolved or read."""


def list_traces(trace_dir: "os.PathLike[str] | str") -> List[str]:
    """Trace ids present under a trace directory (sorted)."""
    root = Path(trace_dir)
    if not root.is_dir():
        return []
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir() and any(entry.glob("spans-*.jsonl"))
    )


def _scan_shard(path: Path) -> Tuple[List[SpanRecord], Dict, Dict, float]:
    """Parse one shard: (spans, final counters, final gauges, wall).

    Same walk-until-torn-line discipline as the result store: complete
    lines parse in order and the first unparseable line ends the shard —
    with an append-only writer that can only be a torn trailing write.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    spans: List[SpanRecord] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    wall = 0.0
    pos = 0
    while True:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break
        try:
            row = json.loads(data[pos : newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(row, dict):
            break
        kind = row.get("kind")
        if kind == "span":
            try:
                spans.append(
                    SpanRecord(
                        trace=str(row["trace"]),
                        run=str(row["run"]),
                        pid=int(row["pid"]),
                        span_id=str(row["id"]),
                        parent=row.get("parent"),
                        name=str(row["name"]),
                        t0=float(row["t0"]),
                        t1=float(row["t1"]),
                        attrs=row.get("attrs") or {},
                    )
                )
            except (KeyError, TypeError, ValueError):
                break
        elif kind == "metrics":
            raw_counters = row.get("counters")
            raw_gauges = row.get("gauges")
            if isinstance(raw_counters, dict):
                counters = raw_counters
            if isinstance(raw_gauges, dict):
                gauges = raw_gauges
        elif kind == "trace":
            try:
                stamp = float(row.get("wall", 0.0))
            except (TypeError, ValueError):
                stamp = 0.0
            if stamp and (not wall or stamp < wall):
                wall = stamp
        # Records of unknown kind are skipped, not fatal: a newer writer
        # may add annotations an older reader can safely ignore.
        pos = newline + 1
    return spans, counters, gauges, wall


def resolve_trace_id(
    trace_dir: "os.PathLike[str] | str", trace: Optional[str] = None
) -> str:
    """Pick the trace to analyze: explicit id, unique prefix, or the
    only one present.  Raises :class:`TraceError` with the candidate
    list otherwise — ambiguity must be the user's call, not a guess."""
    available = list_traces(trace_dir)
    if not available:
        raise TraceError(f"no traces under {os.fspath(trace_dir)!r}")
    if trace is None:
        if len(available) == 1:
            return available[0]
        raise TraceError(
            f"{len(available)} traces under {os.fspath(trace_dir)!r}; "
            f"pick one with --trace: {', '.join(available)}"
        )
    if trace in available:
        return trace
    matches = [t for t in available if t.startswith(trace)]
    if len(matches) == 1:
        return matches[0]
    raise TraceError(
        f"trace {trace!r} matches {len(matches)} of: {', '.join(available)}"
    )


def load_trace(
    trace_dir: "os.PathLike[str] | str", trace: Optional[str] = None
) -> Trace:
    """Merge every shard of one trace (spans sorted by start time)."""
    trace_id = resolve_trace_id(trace_dir, trace)
    merged = Trace(trace_id=trace_id)
    directory = Path(trace_dir) / trace_id
    for shard in sorted(directory.glob("spans-*.jsonl")):
        try:
            spans, counters, gauges, wall = _scan_shard(shard)
        except OSError:
            continue
        merged.n_shards += 1
        merged.spans.extend(spans)
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                merged.counters[name] = merged.counters.get(name, 0) + value
        for name, value in gauges.items():
            if isinstance(value, (int, float)):
                current = merged.gauges.get(name)
                if current is None or value > current:
                    merged.gauges[name] = value
        if wall and (not merged.wall_start or wall < merged.wall_start):
            merged.wall_start = wall
    merged.spans.sort(key=lambda span: (span.pid, span.t0, span.span_id))
    return merged


# ----------------------------------------------------------------------
# Analysis: summary / tree / critical path / phase attribution
# ----------------------------------------------------------------------
def exclusive_seconds(trace: Trace) -> Dict[str, float]:
    """Per-span exclusive time: duration minus direct children's.

    The attribution primitive every report shares: a ``task`` span's
    exclusive time is engine overhead, a ``place`` span's is the
    routing-scheme phase outside KSP and LP, and so on.  Negative
    residues (overlapping child stamps from clock granularity) clamp to
    zero.
    """
    child_totals: Dict[str, float] = {}
    ids = {span.span_id for span in trace.spans}
    for span in trace.spans:
        if span.parent is not None and span.parent in ids:
            child_totals[span.parent] = (
                child_totals.get(span.parent, 0.0) + span.seconds
            )
    return {
        span.span_id: max(span.seconds - child_totals.get(span.span_id, 0.0), 0.0)
        for span in trace.spans
    }


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of a union of intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    total += current_end - current_start
    return total


def summary(trace: Trace) -> dict:
    """Aggregate view: per-name span stats plus counters and gauges."""
    exclusive = exclusive_seconds(trace)
    by_name: Dict[str, dict] = {}
    for span in trace.spans:
        entry = by_name.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "exclusive_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.seconds
        entry["exclusive_s"] += exclusive[span.span_id]
    for entry in by_name.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return {
        "trace": trace.trace_id,
        "n_shards": trace.n_shards,
        "n_spans": len(trace.spans),
        "workers": trace.pids,
        "wall_start": trace.wall_start,
        "spans": {name: by_name[name] for name in sorted(by_name)},
        "counters": dict(sorted(trace.counters.items())),
        "gauges": dict(sorted(trace.gauges.items())),
    }


def render_summary(trace: Trace) -> str:
    """The ``trace summary`` text view."""
    data = summary(trace)
    lines = [
        f"trace {data['trace']}: {data['n_spans']} span(s) across "
        f"{data['n_shards']} shard(s), {len(data['workers'])} process(es)"
    ]
    if data["spans"]:
        lines.append("")
        lines.append(
            f"{'span':<16s} {'count':>7s} {'total':>10s} "
            f"{'mean':>10s} {'exclusive':>10s}"
        )
        ordered = sorted(
            data["spans"].items(), key=lambda kv: -kv[1]["total_s"]
        )
        for name, entry in ordered:
            lines.append(
                f"{name:<16s} {entry['count']:>7d} "
                f"{entry['total_s']:>9.3f}s {entry['mean_s']:>9.4f}s "
                f"{entry['exclusive_s']:>9.3f}s"
            )
    if data["counters"]:
        lines.append("")
        for name, value in data["counters"].items():
            lines.append(f"counter {name:<28s} {value:>12g}")
    if data["gauges"]:
        for name, value in data["gauges"].items():
            lines.append(f"gauge   {name:<28s} {value:>12g}")
    return "\n".join(lines)


def tree_lines(trace: Trace, max_lines: int = 400) -> List[str]:
    """The ``trace tree`` view: per-process span hierarchies.

    Spans parent through the in-process stack, so each process renders
    as its own tree (cross-process edges would need clock agreement the
    format does not promise).  Output is capped at ``max_lines`` with an
    elision marker — a fig17-scale trace is thousands of spans.
    """
    children: Dict[Optional[str], List[SpanRecord]] = {}
    ids = {span.span_id for span in trace.spans}
    for span in trace.spans:
        parent = span.parent if span.parent in ids else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.t0, span.span_id))

    lines: List[str] = []

    def render(span: SpanRecord, depth: int) -> None:
        if len(lines) > max_lines:
            return
        label = ""
        attrs = span.attrs
        if attrs:
            network = attrs.get("network_id")
            scheme = attrs.get("scheme")
            bits = [str(b) for b in (scheme, network) if b]
            if bits:
                label = f"  [{' '.join(bits)}]"
        lines.append(
            f"{'  ' * depth}{span.name:<{max(16 - 2 * depth, 1)}s} "
            f"{span.seconds:>9.4f}s{label}"
        )
        for child in children.get(span.span_id, []):
            render(child, depth + 1)

    roots = children.get(None, [])
    by_pid: Dict[int, List[SpanRecord]] = {}
    for span in roots:
        by_pid.setdefault(span.pid, []).append(span)
    for pid in sorted(by_pid):
        lines.append(f"process {pid}:")
        for span in by_pid[pid]:
            render(span, 1)
        if len(lines) > max_lines:
            lines = lines[:max_lines]
            lines.append("... (truncated; use --format json for everything)")
            break
    return lines


#: Span names ``critical-path`` folds into its phase columns; everything
#: else lands in ``other``.
PHASE_NAMES = (
    "ksp", "lp_assemble", "lp_solve", "place", "task", "store_append"
)


def critical_path(trace: Trace) -> dict:
    """Per-worker wall-time attribution: named phases plus idle.

    For each process: its observed window is [earliest span start,
    latest span end]; busy time is the union of its span intervals and
    idle is the remainder — pool workers waiting between tasks, a
    coordinator waiting on futures.  Busy time splits into *exclusive*
    per-phase seconds (``ksp``/``lp_assemble``/``lp_solve``/``place``/
    ``task`` overhead/``store_append``/other), so the columns sum to
    busy and
    busy + idle = window.  The worker with the largest window is the
    run's critical path; its row is first.
    """
    exclusive = exclusive_seconds(trace)
    workers: List[dict] = []
    for pid in trace.pids:
        spans = [span for span in trace.spans if span.pid == pid]
        window_start = min(span.t0 for span in spans)
        window_end = max(span.t1 for span in spans)
        window = window_end - window_start
        busy = _merged_length([(span.t0, span.t1) for span in spans])
        phases: Dict[str, float] = {name: 0.0 for name in PHASE_NAMES}
        phases["other"] = 0.0
        for span in spans:
            key = span.name if span.name in phases else "other"
            phases[key] += exclusive[span.span_id]
        workers.append(
            {
                "pid": pid,
                "n_spans": len(spans),
                "window_s": window,
                "busy_s": busy,
                "idle_s": max(window - busy, 0.0),
                "phases": phases,
            }
        )
    workers.sort(key=lambda worker: -worker["window_s"])
    return {"trace": trace.trace_id, "workers": workers}


def render_critical_path(trace: Trace) -> str:
    """The ``trace critical-path`` text view."""
    data = critical_path(trace)
    columns = list(PHASE_NAMES) + ["other"]
    header = (
        f"{'pid':>8s} {'window':>9s} {'busy':>9s} {'idle':>9s} "
        + " ".join(f"{name:>12s}" for name in columns)
    )
    lines = [f"trace {data['trace']}: critical path by worker", header]
    for worker in data["workers"]:
        lines.append(
            f"{worker['pid']:>8d} {worker['window_s']:>8.3f}s "
            f"{worker['busy_s']:>8.3f}s {worker['idle_s']:>8.3f}s "
            + " ".join(
                f"{worker['phases'][name]:>11.3f}s" for name in columns
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Feeds: cost-model replay and per-scheme phase breakdowns
# ----------------------------------------------------------------------
def _task_ancestry(trace: Trace) -> Dict[str, SpanRecord]:
    """span id -> nearest enclosing ``task`` span (tasks map to themselves)."""
    by_id = {span.span_id: span for span in trace.spans}
    cache: Dict[str, Optional[SpanRecord]] = {}

    def resolve(span: SpanRecord) -> Optional[SpanRecord]:
        if span.span_id in cache:
            return cache[span.span_id]
        if span.name == "task":
            cache[span.span_id] = span
            return span
        parent = by_id.get(span.parent) if span.parent else None
        result = resolve(parent) if parent is not None else None
        cache[span.span_id] = result
        return result

    return {
        span.span_id: task
        for span in trace.spans
        if (task := resolve(span)) is not None
    }


def task_timings(
    trace_dir: "os.PathLike[str] | str",
) -> Iterator[Tuple[str, str, float]]:
    """(network signature, scheme, seconds) per ``task`` span, all traces.

    The trace-side twin of
    :meth:`repro.experiments.store.ResultStore.iter_timings`: span
    durations cover exactly the region the engine's measured ``seconds``
    cover, so the cost model can pool both into one learned table.
    Spans missing either attribute (ad-hoc factories, pre-attr traces)
    are skipped, never an error.
    """
    for trace_id in list_traces(trace_dir):
        try:
            trace = load_trace(trace_dir, trace_id)
        except TraceError:  # pragma: no cover - listed ids resolve
            continue
        for span in trace.by_name("task"):
            signature = span.attrs.get("network_signature")
            scheme = span.attrs.get("scheme")
            if (
                isinstance(signature, str)
                and signature
                and isinstance(scheme, str)
                and scheme
            ):
                yield signature, scheme, span.seconds


def phase_breakdown(
    trace: Trace,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Exclusive per-phase seconds grouped by scheme and network.

    ``{scheme: {network_id: {phase: seconds}}}`` — each span's exclusive
    time lands under its enclosing ``task``'s scheme/network attrs, so
    ``store ls --timings`` and :meth:`PlanReport.cost_report` can show
    where one stream's (or one network's) seconds actually went.  Spans
    outside any task (manifest writes, merges) are not attributed here;
    ``critical-path`` covers those.
    """
    ancestry = _task_ancestry(trace)
    exclusive = exclusive_seconds(trace)
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = {}
    for span in trace.spans:
        task = ancestry.get(span.span_id)
        if task is None:
            continue
        scheme = task.attrs.get("scheme")
        network = task.attrs.get("network_id")
        if not isinstance(scheme, str) or not isinstance(network, str):
            continue
        phase = span.name if span.name in PHASE_NAMES else "other"
        per_network = breakdown.setdefault(scheme, {}).setdefault(network, {})
        per_network[phase] = per_network.get(phase, 0.0) + exclusive[span.span_id]
    return breakdown


def scheme_phases(trace: Trace) -> Dict[str, Dict[str, float]]:
    """Per-scheme phase totals: :func:`phase_breakdown` folded over networks."""
    totals: Dict[str, Dict[str, float]] = {}
    for scheme, networks in phase_breakdown(trace).items():
        folded: Dict[str, float] = {}
        for phases in networks.values():
            for phase, seconds in phases.items():
                folded[phase] = folded.get(phase, 0.0) + seconds
        totals[scheme] = folded
    return totals


def format_phases(phases: Dict[str, float]) -> str:
    """One-line ``phase=1.23s`` rendering, heaviest first."""
    ordered = sorted(phases.items(), key=lambda kv: -kv[1])
    return " ".join(f"{name}={seconds:.3f}s" for name, seconds in ordered)

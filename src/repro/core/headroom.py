"""The headroom dial (paper §4).

"We can regard headroom as a dial that can be controlled by the routing
system.  We can calculate latency-optimal paths for a given value of
headroom by simply scaling down link capacities by the chosen headroom and
running the optimal routing scheme on the modified topology.  With headroom
set to zero, we get the latency-optimal curve [...].  If we set headroom to
the value MinMax calculates as the maximal free capacity on the busiest
links, then the latency-optimal algorithm converges with MinMax."

The capacity scaling itself is :meth:`repro.net.graph.Network.with_capacity_factor`
(used by every scheme's ``headroom`` parameter); this module provides the
end of the dial: the headroom value at which latency-optimal routing and
MinMax coincide.
"""

from __future__ import annotations

from typing import List

from repro.net.graph import Network
from repro.tm.matrix import TrafficMatrix


def minmax_equivalent_headroom(network: Network, tm: TrafficMatrix) -> float:
    """Headroom at which latency-optimal placement converges to MinMax.

    This is the free capacity MinMax achieves on the busiest link:
    ``1 - Umax*``.  Reserving exactly that much on every link forces the
    latency-optimal LP into the same max-utilization regime as MinMax.
    Returns 0 when the traffic cannot be fitted at all (Umax* >= 1).
    """
    from repro.routing.minmax import optimal_max_utilization

    umax = optimal_max_utilization(network, tm)
    return max(0.0, 1.0 - umax)


def headroom_sweep(max_headroom: float, steps: int) -> List[float]:
    """Evenly spaced headroom values in [0, max_headroom]."""
    if steps < 2:
        raise ValueError(f"need at least two steps, got {steps}")
    if not 0.0 <= max_headroom < 1.0:
        raise ValueError(f"max headroom must be in [0, 1), got {max_headroom}")
    return [max_headroom * i / (steps - 1) for i in range(steps)]

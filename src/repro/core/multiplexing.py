"""Statistical multiplexing checks (paper §5, its Figure 14 loop).

Given the 100 ms rate samples of the aggregates sharing a link, the LDR
controller must decide whether they will multiplex onto the link without
building transient queues beyond a budget (10 ms by default).  Three layers
are applied, cheapest first:

1. **Peak filter** — if the sum of the aggregates' peak rates fits the
   capacity, both tests below pass trivially and are skipped.
2. **Temporal-correlation test (B)** — sum the aggregates' samples
   interval by interval, carry excess over capacity into the next interval
   as queued traffic, and reject if the queue ever implies more delay than
   the budget.  This catches bursts that are correlated in time.
3. **Uncorrelated multiplexing test (C)** — treat each aggregate's samples
   as an independent probability mass function, convolve the PMFs (via FFT:
   "convolution in the time domain is equivalent to multiplication in the
   frequency domain"), and reject if the probability that the convolved
   rate exceeds capacity is above ``max_queue_s / measurement_window_s``
   (0.00016 for 10 ms over 60 s).

The paper reports 1024 quantization levels per distribution work well;
that is the default here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

DEFAULT_LEVELS = 1024


def transient_queue_delay_s(
    aggregate_samples_bps: Sequence[np.ndarray],
    capacity_bps: float,
    interval_s: float = 0.1,
) -> float:
    """Worst transient queueing delay if these aggregates share the link.

    Implements test B: per-interval aggregate rates are summed; traffic in
    excess of capacity queues and carries over to the next interval.  The
    returned value is the maximum queue depth expressed as drain time.
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    if not aggregate_samples_bps:
        return 0.0
    lengths = {len(samples) for samples in aggregate_samples_bps}
    if len(lengths) != 1:
        raise ValueError(f"sample arrays must share a length, got {sorted(lengths)}")
    total = np.sum(aggregate_samples_bps, axis=0)
    excess_bits = (np.asarray(total, dtype=float) - capacity_bps) * interval_s
    # The queue follows the Lindley recursion q_t = max(0, q_{t-1} + e_t),
    # whose closed form is S_t - min(0, min_{j<=t} S_j) with S the running
    # sum of excesses — two cumulative scans instead of a Python loop,
    # which matters because the appraise phase runs this once per link per
    # LDR round.
    cumulative = np.cumsum(excess_bits)
    running_min = np.minimum(np.minimum.accumulate(cumulative), 0.0)
    worst_bits = float(np.max(cumulative - running_min, initial=0.0))
    return worst_bits / capacity_bps


def _pmf(samples: np.ndarray, bin_width: float, n_bins: int) -> np.ndarray:
    """Histogram of samples as a PMF over fixed-width bins.

    Samples map to the *nearest* bin center: truncating instead would
    shift every rate down by up to a full bin and systematically
    underestimate the convolved exceedance probability.
    """
    if samples.size and float(samples.min()) < 0:
        raise ValueError(
            f"rate samples must be non-negative, got min {float(samples.min())}"
        )
    indices = np.minimum(
        np.rint(samples / bin_width).astype(int), n_bins - 1
    )
    pmf = np.bincount(indices, minlength=n_bins).astype(float)
    return pmf / pmf.sum()


def exceedance_probability(
    aggregate_samples_bps: Sequence[np.ndarray],
    capacity_bps: float,
    levels: int = DEFAULT_LEVELS,
) -> float:
    """P[sum of independent aggregates > capacity], via FFT convolution.

    Each aggregate's samples become a PMF with ``levels`` bins; the PMFs
    are convolved by multiplying their FFTs.  This is test C: it asks
    whether the aggregates are *statistically* likely to exceed capacity
    even if their bursts are independent.
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    if levels < 2:
        raise ValueError(f"need at least 2 quantization levels, got {levels}")
    if not aggregate_samples_bps:
        return 0.0
    peak_sum = sum(float(np.max(samples)) for samples in aggregate_samples_bps)
    if peak_sum <= 0:
        return 0.0
    # A shared quantization grid spanning the worst-case total keeps the
    # convolution support (and hence the FFT size) bounded regardless of
    # how many aggregates share the link, preserving the paper's
    # O(N log N) claim.  ``levels`` controls the grid resolution: with the
    # default 1024 we use a 4x finer total grid so each aggregate's own
    # distribution still resolves to roughly 1024 effective levels.
    support = max(peak_sum, capacity_bps) * (1.0 + 1e-9)
    n_bins = levels * 4
    bin_width = support / (n_bins - 1)
    fft_size = 1 << (2 * n_bins - 1).bit_length()

    spectrum = np.ones(fft_size // 2 + 1, dtype=complex)
    for samples in aggregate_samples_bps:
        pmf = _pmf(np.asarray(samples, dtype=float), bin_width, n_bins)
        spectrum *= np.fft.rfft(pmf, fft_size)
    convolved = np.fft.irfft(spectrum, fft_size)
    # FFT round-off can leave tiny negative mass.
    np.maximum(convolved, 0.0, out=convolved)
    total_mass = convolved.sum()
    if total_mass <= 0:
        return 0.0
    convolved /= total_mass

    # The bin at index i represents rate i * bin_width (each aggregate's
    # bins add); everything strictly above capacity is the exceedance.
    capacity_index = int(np.floor(capacity_bps / bin_width))
    if capacity_index + 1 >= len(convolved):
        return 0.0
    return float(convolved[capacity_index + 1 :].sum())


@dataclass(frozen=True)
class LinkCheck:
    """Outcome of the combined multiplexing check on one link."""

    passed: bool
    #: Which layer decided: "peak-filter", "temporal", or "convolution".
    decided_by: str
    queue_delay_s: float
    exceed_probability: float


def check_link_multiplexing(
    aggregate_samples_bps: Sequence[np.ndarray],
    capacity_bps: float,
    max_queue_s: float = 0.010,
    interval_s: float = 0.1,
    levels: int = DEFAULT_LEVELS,
) -> LinkCheck:
    """All three layers on one link: peak filter, then tests B and C.

    The exceedance threshold follows the paper: with a ``max_queue_s``
    budget over a measurement window of ``n_samples * interval_s`` seconds,
    allow ``max_queue_s / window_s`` exceedance probability.
    """
    if not aggregate_samples_bps:
        return LinkCheck(True, "peak-filter", 0.0, 0.0)
    if any(len(samples) == 0 for samples in aggregate_samples_bps):
        raise ValueError(
            "every aggregate needs at least one rate sample "
            "(the exceedance threshold divides by the measurement window)"
        )

    peak_sum = sum(float(np.max(samples)) for samples in aggregate_samples_bps)
    if peak_sum <= capacity_bps:
        return LinkCheck(True, "peak-filter", 0.0, 0.0)

    queue_delay = transient_queue_delay_s(
        aggregate_samples_bps, capacity_bps, interval_s
    )
    if queue_delay > max_queue_s:
        return LinkCheck(False, "temporal", queue_delay, 1.0)

    window_s = len(aggregate_samples_bps[0]) * interval_s
    threshold = max_queue_s / window_s
    probability = exceedance_probability(
        aggregate_samples_bps, capacity_bps, levels
    )
    passed = probability <= threshold
    return LinkCheck(passed, "convolution", queue_delay, probability)
